"""ASCII rendering of allocations — the paper's Figure 2, in a terminal.

Purely presentational: used by the CLI's ``show-allocation`` command, the
examples, and nothing on any hot path.
"""

from __future__ import annotations

from repro.decluster.grid import Allocation, ReplicatedAllocation

__all__ = ["render_allocation", "render_replicated", "render_query_overlay"]


def render_allocation(alloc: Allocation, *, title: str = "") -> str:
    """One grid, one disk id per cell (Figure 2 style)."""
    width = max(2, len(str(alloc.num_disks - 1)) + 1)
    lines = []
    if title:
        lines.append(title)
    for i in range(alloc.n_rows):
        lines.append(
            "".join(f"{int(alloc.grid[i, j]):>{width}}" for j in range(alloc.n_cols))
        )
    return "\n".join(lines)


def render_replicated(
    replicated: ReplicatedAllocation, *, titles: list[str] | None = None
) -> str:
    """Copies side by side, like the paper's two 7x7 grids."""
    blocks = []
    for k, copy in enumerate(replicated.copies):
        title = titles[k] if titles else f"copy {k + 1}"
        blocks.append(render_allocation(copy, title=title).splitlines())
    height = max(len(b) for b in blocks)
    widths = [max(len(line) for line in b) for b in blocks]
    rows = []
    for r in range(height):
        cells = []
        for b, w in zip(blocks, widths):
            cells.append((b[r] if r < len(b) else "").ljust(w))
        rows.append("   ".join(cells).rstrip())
    return "\n".join(rows)


def render_query_overlay(
    alloc: Allocation, buckets: set[tuple[int, int]], *, title: str = ""
) -> str:
    """Grid with the query's buckets bracketed, everything else dimmed.

    ``[d]`` marks a requested bucket stored on disk ``d`` — how the paper
    draws q1 on Figure 2.
    """
    width = max(2, len(str(alloc.num_disks - 1)))
    lines = []
    if title:
        lines.append(title)
    for i in range(alloc.n_rows):
        cells = []
        for j in range(alloc.n_cols):
            d = int(alloc.grid[i, j])
            if (i, j) in buckets:
                cells.append(f"[{d:>{width}}]")
            else:
                cells.append(f" {d:>{width}} ")
        lines.append("".join(cells))
    return "\n".join(lines)
