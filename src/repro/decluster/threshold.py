"""Threshold-style first-copy allocation.

The paper's Orthogonal scheme uses *threshold-based declustering* [44] for
its first copy.  [44]'s construction (number-theoretic thresholds over
query shapes) is not reproduced verbatim; instead we select the
lowest-additive-error **periodic** allocation, which is the same
family [44] draws from and is near-optimal for the grid sizes evaluated
(substitution recorded in DESIGN.md §2).  What matters for this paper's
experiments is that the first copy is a *good* single-copy declustering
so that retrieval-choice pressure comes from the replica structure, and
that property is preserved.
"""

from __future__ import annotations

from repro.decluster.grid import Allocation
from repro.decluster.periodic import best_periodic_coefficients, periodic_allocation

__all__ = ["threshold_allocation"]


def threshold_allocation(N: int, *, seed: int = 0) -> Allocation:
    """Low-additive-error first-copy allocation for an ``N × N`` grid."""
    if N == 1:
        return periodic_allocation(1, 0, 0)
    a1, a2 = best_periodic_coefficients(N, seed)
    return periodic_allocation(N, a1, a2)
