"""Orthogonal two-copy allocations ([23], [39]; paper §VI-A).

Two allocations ``f`` (copy 1) and ``g`` (copy 2) of an ``N × N`` grid are
*orthogonal* when, viewing each bucket's replica pair ``(f(i,j), g(i,j))``,
every one of the ``N²`` possible pairs appears **exactly once** — the grid
has exactly ``N²`` buckets, so it is possible to have each pair exactly
once, and orthogonality maximizes the retrieval flexibility replication
buys.

Construction
------------
With a lattice first copy ``f(i,j) = (i + a2*j) mod N``, the second copy

``g(i,j) = (j + s * f(i,j)) mod N``

is orthogonal to ``f`` for *every* ``s``: within the ``N`` buckets of an
``f``-class ``d``, ``g = (j + s*d) mod N`` sweeps all residues as ``j``
does.  Expanding, ``g`` is itself the lattice ``(s*i + (1 + s*a2)*j)
mod N``; we pick the ``s`` whose ``g`` has the lowest (possibly sampled)
additive error, so both copies decluster well.  (For even ``N`` no pair of
*coprime-coefficient* lattices can be orthogonal — the determinant is
forced even — which is why the construction optimizes ``s`` rather than
demanding ``g`` be a unit lattice.)
"""

from __future__ import annotations

import functools

import numpy as np

from repro.decluster.grid import Allocation
from repro.decluster.metrics import additive_error
from repro.decluster.periodic import best_periodic_coefficients
from repro.errors import DeclusteringError

__all__ = ["orthogonal_pair", "is_orthogonal_pair"]

_EXACT_LIMIT = 13
_SAMPLE_SHAPES = 60


def is_orthogonal_pair(first: Allocation, second: Allocation) -> bool:
    """True iff every ``(disk1, disk2)`` pair appears exactly once."""
    if first.grid.shape != second.grid.shape:
        raise DeclusteringError("copies must share grid shape")
    N = first.num_disks
    if second.num_disks != N or first.grid.size != N * N:
        return False
    pair_ids = first.grid.astype(np.int64) * N + second.grid
    return len(np.unique(pair_ids)) == N * N


@functools.lru_cache(maxsize=None)
def _best_shift(N: int, a2: int, seed: int) -> int:
    rng = np.random.default_rng(seed)
    sample = None if N <= _EXACT_LIMIT else _SAMPLE_SHAPES
    i = np.arange(N).reshape(-1, 1)
    j = np.arange(N).reshape(1, -1)
    f = (i + a2 * j) % N
    best_s, best_err = 1, None
    for s in range(1, N):
        g = Allocation((j + s * f) % N, N)
        err = additive_error(g, sample=sample, rng=rng)
        if best_err is None or err < best_err:
            best_err, best_s = err, s
    return best_s


def orthogonal_pair(N: int, *, seed: int = 0) -> tuple[Allocation, Allocation]:
    """Build an orthogonal two-copy allocation of an ``N × N`` grid.

    Copy 1 is the threshold-style first copy (best lattice); copy 2 is the
    orthogonal companion with the best shift multiplier.
    """
    if N < 1:
        raise DeclusteringError(f"N must be >= 1, got {N}")
    if N == 1:
        one = Allocation(np.zeros((1, 1), dtype=np.int64), 1)
        return one, one
    a1, a2 = best_periodic_coefficients(N, seed)
    assert a1 == 1  # best_periodic_coefficients normalizes a1
    i = np.arange(N).reshape(-1, 1)
    j = np.arange(N).reshape(1, -1)
    f_grid = (i + a2 * j) % N
    s = _best_shift(N, a2, seed)
    g_grid = (j + s * f_grid) % N
    first = Allocation(f_grid, N)
    second = Allocation(g_grid, N)
    return first, second
