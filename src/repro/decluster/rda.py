"""Random Duplicate Allocation (RDA) [38].

RDA "stores a bucket on two disks chosen randomly from the set of disks"
(paper §VI-A); retrieval cost is at most one above optimal with high
probability for single-site retrieval.  Two flavours are provided:

* :func:`rda_pair` — the classic single-pool RDA: each bucket draws
  ``copies`` *distinct* disks from one shared pool.
* :func:`rda_per_site` — the multi-site composition used by the paper's
  two-site experiments: copy ``k`` is an independent uniform allocation
  over site ``k``'s pool, so each site holds one full copy.
"""

from __future__ import annotations

import numpy as np

from repro.decluster.grid import Allocation, ReplicatedAllocation
from repro.errors import DeclusteringError

__all__ = ["rda_pair", "rda_per_site"]


def rda_pair(
    N: int,
    rng: np.random.Generator,
    *,
    copies: int = 2,
    n_rows: int | None = None,
    n_cols: int | None = None,
) -> ReplicatedAllocation:
    """Single-pool RDA: each bucket on ``copies`` distinct random disks."""
    if copies < 1:
        raise DeclusteringError(f"copies must be >= 1, got {copies}")
    if copies > N:
        raise DeclusteringError(f"cannot place {copies} distinct copies on {N} disks")
    n_rows = N if n_rows is None else n_rows
    n_cols = N if n_cols is None else n_cols
    grids = np.empty((copies, n_rows, n_cols), dtype=np.int64)
    for i in range(n_rows):
        for j in range(n_cols):
            grids[:, i, j] = rng.choice(N, size=copies, replace=False)
    return ReplicatedAllocation([Allocation(grids[k], N) for k in range(copies)])


def rda_per_site(
    N: int,
    num_sites: int,
    rng: np.random.Generator,
) -> ReplicatedAllocation:
    """Multi-site RDA: copy ``k`` uniform over site ``k``'s disjoint pool.

    Site ``k`` owns global disk ids ``k*N .. (k+1)*N - 1``; the returned
    allocation uses the global pool of ``num_sites * N`` disks.
    """
    if num_sites < 1:
        raise DeclusteringError(f"num_sites must be >= 1, got {num_sites}")
    total = num_sites * N
    copies = []
    for k in range(num_sites):
        local = rng.integers(0, N, size=(N, N))
        copies.append(Allocation(local + k * N, total))
    return ReplicatedAllocation(copies)
