"""Periodic (lattice) disk allocations and dependent copies.

A 2-D allocation is *periodic* if ``f(i, j) = (a1*i + a2*j) mod N`` with
``gcd(a_k, N) = 1`` and ``a_k != 0`` ([11], [46]; paper §VI-A).  The
paper's **Dependent** scheme uses the lowest-additive-error periodic
allocation for the first copy and the shifted ``f + m mod N`` for the
second.

Coefficient selection: [11] tabulates the best ``(a1, a2)`` per ``N``;
that table is not in the paper, so :func:`best_periodic_coefficients`
recomputes it by exact additive-error search for small ``N`` and by
sampled search above ``_EXACT_LIMIT`` (substitution documented in
DESIGN.md §2).  Results are cached per process.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from repro.decluster.grid import Allocation
from repro.decluster.metrics import additive_error
from repro.errors import DeclusteringError

__all__ = [
    "valid_coefficients",
    "periodic_allocation",
    "best_periodic_coefficients",
    "dependent_pair",
]

#: exact additive-error search is O(N^4); beyond this we sample shapes
_EXACT_LIMIT = 13
#: number of (r, c) shapes sampled in the non-exact regime
_SAMPLE_SHAPES = 60


def valid_coefficients(N: int) -> list[int]:
    """All ``a`` with ``gcd(a, N) == 1`` and ``a != 0`` (mod N)."""
    if N < 1:
        raise DeclusteringError(f"N must be >= 1, got {N}")
    if N == 1:
        return [0]  # degenerate single-disk grid: only the zero map exists
    return [a for a in range(1, N) if math.gcd(a, N) == 1]


def periodic_allocation(N: int, a1: int, a2: int) -> Allocation:
    """Build ``f(i, j) = (a1*i + a2*j) mod N`` on an ``N × N`` grid."""
    if N >= 2:
        for a in (a1, a2):
            if a % N == 0 or math.gcd(a % N, N) != 1:
                raise DeclusteringError(
                    f"coefficient {a} invalid for N={N}: need gcd(a, N) = 1, a != 0"
                )
    i = np.arange(N).reshape(-1, 1)
    j = np.arange(N).reshape(1, -1)
    return Allocation((a1 * i + a2 * j) % N, N)


@functools.lru_cache(maxsize=None)
def best_periodic_coefficients(N: int, seed: int = 0) -> tuple[int, int]:
    """The ``(a1, a2)`` minimizing (possibly sampled) additive error.

    Ties break toward the lexicographically smallest pair, making the
    choice deterministic.  ``a1 = 1`` is fixed without loss of generality:
    relabeling disks by the inverse of ``a1`` (a bijection, since
    ``gcd(a1, N) = 1``) maps ``(a1, a2)`` to ``(1, a2 * a1^-1)`` with
    identical per-query load multisets.
    """
    if N == 1:
        return (0, 0)
    coeffs = valid_coefficients(N)
    rng = np.random.default_rng(seed)
    sample = None if N <= _EXACT_LIMIT else _SAMPLE_SHAPES
    best_pair: tuple[int, int] | None = None
    best_err = None
    for a2 in coeffs:
        alloc = periodic_allocation(N, 1, a2)
        err = additive_error(alloc, sample=sample, rng=rng)
        if best_err is None or err < best_err:
            best_err = err
            best_pair = (1, a2)
    assert best_pair is not None
    return best_pair


def dependent_pair(
    N: int, m: int | None = None, *, seed: int = 0
) -> tuple[Allocation, Allocation]:
    """The paper's Dependent Periodic Allocation: ``(f, f + m mod N)``.

    ``m`` defaults to ``N // 2 + (N % 2)`` (maximally distant shift),
    constrained to ``1 <= m <= N - 1`` as in §VI-A.
    """
    if N < 2:
        raise DeclusteringError("dependent allocation needs N >= 2")
    if m is None:
        m = N // 2 + (N % 2)
    if not 1 <= m <= N - 1:
        raise DeclusteringError(f"shift m={m} outside [1, {N - 1}]")
    a1, a2 = best_periodic_coefficients(N, seed)
    first = periodic_allocation(N, a1, a2)
    return first, first.shifted(m)
