"""Declustering quality metrics.

The standard figure of merit for a single-copy declustering is the
*additive error*: over all wraparound range queries, the worst gap between
the busiest disk's bucket count and the ideal ``ceil(r*c / N)``.  The
threshold scheme selection (:mod:`repro.decluster.threshold`) minimizes
this metric, and tests use it to confirm the periodic coefficients from
[11] beat naive ones.

Exact evaluation enumerates all ``N²(N+1)²/4``-ish wraparound queries; it
is vectorized with circular 2-D window sums but still O(N⁴), so callers
cap the grid size or sample.
"""

from __future__ import annotations

import numpy as np

from repro.decluster.grid import Allocation
from repro.errors import DeclusteringError

__all__ = ["max_disk_load", "load_of_query", "additive_error"]


def load_of_query(
    alloc: Allocation, i: int, j: int, r: int, c: int
) -> np.ndarray:
    """Bucket count per disk inside the wraparound query ``(i, j, r, c)``.

    ``r`` (rows) and ``c`` (columns) may reach the full grid size; larger
    values are rejected since a wraparound window would double-count.
    """
    if not (1 <= r <= alloc.n_rows and 1 <= c <= alloc.n_cols):
        raise DeclusteringError(f"query shape {r}x{c} exceeds grid")
    rows = np.arange(i, i + r) % alloc.n_rows
    cols = np.arange(j, j + c) % alloc.n_cols
    window = alloc.grid[np.ix_(rows, cols)]
    return np.bincount(window.ravel(), minlength=alloc.num_disks)


def max_disk_load(alloc: Allocation, i: int, j: int, r: int, c: int) -> int:
    """Largest per-disk bucket count within the query — its retrieval cost
    in the homogeneous single-copy model."""
    return int(load_of_query(alloc, i, j, r, c).max())


def _window_maxload(alloc: Allocation, r: int, c: int) -> int:
    """Max over all positions of the busiest-disk count for r×c windows.

    Vectorized: build a per-disk indicator, take circular 2-D window sums
    via cumulative sums on a tiled array, reduce with max.
    """
    N_r, N_c = alloc.n_rows, alloc.n_cols
    grid = alloc.grid
    best = 0
    for d in range(alloc.num_disks):
        ind = (grid == d).astype(np.int64)
        # tile so every wraparound window is a plain window of the tile
        tiled = np.empty((N_r + r - 1, N_c + c - 1), dtype=np.int64)
        tiled[:N_r, :N_c] = ind
        if r > 1:
            tiled[N_r:, :N_c] = ind[: r - 1, :]
        if c > 1:
            tiled[:N_r, N_c:] = ind[:, : c - 1]
        if r > 1 and c > 1:
            tiled[N_r:, N_c:] = ind[: r - 1, : c - 1]
        # 2-D prefix sums -> window sums
        ps = np.zeros((tiled.shape[0] + 1, tiled.shape[1] + 1), dtype=np.int64)
        np.cumsum(tiled, axis=0, out=ps[1:, 1:])
        np.cumsum(ps[1:, 1:], axis=1, out=ps[1:, 1:])
        win = (
            ps[r : r + N_r, c : c + N_c]
            - ps[:N_r, c : c + N_c]
            - ps[r : r + N_r, :N_c]
            + ps[:N_r, :N_c]
        )
        m = int(win.max())
        if m > best:
            best = m
    return best


def additive_error(
    alloc: Allocation,
    *,
    sample: int | None = None,
    rng: np.random.Generator | None = None,
) -> int:
    """Worst-case additive error over wraparound range queries.

    ``max over (r, c, i, j) of  maxload(i,j,r,c) - ceil(r*c / N)``.

    Parameters
    ----------
    sample:
        If given, evaluate only ``sample`` random ``(r, c)`` shapes instead
        of all of them (positions are always all evaluated, vectorized).
        Use for large grids where exact O(N⁴) enumeration is too slow.
    rng:
        Random generator for sampling; required when ``sample`` is set.
    """
    N = alloc.num_disks
    shapes = [
        (r, c)
        for r in range(1, alloc.n_rows + 1)
        for c in range(1, alloc.n_cols + 1)
    ]
    if sample is not None:
        if rng is None:
            raise DeclusteringError("sampling additive_error requires rng")
        idx = rng.choice(len(shapes), size=min(sample, len(shapes)), replace=False)
        shapes = [shapes[k] for k in idx]
    worst = 0
    for r, c in shapes:
        ideal = -(-(r * c) // N)  # ceil
        err = _window_maxload(alloc, r, c) - ideal
        if err > worst:
            worst = err
    return worst
