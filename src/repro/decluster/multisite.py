"""Multi-site composition of replicated allocations.

The paper's experiments (Table IV) place copy 1 at site 1 and copy 2 at
site 2 — "there are 14 disks in the system, disks 0-6 are located at
site 1 and the disks 7-13 at site 2" (§II-E).  :func:`make_placement`
builds that layout for any scheme and any number of sites (one copy per
site), or the single-site basic-problem layout where both copies share one
pool of ``N`` disks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decluster.grid import ReplicatedAllocation
from repro.decluster.orthogonal import orthogonal_pair
from repro.decluster.periodic import dependent_pair
from repro.decluster.rda import rda_pair, rda_per_site
from repro.errors import DeclusteringError

__all__ = ["MultiSitePlacement", "make_placement", "ALLOCATION_SCHEMES"]

#: scheme registry: names accepted by :func:`make_placement`
ALLOCATION_SCHEMES = ("rda", "dependent", "orthogonal")


@dataclass(frozen=True)
class MultiSitePlacement:
    """A replicated allocation plus the site structure over its disk pool.

    Attributes
    ----------
    allocation:
        Replicated allocation with **global** disk ids.
    disks_per_site:
        Pool size of each site; site boundaries are contiguous id ranges.
    scheme:
        Registry name of the scheme that produced this placement.
    """

    allocation: ReplicatedAllocation
    disks_per_site: tuple[int, ...]
    scheme: str

    @property
    def num_sites(self) -> int:
        return len(self.disks_per_site)

    @property
    def total_disks(self) -> int:
        return sum(self.disks_per_site)

    def site_of_disk(self, disk: int) -> int:
        """Site owning global disk id ``disk``."""
        if not 0 <= disk < self.total_disks:
            raise DeclusteringError(f"disk {disk} out of range")
        acc = 0
        for site, size in enumerate(self.disks_per_site):
            acc += size
            if disk < acc:
                return site
        raise AssertionError("unreachable")

    def site_disks(self, site: int) -> range:
        """Global disk ids belonging to ``site``."""
        if not 0 <= site < self.num_sites:
            raise DeclusteringError(f"site {site} out of range")
        start = sum(self.disks_per_site[:site])
        return range(start, start + self.disks_per_site[site])


def _two_copy_scheme(scheme: str, N: int, rng: np.random.Generator, seed: int):
    if scheme == "rda":
        return list(rda_pair(N, rng).copies)
    if scheme == "dependent":
        return list(dependent_pair(N, seed=seed))
    if scheme == "orthogonal":
        return list(orthogonal_pair(N, seed=seed))
    raise DeclusteringError(
        f"unknown scheme {scheme!r}; choose from {ALLOCATION_SCHEMES}"
    )


def make_placement(
    scheme: str,
    N: int,
    *,
    num_sites: int = 2,
    rng: np.random.Generator | None = None,
    seed: int = 0,
) -> MultiSitePlacement:
    """Build the paper's placement for ``scheme`` on an ``N × N`` grid.

    Parameters
    ----------
    scheme:
        One of :data:`ALLOCATION_SCHEMES`.
    N:
        Grid side / disks per site.
    num_sites:
        ``1`` → basic-problem layout: two copies share one pool of ``N``
        disks.  ``k >= 2`` → copy ``i`` lives on site ``i``'s disjoint pool
        (``k`` copies, ``k*N`` disks) — the generalized layout.
    rng / seed:
        Randomness for RDA (and tie-breaking searches).  ``rng`` defaults
        to ``numpy.random.default_rng(seed)``.
    """
    if N < 1:
        raise DeclusteringError(f"N must be >= 1, got {N}")
    if num_sites < 1:
        raise DeclusteringError(f"num_sites must be >= 1, got {num_sites}")
    if rng is None:
        rng = np.random.default_rng(seed)

    if num_sites == 1:
        copies = _two_copy_scheme(scheme, N, rng, seed)
        alloc = ReplicatedAllocation(copies)
        return MultiSitePlacement(alloc, (N,), scheme)

    # one copy per site: RDA copies are independent uniform draws over each
    # site's own pool; deterministic schemes use their two-copy pair and,
    # beyond two sites, shifted variants for the extra copies.
    if scheme == "rda":
        return MultiSitePlacement(
            rda_per_site(N, num_sites, rng), (N,) * num_sites, scheme
        )
    copies = _two_copy_scheme(scheme, N, rng, seed)
    while len(copies) < num_sites:
        copies.append(copies[-1].shifted(1))
    copies = copies[:num_sites]

    total = num_sites * N
    relabeled = [
        copy.relabeled(k * N, total) for k, copy in enumerate(copies)
    ]
    alloc = ReplicatedAllocation(relabeled)
    return MultiSitePlacement(alloc, (N,) * num_sites, scheme)
