"""Grid allocations: one copy of the data space mapped to disks.

An :class:`Allocation` is an ``N × N`` integer grid whose cell ``(i, j)``
names the disk storing bucket ``(i, j)`` (Figure 2 of the paper shows two
such grids side by side).  A :class:`ReplicatedAllocation` stacks ``c``
copies, giving each bucket its replica set.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import DeclusteringError

__all__ = ["Allocation", "ReplicatedAllocation"]


class Allocation:
    """A single-copy declustering of an ``n_rows × n_cols`` grid.

    Parameters
    ----------
    grid:
        2-D integer array-like; entry ``(i, j)`` is the disk of bucket
        ``(i, j)``.
    num_disks:
        Size of the disk pool this copy is declustered over.  Defaults to
        ``grid.max() + 1``.
    """

    __slots__ = ("grid", "num_disks")

    def __init__(self, grid, num_disks: int | None = None) -> None:
        arr = np.asarray(grid, dtype=np.int64)
        if arr.ndim != 2:
            raise DeclusteringError(f"allocation grid must be 2-D, got {arr.ndim}-D")
        if arr.size == 0:
            raise DeclusteringError("allocation grid must be non-empty")
        if arr.min() < 0:
            raise DeclusteringError("disk ids must be non-negative")
        if num_disks is None:
            num_disks = int(arr.max()) + 1
        if arr.max() >= num_disks:
            raise DeclusteringError(
                f"disk id {int(arr.max())} out of range for {num_disks} disks"
            )
        self.grid = arr
        self.num_disks = int(num_disks)

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.grid.shape[0]

    @property
    def n_cols(self) -> int:
        return self.grid.shape[1]

    def disk_of(self, i: int, j: int) -> int:
        """Disk storing bucket ``(i, j)`` — wraparound indices allowed."""
        return int(self.grid[i % self.n_rows, j % self.n_cols])

    def buckets_on(self, disk: int) -> list[tuple[int, int]]:
        """All buckets stored on ``disk``."""
        ii, jj = np.nonzero(self.grid == disk)
        return list(zip(ii.tolist(), jj.tolist()))

    def disk_counts(self) -> np.ndarray:
        """Bucket count per disk, shape ``(num_disks,)``."""
        return np.bincount(self.grid.ravel(), minlength=self.num_disks)

    def shifted(self, m: int) -> "Allocation":
        """The allocation ``(self + m) mod num_disks`` (dependent copy)."""
        return Allocation((self.grid + m) % self.num_disks, self.num_disks)

    def relabeled(self, offset: int, num_disks: int) -> "Allocation":
        """Shift every disk id by ``offset`` into a larger global pool.

        Used by multi-site composition: site 1 keeps ids ``0..N-1``, site 2
        gets ``N..2N-1``, etc.
        """
        if offset < 0 or offset + self.num_disks > num_disks:
            raise DeclusteringError(
                f"offset {offset} does not fit {self.num_disks} disks into "
                f"a pool of {num_disks}"
            )
        return Allocation(self.grid + offset, num_disks)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Allocation)
            and self.num_disks == other.num_disks
            and bool(np.array_equal(self.grid, other.grid))
        )

    def __hash__(self):  # pragma: no cover - allocations are not dict keys
        return hash((self.grid.tobytes(), self.num_disks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Allocation({self.n_rows}x{self.n_cols} grid, "
            f"{self.num_disks} disks)"
        )


class ReplicatedAllocation:
    """``c`` stacked copies of the same grid, one :class:`Allocation` each.

    All copies must share grid dimensions; they may be declustered over
    the *same* disk pool (single-site replication) or over disjoint pools
    (multi-site, after :meth:`Allocation.relabeled`).
    """

    __slots__ = ("copies",)

    def __init__(self, copies: Sequence[Allocation]) -> None:
        if not copies:
            raise DeclusteringError("need at least one copy")
        shape = copies[0].grid.shape
        for k, c in enumerate(copies):
            if c.grid.shape != shape:
                raise DeclusteringError(
                    f"copy {k} has shape {c.grid.shape}, expected {shape}"
                )
        self.copies = list(copies)

    @property
    def num_copies(self) -> int:
        return len(self.copies)

    @property
    def n_rows(self) -> int:
        return self.copies[0].n_rows

    @property
    def n_cols(self) -> int:
        return self.copies[0].n_cols

    @property
    def num_disks(self) -> int:
        """Size of the global disk pool (max over copies)."""
        return max(c.num_disks for c in self.copies)

    def replicas_of(self, i: int, j: int) -> tuple[int, ...]:
        """Disk ids holding bucket ``(i, j)``, one per copy (may repeat)."""
        return tuple(c.disk_of(i, j) for c in self.copies)

    def iter_buckets(self) -> Iterator[tuple[tuple[int, int], tuple[int, ...]]]:
        """Yield ``((i, j), replicas)`` for every bucket."""
        for i in range(self.n_rows):
            for j in range(self.n_cols):
                yield (i, j), self.replicas_of(i, j)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicatedAllocation({self.num_copies} copies of "
            f"{self.n_rows}x{self.n_cols}, pool={self.num_disks})"
        )
