"""Golden-ratio declustering (Chen, Bhatia & Sinha [15]).

A single-copy scheme the paper's related work cites: row ``i`` of the
grid is the base permutation shifted by the ``i``-th element of a
golden-ratio sequence, whose low-discrepancy spacing keeps any window of
consecutive rows nearly balanced.  We implement the standard
construction: ``shift(i) = floor(N * frac(i * φ⁻¹))`` with
``φ⁻¹ = (√5 − 1)/2``, i.e. ``f(i, j) = (j + shift(i)) mod N``.

Offered as an alternative first copy for :func:`make_placement`-style
compositions and compared against the lattice schemes in the tests;
every row is a cyclic permutation, so the allocation is exactly
balanced by construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.decluster.grid import Allocation
from repro.errors import DeclusteringError

__all__ = ["golden_ratio_allocation", "golden_shift_sequence"]

#: 1/phi — the fractional rotation with the slowest rational approximation
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


def golden_shift_sequence(n: int, N: int) -> list[int]:
    """First ``n`` golden-ratio shifts over ``N`` disks.

    ``shift(i) = floor(N * frac(i / φ))`` — the classic low-discrepancy
    sequence; consecutive shifts differ by ≈ ``N/φ`` mod ``N``, so runs
    of rows spread evenly over the disk set.
    """
    if n < 0:
        raise DeclusteringError(f"sequence length must be >= 0, got {n}")
    if N < 1:
        raise DeclusteringError(f"N must be >= 1, got {N}")
    return [int(N * math.modf(i * _INV_PHI)[0]) for i in range(n)]


def golden_ratio_allocation(N: int) -> Allocation:
    """Golden-ratio declustering of an ``N × N`` grid over ``N`` disks."""
    if N < 1:
        raise DeclusteringError(f"N must be >= 1, got {N}")
    shifts = golden_shift_sequence(N, N)
    j = np.arange(N).reshape(1, -1)
    s = np.asarray(shifts).reshape(-1, 1)
    return Allocation((j + s) % N, N)
