"""Replicated declustering schemes (paper §II-C, §VI-A).

A *declustering* assigns each bucket of an ``N × N`` grid to one of ``N``
disks; a *replicated* declustering assigns each bucket to ``c`` disks (one
per copy).  The paper evaluates three schemes:

* **Random Duplicate Allocation (RDA)** [38] — each bucket goes to randomly
  chosen disks (:mod:`repro.decluster.rda`).
* **Orthogonal allocation** [23,39] — across the two copies, every
  ``(disk of copy 1, disk of copy 2)`` pair appears exactly once
  (:mod:`repro.decluster.orthogonal`); the first copy uses a
  threshold-style low-additive-error scheme
  (:mod:`repro.decluster.threshold`).
* **Dependent periodic allocation** [11,46] — copy 1 is a periodic (lattice)
  allocation ``f(i,j) = (a1*i + a2*j) mod N``, copy 2 the shifted
  ``f(i,j) + m mod N`` (:mod:`repro.decluster.periodic`).

:mod:`repro.decluster.multisite` composes per-copy allocations into the
two-site placements of the paper's experiments, and
:mod:`repro.decluster.metrics` provides additive-error measurement.
"""

from repro.decluster.golden import golden_ratio_allocation, golden_shift_sequence
from repro.decluster.grid import Allocation, ReplicatedAllocation
from repro.decluster.metrics import additive_error, load_of_query, max_disk_load
from repro.decluster.multisite import (
    ALLOCATION_SCHEMES,
    MultiSitePlacement,
    make_placement,
)
from repro.decluster.orthogonal import is_orthogonal_pair, orthogonal_pair
from repro.decluster.periodic import (
    best_periodic_coefficients,
    dependent_pair,
    periodic_allocation,
    valid_coefficients,
)
from repro.decluster.rda import rda_pair, rda_per_site
from repro.decluster.render import (
    render_allocation,
    render_query_overlay,
    render_replicated,
)
from repro.decluster.threshold import threshold_allocation

__all__ = [
    "Allocation",
    "ReplicatedAllocation",
    "golden_ratio_allocation",
    "golden_shift_sequence",
    "additive_error",
    "load_of_query",
    "max_disk_load",
    "ALLOCATION_SCHEMES",
    "MultiSitePlacement",
    "make_placement",
    "is_orthogonal_pair",
    "orthogonal_pair",
    "best_periodic_coefficients",
    "dependent_pair",
    "periodic_allocation",
    "valid_coefficients",
    "rda_pair",
    "rda_per_site",
    "render_allocation",
    "render_query_overlay",
    "render_replicated",
    "threshold_allocation",
]
