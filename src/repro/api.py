"""One front door for every deployment shape.

Four entry styles accreted across the project's growth: the one-shot
:func:`repro.core.api.solve`, the stateful
:class:`~repro.service.SchedulerService`, the partitioned
:class:`~repro.service.ShardedSchedulerService`, and the
:mod:`repro.net` RPC clients — each with its own construction and
submit spelling.  This module collapses them behind a single builder::

    from repro import api

    sched = api.Scheduler(config).local(system, placement)
    sched = api.Scheduler(config).sharded([(sys0, p0), (sys1, p1)])
    sched = api.Scheduler(config).serve(system, placement, port=0)
    sched = api.Scheduler.connect(host, port)

Every handle speaks the same protocol: ``submit(query, *,
deadline=None)`` accepting coordinate lists,
:class:`~repro.workloads.RangeQuery` or
:class:`~repro.workloads.ArbitraryQuery` everywhere, plus ``stats()``,
``mark_failed()`` / ``mark_repaired()``, ``close()`` and context-manager
use.  ``deadline`` is a *response-time admission target* in ms: a query
whose proven response-time lower bound exceeds it is refused
(:class:`~repro.errors.PredictedOverloadError` locally,
:class:`~repro.net.OverloadedError` over the wire) instead of scheduled
late.  The old entry points keep working — importing them from the top
level now warns once and points here.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.api import solve
from repro.decluster.multisite import MultiSitePlacement
from repro.service.config import ServiceConfig
from repro.service.scheduler import QueryLike, SchedulerService
from repro.service.sharded import ShardedSchedulerService
from repro.service.stats import ServiceRecord, ServiceStats
from repro.storage.system import StorageSystem

__all__ = [
    "LocalScheduler",
    "RemoteScheduler",
    "Scheduler",
    "ServedScheduler",
    "solve",
]

#: a deployment: hardware plus the replicated allocation it hosts
Deployment = tuple[StorageSystem, MultiSitePlacement]


class Scheduler:
    """Builder for scheduler handles; holds the policy, not the state.

    ``Scheduler(config)`` is cheap and reusable — each ``.local()`` /
    ``.sharded()`` / ``.serve()`` call constructs an independent
    deployment from the same policy.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()

    # ------------------------------------------------------------------
    def local(
        self, system: StorageSystem, placement: MultiSitePlacement
    ) -> "LocalScheduler":
        """An in-process scheduler over one deployment."""
        return LocalScheduler(
            SchedulerService(system, placement, self.config)
        )

    def sharded(
        self, deployments: Sequence[Deployment | SchedulerService]
    ) -> "LocalScheduler":
        """An in-process sharded scheduler, one shard per deployment."""
        return LocalScheduler(
            ShardedSchedulerService(list(deployments), self.config)
        )

    def serve(
        self,
        system: StorageSystem,
        placement: MultiSitePlacement,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: Sequence[Deployment] | None = None,
        server_config: Any = None,
    ) -> "ServedScheduler":
        """Serve a deployment over TCP and hand back a connected handle.

        With ``shards`` the served service is sharded (``system`` /
        ``placement`` become shard 0).  The returned handle owns the
        server, the service and an internal client; closing it tears
        all three down.
        """
        from repro.net import BackgroundServer, ServerConfig

        service: SchedulerService | ShardedSchedulerService
        if shards is not None:
            service = ShardedSchedulerService(
                [(system, placement), *shards], self.config
            )
        else:
            service = SchedulerService(system, placement, self.config)
        if server_config is None:
            server_config = ServerConfig(host=host, port=port)
        server = BackgroundServer(service, server_config).start()
        return ServedScheduler(service, server)

    @staticmethod
    def connect(
        host: str, port: int, **client_kwargs: Any
    ) -> "RemoteScheduler":
        """A handle over an already-running ``repro serve`` endpoint."""
        from repro.net import SchedulerClient

        return RemoteScheduler(
            SchedulerClient(host, port, **client_kwargs)
        )


class LocalScheduler:
    """Uniform handle over an in-process (plain or sharded) service."""

    def __init__(
        self, service: SchedulerService | ShardedSchedulerService
    ) -> None:
        self.service = service

    # ------------------------------------------------------------------
    def submit(
        self,
        query: QueryLike,
        *,
        deadline: float | None = None,
        arrival_ms: float | None = None,
        shard: int | None = None,
    ) -> ServiceRecord:
        if isinstance(self.service, ShardedSchedulerService):
            return self.service.submit(
                query, shard=shard, arrival_ms=arrival_ms,
                deadline_ms=deadline,
            )
        if shard is not None:
            raise ValueError("shard= requires a sharded scheduler")
        return self.service.submit(
            query, arrival_ms=arrival_ms, deadline_ms=deadline
        )

    def stats(self) -> ServiceStats:
        return self.service.stats()

    def mark_failed(self, disks: Sequence[int]) -> None:
        if isinstance(self.service, ShardedSchedulerService):
            self.service.mark_failed_all(disks)
        else:
            self.service.mark_failed(disks)

    def mark_repaired(self, disks: Sequence[int]) -> None:
        if isinstance(self.service, ShardedSchedulerService):
            self.service.mark_repaired_all(disks)
        else:
            self.service.mark_repaired(disks)

    def close(self) -> None:
        self.service.close()

    def __enter__(self) -> "LocalScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RemoteScheduler:
    """Uniform handle over a :class:`~repro.net.SchedulerClient`."""

    def __init__(self, client: Any) -> None:
        self.client = client

    # ------------------------------------------------------------------
    def submit(
        self,
        query: QueryLike,
        *,
        deadline: float | None = None,
        arrival_ms: float | None = None,
        shard: int | None = None,
    ) -> ServiceRecord:
        return self.client.submit(
            query,
            shard=shard,
            arrival_ms=arrival_ms,
            admission_deadline_ms=deadline,
        )

    def stats(self) -> dict[str, Any]:
        return self.client.stats()

    def mark_failed(self, disks: Sequence[int]) -> None:
        self.client.mark_failed(disks)

    def mark_repaired(self, disks: Sequence[int]) -> None:
        self.client.mark_repaired(disks)

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "RemoteScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServedScheduler(RemoteScheduler):
    """A served deployment plus a connected client, owned together."""

    def __init__(self, service: Any, server: Any) -> None:
        from repro.net import SchedulerClient

        self.service = service
        self.server = server
        super().__init__(SchedulerClient(server.host, server.port))

    @property
    def host(self) -> str:
        return str(self.server.host)

    @property
    def port(self) -> int:
        return int(self.server.port)

    def close(self) -> None:
        try:
            self.client.close()
        finally:
            try:
                self.server.stop()
            finally:
                self.service.close()
