"""Analysis toolkit: response-time studies, decision-time overhead,
solver work profiles.

The paper deliberately reports only *execution times* ("an in depth study
for the effect of different parameters on the response time of the
queries can be found in [12]").  This package supplies that companion
analysis for the reproduction:

* :mod:`repro.analysis.response` — response-time distributions per
  (scheme, load, query type), replication-vs-single-copy gains, and
  scheme comparisons.
* :mod:`repro.analysis.decision` — the paper's *motivation* quantified:
  scheduling decision time as a fraction of the response time it gates.
* :mod:`repro.analysis.work` — operation-count profiles (probes,
  increments, pushes, relabels) per solver, machine-noise-free evidence
  for the flow-conservation claims.
"""

from repro.analysis.decision import DecisionOverhead, decision_overhead_study
from repro.analysis.response import (
    ResponseStats,
    replication_gain_study,
    response_time_study,
    scheme_comparison,
)
from repro.analysis.sensitivity import (
    SweepPoint,
    SweepResult,
    sweep_disk_load,
    sweep_site_delay,
)
from repro.analysis.structure import (
    StructurePoint,
    StructureStudy,
    structure_correlation_study,
)
from repro.analysis.work import WorkProfile, work_profile_study

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_disk_load",
    "sweep_site_delay",
    "StructurePoint",
    "StructureStudy",
    "structure_correlation_study",
    "DecisionOverhead",
    "decision_overhead_study",
    "ResponseStats",
    "replication_gain_study",
    "response_time_study",
    "scheme_comparison",
    "WorkProfile",
    "work_profile_study",
]
