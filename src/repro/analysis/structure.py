"""Graph-structure correlation — the paper's Figure 10 explanation, tested.

"Since the performance of the parallel maximum flow algorithm is highly
dependent on the graph structure [31], we show different queries on the
x-axis ... The fluctuation in the graph is caused by the change in the
graph structure depending on the query size." (§VI.F.3)

This study makes the claim measurable: for a batch of queries it records
each query's structure (|Q|, replica-arc count, distinct disks touched)
next to its parallel/sequential runtime ratio, and reports the rank
correlation between size and ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.response import _sample_problems
from repro.core.api import get_solver

__all__ = ["StructurePoint", "StructureStudy", "structure_correlation_study"]


@dataclass(frozen=True)
class StructurePoint:
    """One query's structure and its runtime ratio."""

    num_buckets: int
    num_replica_arcs: int
    num_disks_touched: int
    sequential_ms: float
    parallel_ms: float

    @property
    def ratio(self) -> float:
        return (
            self.parallel_ms / self.sequential_ms
            if self.sequential_ms > 0
            else float("nan")
        )


@dataclass(frozen=True)
class StructureStudy:
    """All points plus the size↔ratio rank correlation."""

    points: list[StructurePoint]

    @property
    def mean_ratio(self) -> float:
        return float(np.mean([p.ratio for p in self.points]))

    @property
    def size_ratio_correlation(self) -> float:
        """Spearman rank correlation between |Q| and the runtime ratio.

        Computed directly (rank both, Pearson on ranks) to avoid a scipy
        hard-dependency at runtime.
        """
        if len(self.points) < 3:
            return 0.0
        sizes = np.array([p.num_buckets for p in self.points], dtype=float)
        ratios = np.array([p.ratio for p in self.points], dtype=float)
        rs = np.argsort(np.argsort(sizes)).astype(float)
        rr = np.argsort(np.argsort(ratios)).astype(float)
        rs -= rs.mean()
        rr -= rr.mean()
        denom = float(np.sqrt((rs**2).sum() * (rr**2).sum()))
        return float((rs * rr).sum() / denom) if denom else 0.0

    def by_size_band(self, bands: int = 3) -> list[tuple[str, float]]:
        """Mean ratio per query-size band (small/medium/large)."""
        pts = sorted(self.points, key=lambda p: p.num_buckets)
        out = []
        chunk = max(1, len(pts) // bands)
        for k in range(0, len(pts), chunk):
            group = pts[k : k + chunk]
            label = f"|Q| {group[0].num_buckets}-{group[-1].num_buckets}"
            out.append((label, float(np.mean([p.ratio for p in group]))))
        return out


def structure_correlation_study(
    experiment: int,
    scheme: str,
    N: int,
    qtype: str,
    load: int,
    *,
    n_queries: int = 30,
    num_threads: int = 2,
    seed: int = 0,
) -> StructureStudy:
    """Per-query structure vs parallel/sequential runtime ratio."""
    problems = _sample_problems(
        experiment, scheme, N, qtype, load, n_queries, seed
    )
    seq = get_solver("pr-binary")
    par = get_solver("parallel-binary", num_threads=num_threads)
    points: list[StructurePoint] = []
    for p in problems:
        start = time.perf_counter()
        a = seq.solve(p)
        t_seq = 1000.0 * (time.perf_counter() - start)
        start = time.perf_counter()
        b = par.solve(p)
        t_par = 1000.0 * (time.perf_counter() - start)
        assert abs(a.response_time_ms - b.response_time_ms) < 1e-6
        points.append(
            StructurePoint(
                num_buckets=p.num_buckets,
                num_replica_arcs=sum(len(set(r)) for r in p.replicas),
                num_disks_touched=len(p.replica_disks()),
                sequential_ms=t_seq,
                parallel_ms=t_par,
            )
        )
    return StructureStudy(points)
