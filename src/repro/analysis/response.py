"""Response-time distribution studies.

All studies sample queries from the paper's workload model
(:mod:`repro.workloads`) against Table IV experiment systems, solve them
optimally, and aggregate response-time statistics.  Randomness is fully
seeded; every function returns plain dataclasses for easy tabulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import solve
from repro.core.problem import RetrievalProblem
from repro.decluster.multisite import make_placement
from repro.workloads.experiments import build_system
from repro.workloads.loads import sample_query

__all__ = [
    "ResponseStats",
    "response_time_study",
    "scheme_comparison",
    "replication_gain_study",
]


@dataclass(frozen=True)
class ResponseStats:
    """Summary statistics of a response-time sample (milliseconds)."""

    n: int
    mean: float
    median: float
    p95: float
    max: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "ResponseStats":
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            n=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95)),
            max=float(arr.max()),
        )


def _sample_problems(
    experiment: int,
    scheme: str,
    N: int,
    qtype: str,
    load: int,
    n_queries: int,
    seed: int,
) -> list[RetrievalProblem]:
    rng = np.random.default_rng(seed)
    placement = make_placement(scheme, N, num_sites=2, rng=rng, seed=seed)
    system = build_system(experiment, N, rng)
    problems = []
    for _ in range(n_queries):
        query = sample_query(load, qtype, N, rng)
        problems.append(
            RetrievalProblem.from_query(system, placement, query.buckets())
        )
    return problems


def response_time_study(
    experiment: int,
    scheme: str,
    N: int,
    qtype: str,
    load: int,
    *,
    n_queries: int = 30,
    seed: int = 0,
    solver: str = "pr-binary",
) -> ResponseStats:
    """Optimal response-time distribution at one workload point."""
    problems = _sample_problems(
        experiment, scheme, N, qtype, load, n_queries, seed
    )
    samples = [solve(p, solver=solver).response_time_ms for p in problems]
    return ResponseStats.from_samples(samples)


def scheme_comparison(
    experiment: int,
    N: int,
    qtype: str,
    load: int,
    *,
    n_queries: int = 30,
    seed: int = 0,
) -> dict[str, ResponseStats]:
    """Optimal response times per allocation scheme, same query stream.

    The paper's reference [43] compares replicated declustering schemes
    by retrieval cost; this is that comparison on the generalized
    cost model.
    """
    from repro.decluster.multisite import ALLOCATION_SCHEMES

    out: dict[str, ResponseStats] = {}
    for scheme in ALLOCATION_SCHEMES:
        out[scheme] = response_time_study(
            experiment, scheme, N, qtype, load,
            n_queries=n_queries, seed=seed,
        )
    return out


def replication_gain_study(
    experiment: int,
    scheme: str,
    N: int,
    qtype: str,
    load: int,
    *,
    n_queries: int = 30,
    seed: int = 0,
) -> dict[str, ResponseStats]:
    """Replication's response-time gain: both copies vs copy 1 only.

    Returns ``{"single-copy": ..., "replicated": ...}`` on identical
    query streams — the paper's §I framing ("replication improves the
    worst-case additive error") measured in milliseconds.
    """
    problems = _sample_problems(
        experiment, scheme, N, qtype, load, n_queries, seed
    )
    replicated = [solve(p).response_time_ms for p in problems]
    single = []
    for p in problems:
        first_copy = tuple((reps[0],) for reps in p.replicas)
        single.append(
            solve(RetrievalProblem(p.system, first_copy)).response_time_ms
        )
    return {
        "single-copy": ResponseStats.from_samples(single),
        "replicated": ResponseStats.from_samples(replicated),
    }
