"""Operation-count profiles per solver.

Wall-clock comparisons inherit machine noise; operation counts do not.
This study aggregates each solver's probes, capacity increments, pushes,
relabels and augmentations over a shared query batch — the
noise-free form of the paper's flow-conservation argument (the black box
must redo from zero the pushes the integrated algorithm conserves).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.response import _sample_problems
from repro.core.api import get_solver

__all__ = ["WorkProfile", "work_profile_study"]


@dataclass(frozen=True)
class WorkProfile:
    """Aggregated operation counts of one solver over one batch."""

    solver: str
    n_queries: int
    probes: int
    increments: int
    pushes: int
    relabels: int
    augmentations: int

    @property
    def pushes_per_query(self) -> float:
        return self.pushes / self.n_queries if self.n_queries else 0.0

    def conservation_ratio(self, other: "WorkProfile") -> float:
        """``other.pushes / self.pushes`` — how much push work the other
        solver spends for the same optima (inf if self did none)."""
        if self.pushes == 0:
            return float("inf") if other.pushes else 1.0
        return other.pushes / self.pushes


def work_profile_study(
    experiment: int,
    scheme: str,
    N: int,
    qtype: str,
    load: int,
    solvers: list[str] | None = None,
    *,
    n_queries: int = 20,
    seed: int = 0,
) -> dict[str, WorkProfile]:
    """Operation-count profiles per solver on one shared query batch.

    Cross-checks that all non-heuristic solvers agree on the optimum
    before reporting any counts.
    """
    if solvers is None:
        solvers = ["pr-binary", "blackbox-binary", "pr-incremental",
                   "ff-incremental"]
    problems = _sample_problems(
        experiment, scheme, N, qtype, load, n_queries, seed
    )
    out: dict[str, WorkProfile] = {}
    reference: list[float] | None = None
    for name in solvers:
        solver = get_solver(name)
        probes = increments = pushes = relabels = augments = 0
        optima: list[float] = []
        for p in problems:
            sched = solver.solve(p)
            probes += sched.stats.probes
            increments += sched.stats.increments
            pushes += sched.stats.pushes
            relabels += sched.stats.relabels
            augments += sched.stats.augmentations
            optima.append(sched.response_time_ms)
        if name not in ("greedy-finish-time", "round-robin"):
            if reference is None:
                reference = optima
            else:
                assert all(
                    abs(a - b) < 1e-6 for a, b in zip(reference, optima)
                ), f"solver {name} disagreed on optima"
        out[name] = WorkProfile(
            solver=name,
            n_queries=len(problems),
            probes=probes,
            increments=increments,
            pushes=pushes,
            relabels=relabels,
            augmentations=augments,
        )
    return out
