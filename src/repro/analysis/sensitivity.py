"""Sensitivity analysis: how the optimum moves as one parameter sweeps.

Deployment questions the storage model can answer directly: *how much
WAN delay can the mirror site tolerate before it stops helping?  How
busy can the SSD tier get before queries spill to disk?*  Each sweep
re-solves the same query across a parameter grid and reports the
response curve plus the *breakpoints* — the sweep values where the
optimal schedule's disk usage actually changes shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.api import solve
from repro.core.problem import RetrievalProblem
from repro.errors import StorageConfigError
from repro.storage.system import StorageSystem

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_site_delay",
    "sweep_disk_load",
]


@dataclass(frozen=True)
class SweepPoint:
    """Outcome at one parameter value."""

    value: float
    response_time_ms: float
    counts_per_disk: tuple[int, ...]


@dataclass(frozen=True)
class SweepResult:
    """The full curve plus shape-change breakpoints."""

    parameter: str
    points: tuple[SweepPoint, ...]

    def breakpoints(self) -> list[float]:
        """Sweep values where the schedule's disk-usage pattern changed.

        Compares *which* disks are used (the support of the counts), not
        exact counts — ties can reshuffle counts without changing shape.
        """
        out: list[float] = []
        prev: tuple[bool, ...] | None = None
        for p in self.points:
            support = tuple(k > 0 for k in p.counts_per_disk)
            if prev is not None and support != prev:
                out.append(p.value)
            prev = support
        return out

    def response_curve(self) -> list[tuple[float, float]]:
        return [(p.value, p.response_time_ms) for p in self.points]

    @property
    def monotone_nondecreasing(self) -> bool:
        """True if the response never improves as the parameter grows —
        expected when sweeping any delay or load upward.

        Exact comparison: every optimal response time is a finish time
        ``D_j + X_j + k*C_j`` computed by the same expression, so with the
        integer flow kernel any strict decrease is a real regression, not
        rounding noise.
        """
        values = [p.response_time_ms for p in self.points]
        return all(a <= b for a, b in zip(values, values[1:]))


def _resolve(problem: RetrievalProblem, solver: str) -> SweepPoint:
    sched = solve(problem, solver=solver)
    return SweepPoint(0.0, sched.response_time_ms, tuple(sched.counts_per_disk()))


def sweep_site_delay(
    problem: RetrievalProblem,
    site_id: int,
    delays_ms: Sequence[float],
    *,
    solver: str = "pr-binary",
) -> SweepResult:
    """Re-solve the query as one site's network delay sweeps.

    The system is mutated during the sweep and restored afterwards.
    """
    system: StorageSystem = problem.system
    target = None
    for site in system.sites:
        if site.site_id == site_id:
            target = site
    if target is None:
        raise StorageConfigError(f"unknown site {site_id}")
    original = target.delay_ms
    points = []
    try:
        for d in delays_ms:
            if d < 0:
                raise StorageConfigError(f"negative delay {d}")
            target.delay_ms = float(d)
            pt = _resolve(problem, solver)
            points.append(SweepPoint(float(d), pt.response_time_ms, pt.counts_per_disk))
    finally:
        target.delay_ms = original
    return SweepResult(f"site[{site_id}].delay_ms", tuple(points))


def sweep_disk_load(
    problem: RetrievalProblem,
    disk_id: int,
    loads_ms: Sequence[float],
    *,
    solver: str = "pr-binary",
) -> SweepResult:
    """Re-solve the query as one disk's initial load sweeps."""
    system: StorageSystem = problem.system
    disk = system.disk(disk_id)
    original = disk.initial_load_ms
    points = []
    try:
        for x in loads_ms:
            if x < 0:
                raise StorageConfigError(f"negative load {x}")
            disk.initial_load_ms = float(x)
            pt = _resolve(problem, solver)
            points.append(SweepPoint(float(x), pt.response_time_ms, pt.counts_per_disk))
    finally:
        disk.initial_load_ms = original
    return SweepResult(f"disk[{disk_id}].initial_load_ms", tuple(points))
