"""Decision-time overhead: the paper's motivation, quantified.

"Deciding the retrieval schedule of a query is a time critical issue
since the decision time is directly added to the response time of the
query" (§I).  This study measures, per solver, the wall-clock scheduling
time alongside the scheduled response time, and reports the overhead
fraction ``decision / (decision + response)`` — the number that justifies
shaving scheduler milliseconds in the first place.

Note the unit trap this study makes explicit: the *response* time is
model milliseconds of disk/network work, while the *decision* time is
real milliseconds of scheduler CPU.  On the paper's C++ testbed the
decision was a few percent; in pure Python the fraction is larger, which
strengthens (not weakens) the case for integrated algorithms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.response import _sample_problems
from repro.core.api import get_solver

__all__ = ["DecisionOverhead", "decision_overhead_study"]


@dataclass(frozen=True)
class DecisionOverhead:
    """Per-solver decision-time accounting over one query batch."""

    solver: str
    n: int
    mean_decision_ms: float
    mean_response_ms: float

    @property
    def overhead_fraction(self) -> float:
        """``decision / (decision + response)`` on means."""
        total = self.mean_decision_ms + self.mean_response_ms
        return self.mean_decision_ms / total if total > 0 else 0.0

    @property
    def effective_response_ms(self) -> float:
        """What the client actually waits: decision + response."""
        return self.mean_decision_ms + self.mean_response_ms


def decision_overhead_study(
    experiment: int,
    scheme: str,
    N: int,
    qtype: str,
    load: int,
    solvers: list[str] | None = None,
    *,
    n_queries: int = 20,
    seed: int = 0,
) -> dict[str, DecisionOverhead]:
    """Decision overhead per solver on one shared query batch."""
    if solvers is None:
        solvers = ["pr-binary", "blackbox-binary", "greedy-finish-time"]
    problems = _sample_problems(
        experiment, scheme, N, qtype, load, n_queries, seed
    )
    out: dict[str, DecisionOverhead] = {}
    for name in solvers:
        solver = get_solver(name)
        decisions: list[float] = []
        responses: list[float] = []
        for p in problems:
            start = time.perf_counter()
            sched = solver.solve(p)
            decisions.append(1000.0 * (time.perf_counter() - start))
            responses.append(sched.response_time_ms)
        out[name] = DecisionOverhead(
            solver=name,
            n=len(problems),
            mean_decision_ms=float(np.mean(decisions)),
            mean_response_ms=float(np.mean(responses)),
        )
    return out
