"""Probe tracing — the event log of one solve's feasibility probes.

The paper's integrated algorithms win by making each feasibility probe
cheaper than the last (flow conservation, Figures 7-9); a flat
:class:`~repro.core.schedule.SolverStats` can only show the *sum* of that
work.  A :class:`ProbeTrace` records the sequence: for every max-flow
probe, the candidate response time ``t``, the flow value it reached, the
engine-operation deltas it cost (pushes/relabels/augmentations) and its
wall time, tagged with the scaling phase that issued it:

``anchor``
    Algorithm 6's defensive probe at the closed-form ``tmin``.
``binary``
    the bisection probes (lines 12-37); infeasible candidates ascend,
    feasible candidates descend as the bracket narrows.
``increment``
    the ``IncrementMinCost`` phase (Algorithm 3/5); candidates are the
    nondecreasing min-cost finish times.
``result``
    exactly one terminal record whose ``t`` is the schedule's final
    response time.

Tracing is **opt-in** (``solve(problem, trace=True)``) and carried in a
:class:`contextvars.ContextVar` so the solver call tree needs no new
parameters: the skeleton in :mod:`repro.core.scaling` asks
:func:`active_trace` — a single context-variable read when disabled — and
default solves pay essentially nothing.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import asdict, dataclass, field

__all__ = [
    "PHASES",
    "ProbeEvent",
    "ProbeTrace",
    "active_trace",
    "capture_probes",
]

#: Recognised phase tags, in the order a binary-scaled solve emits them.
PHASES = ("anchor", "binary", "increment", "result")


@dataclass(frozen=True)
class ProbeEvent:
    """One feasibility probe (or the terminal result record).

    Attributes
    ----------
    seq:
        0-based position in the trace.
    phase:
        One of :data:`PHASES`.
    t:
        Candidate response time probed (ms); for ``result``, the final
        optimal response time.
    flow:
        Exact integer flow value the probe reached (``|Q|`` when
        feasible).
    feasible:
        Whether the probe proved ``t`` feasible (``flow >= |Q|``).
    pushes, relabels, augmentations:
        Engine operations spent by *this* probe (deltas, not totals).
    wall_s:
        Wall-clock seconds of this probe.
    """

    seq: int
    phase: str
    t: float
    flow: int
    feasible: bool
    pushes: int = 0
    relabels: int = 0
    augmentations: int = 0
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ProbeEvent":
        return cls(
            seq=int(d["seq"]),
            phase=str(d["phase"]),
            t=float(d["t"]),
            # int() accepts legacy JSONL rows that serialized flow as 12.0
            flow=int(d["flow"]),
            feasible=bool(d["feasible"]),
            pushes=int(d.get("pushes", 0)),
            relabels=int(d.get("relabels", 0)),
            augmentations=int(d.get("augmentations", 0)),
            wall_s=float(d.get("wall_s", 0.0)),
        )


@dataclass
class ProbeTrace:
    """An append-only log of :class:`ProbeEvent` for one solve."""

    solver: str = "?"
    events: list[ProbeEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(
        self,
        *,
        phase: str,
        t: float,
        flow: int,
        feasible: bool,
        pushes: int = 0,
        relabels: int = 0,
        augmentations: int = 0,
        wall_s: float = 0.0,
    ) -> ProbeEvent:
        ev = ProbeEvent(
            seq=len(self.events),
            phase=phase,
            t=float(t),
            flow=int(flow),
            feasible=bool(feasible),
            pushes=int(pushes),
            relabels=int(relabels),
            augmentations=int(augmentations),
            wall_s=float(wall_s),
        )
        self.events.append(ev)
        return ev

    def finish(self, schedule) -> ProbeEvent:
        """Append the terminal ``result`` record for ``schedule``."""
        return self.record(
            phase="result",
            t=schedule.response_time_ms,
            flow=schedule.problem.num_buckets,
            feasible=True,
            wall_s=schedule.stats.wall_time_s,
        )

    # ------------------------------------------------------------------
    def probes(self, phase: str | None = None) -> list[ProbeEvent]:
        """The probe events (``result`` excluded), optionally one phase."""
        return [
            e
            for e in self.events
            if e.phase != "result" and (phase is None or e.phase == phase)
        ]

    @property
    def final(self) -> ProbeEvent:
        if not self.events:
            raise IndexError("empty trace")
        return self.events[-1]

    def totals(self) -> dict[str, int]:
        """Summed per-probe operation deltas (cross-checkable against
        :class:`~repro.core.schedule.SolverStats`)."""
        probes = self.probes()
        return {
            "probes": len(probes),
            "pushes": sum(e.pushes for e in probes),
            "relabels": sum(e.relabels for e in probes),
            "augmentations": sum(e.augmentations for e in probes),
        }

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_events(
        cls, solver: str, events: list[ProbeEvent]
    ) -> "ProbeTrace":
        return cls(solver=solver, events=list(events))


# ----------------------------------------------------------------------
# activation: a context variable read by the scaling skeleton
# ----------------------------------------------------------------------
_ACTIVE: contextvars.ContextVar[ProbeTrace | None] = contextvars.ContextVar(
    "repro_active_probe_trace", default=None
)


def active_trace() -> ProbeTrace | None:
    """The trace probes should record into, or ``None`` (the default)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def capture_probes(trace: ProbeTrace):
    """Route every probe issued inside the block into ``trace``."""
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)
