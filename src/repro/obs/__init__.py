"""Observability — metrics, probe tracing, exporters.

The measurement layer for everything else in the repository:

* :class:`MetricsRegistry` — thread-safe counters, gauges and
  fixed-bucket histograms (p50/p95/p99) cheap enough to leave on in the
  scheduler hot path;
* :class:`ProbeTrace` — the per-solve event log of feasibility probes
  (candidate ``t``, flow reached, operation deltas, wall time) that makes
  the paper's black-box vs. integrated comparison visible in-process;
  opt in with ``solve(problem, trace=True)`` and read it back from
  ``schedule.stats.extra["trace"]``;
* exporters — Prometheus text exposition (:func:`to_prometheus`) and
  JSON-lines traces with a lossless parser
  (:func:`write_trace_jsonl` / :func:`read_trace_jsonl`).

Wiring: :func:`repro.core.api.solve` hosts the shared hook
(:func:`observe_solve`, off by default — see :func:`enable_metrics`);
:class:`repro.service.SchedulerService` always carries its own registry;
the CLI exposes ``repro solve --metrics FILE --trace FILE``.
"""

from repro.obs.export import (
    parse_trace_jsonl,
    read_trace_jsonl,
    to_prometheus,
    trace_to_jsonl,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.instrument import (
    enable_metrics,
    metrics_enabled,
    metrics_registry,
    observe_solve,
    reset_metrics,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
)
from repro.obs.trace import (
    PHASES,
    ProbeEvent,
    ProbeTrace,
    active_trace,
    capture_probes,
)

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "ProbeEvent",
    "ProbeTrace",
    "active_trace",
    "capture_probes",
    "enable_metrics",
    "metrics_enabled",
    "metrics_registry",
    "observe_solve",
    "reset_metrics",
    "parse_trace_jsonl",
    "read_trace_jsonl",
    "to_prometheus",
    "trace_to_jsonl",
    "write_prometheus",
    "write_trace_jsonl",
]
