"""The shared solve hook: deposit per-solve accounting into a registry.

Every solver in :data:`repro.core.api.SOLVERS` flows through
:func:`repro.core.api.solve`, so this module is the single place where a
finished :class:`~repro.core.schedule.RetrievalSchedule` turns into
metrics — per-solver solve counts, wall-time and response-time
histograms, and operation counters (probes, increments, pushes,
relabels, augmentations).

Global metrics are **off by default** (the acceptance bar for this layer
is that un-instrumented solves stay at seed speed): :func:`observe_solve`
is a single boolean check unless the process opted in with
:func:`enable_metrics` or the caller handed ``solve`` an explicit
registry.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = [
    "enable_metrics",
    "metrics_enabled",
    "metrics_registry",
    "observe_solve",
    "reset_metrics",
]

_REGISTRY = MetricsRegistry()
_ENABLED = False

#: Buckets for engine-operation *counts* per solve (not latencies).
OP_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
              1000.0, 2500.0, 5000.0, 10000.0)


def metrics_registry() -> MetricsRegistry:
    """The process-wide default registry (always exists, may be empty)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _ENABLED


def enable_metrics(enabled: bool = True) -> MetricsRegistry:
    """Turn the global solve hook on (or off); returns the registry."""
    global _ENABLED
    _ENABLED = bool(enabled)
    return _REGISTRY


def reset_metrics() -> MetricsRegistry:
    """Replace the global registry with a fresh one (tests, CLI runs)."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    return _REGISTRY


def observe_solve(schedule, registry: MetricsRegistry | None = None) -> None:
    """Record one finished solve.

    ``registry=None`` means "the global one, if enabled" — the fast path
    for default solves is one boolean test and an immediate return.
    """
    if registry is None:
        if not _ENABLED:
            return
        registry = _REGISTRY
    stats = schedule.stats
    labels = {"solver": schedule.solver}
    registry.counter(
        "repro_solve_total", "Completed solve() calls.", labels
    ).inc()
    registry.histogram(
        "repro_solve_wall_ms", "Wall time per solve (ms).", labels
    ).observe(stats.wall_time_s * 1000.0)
    registry.histogram(
        "repro_solve_response_ms",
        "Optimal response time of the returned schedule (ms).",
        labels,
    ).observe(schedule.response_time_ms)
    registry.histogram(
        "repro_solve_probes",
        "Max-flow feasibility probes per solve.",
        labels,
        buckets=OP_BUCKETS,
    ).observe(stats.probes)
    for op in ("probes", "increments", "pushes", "relabels", "augmentations"):
        registry.counter(
            f"repro_{op}_total", f"Total {op} across solves.", labels
        ).inc(getattr(stats, op))
