"""Exporters: Prometheus text exposition and JSON-lines probe traces.

Two sinks, chosen for what they feed:

* :func:`to_prometheus` renders a :class:`~repro.obs.registry.MetricsRegistry`
  in the Prometheus *text exposition format* (version 0.0.4) — ``# HELP``
  / ``# TYPE`` headers, escaped label values, cumulative ``le`` histogram
  buckets with ``_sum`` and ``_count`` — ready for a node-exporter-style
  textfile collector or a pushgateway.
* :func:`write_trace_jsonl` / :func:`read_trace_jsonl` serialise a
  :class:`~repro.obs.trace.ProbeTrace` as one JSON object per line (a
  header record then one record per event) and parse it back losslessly,
  so traces can be shipped through logs and re-analysed offline.
"""

from __future__ import annotations

import io
import json
import math
import os
from typing import Iterable

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import ProbeEvent, ProbeTrace

__all__ = [
    "to_prometheus",
    "write_prometheus",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "parse_trace_jsonl",
]

#: JSONL schema version stamped into the header record.
TRACE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs
    )
    return "{" + body + "}"


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    out = io.StringIO()
    seen_header: set[str] = set()
    for metric in registry.collect():
        if metric.name not in seen_header:
            seen_header.add(metric.name)
            help_ = registry.help_for(metric.name)
            if help_:
                out.write(f"# HELP {metric.name} {help_}\n")
            out.write(f"# TYPE {metric.name} {metric.kind}\n")
        if isinstance(metric, (Counter, Gauge)):
            out.write(
                f"{metric.name}{_fmt_labels(metric.labels)} "
                f"{_fmt_value(metric.value)}\n"
            )
        elif isinstance(metric, Histogram):
            for le, cum in metric.bucket_counts():
                lbl = _fmt_labels(metric.labels, (("le", _fmt_value(le)),))
                out.write(f"{metric.name}_bucket{lbl} {cum}\n")
            lbl = _fmt_labels(metric.labels)
            out.write(f"{metric.name}_sum{lbl} {_fmt_value(metric.total)}\n")
            out.write(f"{metric.name}_count{lbl} {metric.count}\n")
    return out.getvalue()


def write_prometheus(registry: MetricsRegistry, path: str | os.PathLike) -> str:
    """Write the exposition to ``path``; returns the path written."""
    text = to_prometheus(registry)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return os.fspath(path)


# ----------------------------------------------------------------------
# JSONL probe traces
# ----------------------------------------------------------------------
def trace_to_jsonl(trace: ProbeTrace) -> str:
    """One header line plus one line per event; trailing newline."""
    lines = [
        json.dumps(
            {
                "type": "trace",
                "version": TRACE_SCHEMA_VERSION,
                "solver": trace.solver,
                "events": len(trace.events),
            },
            sort_keys=True,
        )
    ]
    for ev in trace.events:
        d = {"type": "event"}
        d.update(ev.to_dict())
        lines.append(json.dumps(d, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_trace_jsonl(trace: ProbeTrace, path: str | os.PathLike) -> str:
    with open(path, "w", encoding="utf-8") as f:
        f.write(trace_to_jsonl(trace))
    return os.fspath(path)


def parse_trace_jsonl(text_or_lines: str | Iterable[str]) -> ProbeTrace:
    """Parse JSONL produced by :func:`trace_to_jsonl` (lossless inverse)."""
    if isinstance(text_or_lines, str):
        lines = text_or_lines.splitlines()
    else:
        lines = list(text_or_lines)
    solver = "?"
    declared: int | None = None
    events: list[ProbeEvent] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: invalid JSON") from exc
        kind = d.get("type")
        if kind == "trace":
            solver = str(d.get("solver", "?"))
            declared = d.get("events")
        elif kind == "event":
            events.append(ProbeEvent.from_dict(d))
        else:
            raise ValueError(
                f"trace line {lineno}: unknown record type {kind!r}"
            )
    if declared is not None and declared != len(events):
        raise ValueError(
            f"trace header declares {declared} events, found {len(events)}"
        )
    return ProbeTrace.from_events(solver, events)


def read_trace_jsonl(path: str | os.PathLike) -> ProbeTrace:
    with open(path, "r", encoding="utf-8") as f:
        return parse_trace_jsonl(f)
