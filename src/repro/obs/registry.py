"""In-process metrics: counters, gauges, fixed-bucket histograms.

The registry is the accounting backbone of the observability layer: the
solver hook (:mod:`repro.obs.instrument`), the scheduler service and the
CLI all deposit into one of these, and the exporters in
:mod:`repro.obs.export` read it back out.  Design constraints, in order:

1. *cheap enough to leave on* — ``Counter.inc`` and ``Histogram.observe``
   are a lock acquire, one or two adds and a linear bucket scan over a
   dozen floats; no allocation on the hot path;
2. *thread-safe* — one re-entrant lock per registry shared by all of its
   metrics (contention is negligible at scheduler decision rates, and a
   single lock makes `collect()` snapshots coherent);
3. *Prometheus-compatible* — names, label sets and histogram semantics
   (cumulative ``le`` buckets, ``_sum``/``_count``) map 1:1 onto the text
   exposition format.

Percentiles use the standard fixed-bucket estimate (Prometheus's
``histogram_quantile``): find the bucket containing the target rank and
interpolate linearly inside it.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
]

#: Default latency buckets (milliseconds): sub-tenth-ms solver decisions
#: up to multi-second stragglers, roughly 2.5x apart — the classic
#: Prometheus latency ladder scaled for a scheduler hot path.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

LabelPairs = tuple[tuple[str, str], ...]


def _canon_labels(labels: Mapping[str, str] | None) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: identity + the registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelPairs, lock: threading.RLock):
        self.name = name
        self.labels = labels
        self._lock = lock


class Counter(_Metric):
    """A monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def __init__(self, name, labels, lock):
        super().__init__(name, labels, lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A value that goes up and down (queue depth, busy horizon)."""

    kind = "gauge"

    def __init__(self, name, labels, lock):
        super().__init__(name, labels, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSummary:
    """Snapshot of a histogram's headline numbers."""

    count: int
    total: float
    p50: float
    p95: float
    p99: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram(_Metric):
    """Fixed-bucket histogram with interpolated percentile estimates.

    ``bounds`` are the finite upper edges; an implicit ``+Inf`` bucket
    catches the overflow.  Per-bucket counts are stored non-cumulative and
    cumulated on export (matching Prometheus's ``le`` semantics).
    """

    kind = "histogram"

    def __init__(self, name, labels, lock, bounds: Iterable[float]):
        super().__init__(name, labels, lock)
        b = tuple(float(x) for x in bounds)
        if not b:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(y <= x for x, y in zip(b, b[1:])):
            raise ValueError(f"histogram {name} buckets must increase: {b}")
        if math.isinf(b[-1]):
            b = b[:-1]  # +Inf is implicit
        self.bounds = b
        self._counts = [0] * (len(b) + 1)  # [..bounds.., +Inf]
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            i = 0
            for i, ub in enumerate(self.bounds):  # noqa: B007
                if v <= ub:
                    break
            else:
                i = len(self.bounds)
            self._counts[i] += 1
            self._sum += v
            self._count += 1
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(+Inf, n)``."""
        with self._lock:
            out = []
            cum = 0
            for ub, c in zip(self.bounds, self._counts):
                cum += c
                out.append((ub, cum))
            out.append((math.inf, cum + self._counts[-1]))
            return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the containing bucket, anchored at 0
        for the first bucket (all instrumented quantities are
        non-negative).  Observations beyond the last finite edge clamp to
        the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cum = 0.0
            lower = 0.0
            for ub, c in zip(self.bounds, self._counts):
                if c and cum + c >= rank:
                    frac = max(0.0, rank - cum) / c
                    return lower + frac * (ub - lower)
                cum += c
                lower = ub
            return self._max

    def summary(self) -> HistogramSummary:
        with self._lock:
            if self._count == 0:
                return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
            return HistogramSummary(
                count=self._count,
                total=self._sum,
                p50=self.quantile(0.50),
                p95=self.quantile(0.95),
                p99=self.quantile(0.99),
                min=self._min,
                max=self._max,
            )


class MetricsRegistry:
    """A named family of metrics with get-or-create accessors.

    Metrics are keyed by ``(name, labels)``; asking twice returns the
    same object, asking with a conflicting type raises.  All accessors
    and all metric mutations share one re-entrant lock, so a concurrent
    ``collect()``/exporter pass sees a coherent snapshot.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[tuple[str, LabelPairs], _Metric] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help_, labels, **kw):
        key = (name, _canon_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            if self._kinds.get(name, cls.kind) != cls.kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{self._kinds[name]}, not {cls.kind}"
                )
            metric = cls(name, key[1], self._lock, **kw)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
            if help_:
                self._help[name] = help_
            return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, bounds=buckets
        )

    # ------------------------------------------------------------------
    def get(self, name: str, labels: Mapping[str, str] | None = None):
        """Look up a metric or return ``None`` (never creates)."""
        with self._lock:
            return self._metrics.get((name, _canon_labels(labels)))

    def help_for(self, name: str) -> str:
        with self._lock:
            return self._help.get(name, "")

    def kind_of(self, name: str) -> str | None:
        with self._lock:
            return self._kinds.get(name)

    def collect(self) -> list[_Metric]:
        """All metrics, grouped by name, labels sorted within a name."""
        with self._lock:
            return sorted(
                self._metrics.values(), key=lambda m: (m.name, m.labels)
            )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._kinds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
