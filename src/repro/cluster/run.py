"""In-process cluster hosting for tests and benchmarks.

:class:`BackgroundCluster` is the cluster-tier twin of
:class:`~repro.net.run.BackgroundServer`: N backend scheduler servers,
each on its own daemon thread and event loop, plus a
:class:`~repro.cluster.router.RoutingProxy` on one more daemon thread —
a full localhost cluster next to synchronous test code, no subprocesses.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Sequence

from repro.cluster.config import ClusterConfig
from repro.cluster.membership import BackendInfo, ClusterMap
from repro.cluster.router import RoutingProxy
from repro.net.run import BackgroundServer, Service
from repro.net.server import ServerConfig

__all__ = ["BackgroundCluster"]


class BackgroundCluster:
    """N backend servers + a routing proxy, all on daemon threads.

    >>> with BackgroundCluster([make_service() for _ in range(3)]) as bg:
    ...     client = SchedulerClient(bg.host, bg.port)  # talks to router
    ...     ...
    ... # leaving the block drains the router, then every backend

    Backends must be replicas of one deployment (same topology/seed) —
    the routing tier assumes any backend can serve any signature.  The
    router object is exposed as :attr:`router` and its membership map as
    :attr:`cluster`; touch them from the host thread only through
    :meth:`call_in_loop` (the router's event loop is not thread-safe).
    """

    def __init__(
        self,
        services: Sequence[Service],
        config: ClusterConfig | None = None,
        *,
        monitor: bool = True,
        backend_config: ServerConfig | None = None,
    ) -> None:
        if not services:
            raise ValueError("a cluster needs at least one backend service")
        self.backends = [
            BackgroundServer(svc, backend_config) for svc in services
        ]
        self.config = config if config is not None else ClusterConfig()
        self._monitor = monitor
        self.cluster: ClusterMap | None = None
        self.router: RoutingProxy | None = None
        self.summary: dict[str, Any] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    def start(self, timeout_s: float = 30.0) -> "BackgroundCluster":
        for k, backend in enumerate(self.backends):
            try:
                backend.start(timeout_s)
            except Exception:
                for other in self.backends[:k]:
                    other.stop()
                raise
        self.cluster = ClusterMap(
            [
                BackendInfo(f"b{k}", b.host, b.port)
                for k, b in enumerate(self.backends)
            ]
        )
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-cluster-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("background cluster failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"background cluster failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        assert self.cluster is not None
        self.router = RoutingProxy(
            self.cluster, self.config, monitor=self._monitor
        )
        try:
            await self.router.start()
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self.summary = await self.router.serve_until_drained()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        assert self.router is not None
        return self.router.host

    @property
    def port(self) -> int:
        assert self.router is not None
        return self.router.port

    def call_in_loop(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the router's event loop thread."""
        if self._loop is None:
            raise RuntimeError("background cluster is not running")
        self._loop.call_soon_threadsafe(fn)

    def request_drain(self) -> None:
        """Trigger a graceful router drain without blocking."""
        assert self.router is not None
        self.call_in_loop(self.router.begin_drain)

    def stop(self, timeout_s: float = 60.0) -> dict[str, Any] | None:
        """Drain the router, join its thread, then drain every backend."""
        if self._thread is not None:
            if self._thread.is_alive():
                self.request_drain()
            self._thread.join(timeout_s)
            if self._thread.is_alive():  # pragma: no cover - watchdog
                raise RuntimeError("cluster router did not drain in time")
            self._thread = None
        for backend in self.backends:
            backend.stop(timeout_s)
        return self.summary

    def __enter__(self) -> "BackgroundCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
