"""Process-tree launcher for ``repro cluster``.

Spawns N backend ``repro serve`` subprocesses on ephemeral ports (all
with the *same* seed, so every backend is a replica of one deployment
and any signature can be served anywhere), then runs a
:class:`~repro.cluster.router.RoutingProxy` over them in the foreground.
SIGTERM/SIGINT tears the tree down with the net tier's drain
discipline: the router drains first (in-flight forwards finish, no new
work admitted), then each backend is SIGTERMed and drains itself
(finishing requests, flushing stats, exiting 0).

Process management is deliberately synchronous: spawning, readline on
the children's ready lines, SIGTERM and ``wait()`` all happen in plain
functions before/after the router's event loop runs, never inside a
coroutine — the async-blocking lint enforces that split for this
package.
"""

from __future__ import annotations

import asyncio
import signal
import subprocess
import sys
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cluster.config import ClusterConfig
from repro.cluster.membership import BackendInfo, ClusterMap
from repro.cluster.router import RoutingProxy

__all__ = [
    "BackendProcess",
    "spawn_backends",
    "terminate_backends",
    "serve_cluster",
    "run_cluster",
]

_READY_MARKER = "listening on "


def _echo(line: str) -> None:
    # flush so wrapper scripts (the CI smoke job) see the ready line
    # immediately, not at process exit
    print(line, flush=True)


@dataclass
class BackendProcess:
    """One spawned backend: its routing identity plus the OS process."""

    info: BackendInfo
    proc: subprocess.Popen[str]

    @property
    def backend_id(self) -> str:
        return self.info.backend_id


def _read_ready_line(proc: subprocess.Popen[str], timeout_s: float) -> str:
    """Block until the child prints its ready line (or dies / times out)."""
    holder: dict[str, str] = {}

    def reader() -> None:
        assert proc.stdout is not None
        holder["line"] = proc.stdout.readline()

    t = threading.Thread(target=reader, daemon=True)
    t.start()
    t.join(timeout_s)
    if "line" not in holder:
        proc.kill()
        raise RuntimeError(
            f"backend pid {proc.pid} did not report ready "
            f"within {timeout_s:.0f}s"
        )
    line = holder["line"]
    if _READY_MARKER not in line:
        proc.kill()
        raise RuntimeError(
            f"backend pid {proc.pid} failed to start "
            f"(exit {proc.poll()}): {line!r}"
        )
    return line


def spawn_backends(
    servers: int,
    serve_args: Sequence[str] = (),
    *,
    ready_timeout_s: float = 60.0,
) -> list[BackendProcess]:
    """Start ``servers`` ``repro serve --port 0`` children, wait for ready.

    ``serve_args`` is appended to every child's command line (scheme,
    solver, workers, seed, ...) — identical for all children on purpose;
    the cluster tier assumes replica backends.  On any startup failure
    the children already running are killed before the error propagates.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    backends: list[BackendProcess] = []
    try:
        for k in range(servers):
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "--port",
                    "0",
                    *serve_args,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            line = _read_ready_line(proc, ready_timeout_s)
            addr = line.split(_READY_MARKER)[1].split()[0]
            host, _, port = addr.rpartition(":")
            backends.append(
                BackendProcess(BackendInfo(f"b{k}", host, int(port)), proc)
            )
    except Exception:
        for b in backends:
            b.proc.kill()
            b.proc.wait()
        raise
    return backends


def terminate_backends(
    backends: Sequence[BackendProcess], *, timeout_s: float = 30.0
) -> list[int | None]:
    """SIGTERM every backend and wait for its graceful drain.

    Returns the exit codes in backend order (0 means a clean drain).  A
    backend that ignores SIGTERM past ``timeout_s`` is killed.
    """
    for b in backends:
        if b.proc.poll() is None:
            b.proc.send_signal(signal.SIGTERM)
    codes: list[int | None] = []
    for b in backends:
        try:
            b.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:  # pragma: no cover - watchdog
            b.proc.kill()
            b.proc.wait()
        codes.append(b.proc.returncode)
    return codes


async def serve_cluster(
    cluster: ClusterMap,
    config: ClusterConfig | None = None,
    *,
    monitor: bool = True,
    install_signal_handlers: bool = True,
    ready: Callable[[RoutingProxy], None] | None = None,
) -> dict[str, Any]:
    """Serve the routing proxy until SIGTERM/SIGINT (or ``shutdown``).

    The async twin of :func:`repro.net.run.serve`: returns the router's
    drain summary once every in-flight forward has finished.
    """
    proxy = RoutingProxy(cluster, config, monitor=monitor)
    await proxy.start()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, proxy.begin_drain)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loops
    try:
        if ready is not None:
            ready(proxy)
        summary = await proxy.serve_until_drained()
        return summary if summary is not None else {}
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)


def run_cluster(
    servers: int,
    serve_args: Sequence[str],
    config: ClusterConfig | None = None,
    *,
    echo: Callable[[str], None] = _echo,
) -> int:
    """The ``repro cluster`` entry: spawn, route, tear down. Returns exit code."""
    backends = spawn_backends(servers, serve_args)
    cluster = ClusterMap([b.info for b in backends])
    try:

        def ready(proxy: RoutingProxy) -> None:
            joined = ", ".join(
                f"{b.backend_id}={b.info.host}:{b.info.port}" for b in backends
            )
            echo(
                f"repro cluster: router listening on "
                f"{proxy.host}:{proxy.port} ({servers} backend(s): {joined})"
            )

        summary = asyncio.run(serve_cluster(cluster, config, ready=ready))
    finally:
        # a backend that already died (crash, external SIGKILL) has
        # surfaced through failover metrics during the run; only the
        # backends still up at teardown owe us a clean SIGTERM drain
        already_dead = {
            b.backend_id for b in backends if b.proc.poll() is not None
        }
        codes = terminate_backends(backends)
    echo(
        f"repro cluster: drain complete — "
        f"{summary.get('forwards', 0)} forwards, "
        f"{summary.get('failovers', 0)} failovers, "
        f"backend exits {codes}"
        + (f" (died during run: {sorted(already_dead)})" if already_dead else "")
    )
    drained_ok = all(
        c == 0
        for b, c in zip(backends, codes)
        if b.backend_id not in already_dead
    )
    return 0 if drained_ok else 1
