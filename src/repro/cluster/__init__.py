"""repro.cluster — the distributed multi-server tier.

A routing proxy (:class:`RoutingProxy`) speaks the repro wire protocol
to edge clients and forwards each submit to the backend that owns its
replica-set signature under rendezvous hashing (:class:`ClusterMap`),
preserving per-backend cache and fleet-lane warmth.  A
:class:`HealthMonitor` ejects unreachable backends on a deadline and
rejoins them — restoring exactly their old signature share — when they
come back.  :func:`run_cluster` / ``repro cluster`` launches backends as
``repro serve`` subprocesses; :class:`BackgroundCluster` hosts the whole
tier in-process for tests and benchmarks.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.launcher import (
    BackendProcess,
    run_cluster,
    serve_cluster,
    spawn_backends,
    terminate_backends,
)
from repro.cluster.membership import (
    BackendInfo,
    ClusterMap,
    HealthMonitor,
    NoLiveBackendsError,
)
from repro.cluster.router import RoutingProxy
from repro.cluster.run import BackgroundCluster

__all__ = [
    "BackendInfo",
    "BackendProcess",
    "BackgroundCluster",
    "ClusterConfig",
    "ClusterMap",
    "HealthMonitor",
    "NoLiveBackendsError",
    "RoutingProxy",
    "run_cluster",
    "serve_cluster",
    "spawn_backends",
    "terminate_backends",
]
