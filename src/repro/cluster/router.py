"""The signature-affine routing proxy in front of a backend fleet.

:class:`RoutingProxy` is a :class:`~repro.net.frameserver.FrameServer`
speaking the existing length-prefixed wire protocol on *both* sides: to
edge clients it looks exactly like a ``repro serve`` scheduler (same
handshake, same ops, same error codes), and to the backends it is just
another :class:`~repro.net.client.AsyncSchedulerClient`.  Per op:

* ``submit`` — the query's replica-set signature is hashed with the
  shared SHA-256 helper (:mod:`repro.service.signature`) and
  rendezvous-routed over the live :class:`~repro.cluster.membership.ClusterMap`,
  so a given signature always lands on the same backend and that
  backend's warm :class:`~repro.service.cache.NetworkCache` entries and
  fleet-lane affinity stay hot across the whole cluster.  Params
  (``shard``, ``arrival_ms``, ``admission_deadline_ms``) forward
  verbatim.
* ``health`` / ``stats`` — fanned out and merged; fleet-wide response
  percentiles are recomputed from the backends' pooled histogram
  buckets with :func:`~repro.service.stats.merged_quantile` (quantiles
  do not add).
* ``metrics`` — per-backend Prometheus text concatenated under
  ``# repro.cluster: backend <id>`` headers, after the router's own.
* ``mark_failed`` / ``mark_repaired`` — broadcast fleet-wide to every
  live backend, serialized on a broadcast mutex (mirroring
  ``ShardedSchedulerService``'s fleet-wide snapshot guarantee).

**Failover and at-most-once.**  The router never silently re-sends a
submit whose connection died mid-request: the backend may already have
executed the solve, so re-sending could schedule the query twice.  A
*refused connection* is different — the request provably never left the
router — so only then does the router mark the backend dead and re-route
to the next-highest rendezvous scorer.  A connection that drops with the
submit outstanding marks the backend dead and surfaces a non-transient
``INTERNAL`` error, exactly like a crashed fleet worker: the edge
client's RetryPolicy will not re-submit, and the caller decides.

Backends are assumed to be replicas of one deployment (same topology,
same seed — the launcher enforces this), so any backend *can* serve any
signature; affinity is a cache-warmth optimization, not a correctness
requirement.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.cluster.config import ClusterConfig
from repro.cluster.membership import (
    ClusterMap,
    HealthMonitor,
    NoLiveBackendsError,
)
from repro.net.client import AsyncSchedulerClient, RetryPolicy
from repro.net.errors import (
    ConnectError,
    ConnectionClosedError,
    DeadlineExceededError,
    NetError,
    NonIntegralFieldError,
    ProtocolError,
    RemoteError,
)
from repro.net.frameserver import FrameServer, ServerConfig
from repro.net.protocol import error_response, ok_response, query_from_wire
from repro.net.server import OPS
from repro.obs.export import to_prometheus
from repro.service.signature import signature_bytes, signature_of
from repro.service.stats import WireHistogram, merged_quantile

__all__ = ["RoutingProxy"]


class RoutingProxy(FrameServer):
    """Route scheduler RPCs across a fleet of backend servers."""

    server_name = "repro-cluster-router"
    ops = OPS

    def __init__(
        self,
        cluster: ClusterMap,
        config: ClusterConfig | None = None,
        *,
        monitor: bool = True,
    ) -> None:
        self.cluster_config = config if config is not None else ClusterConfig()
        super().__init__(
            ServerConfig(
                host=self.cluster_config.host,
                port=self.cluster_config.port,
                max_inflight=self.cluster_config.max_inflight,
                retry_after_ms=self.cluster_config.retry_after_ms,
                max_frame_bytes=self.cluster_config.max_frame_bytes,
                registry=self.cluster_config.registry,
            )
        )
        self.cluster = cluster
        self._clients: dict[str, AsyncSchedulerClient] = {}
        # serializes mark_failed/mark_repaired broadcasts (fleet-wide
        # snapshot ordering, mirroring ShardedSchedulerService)
        self._broadcast_mutex = asyncio.Lock()

        self._m_backends = self.registry.gauge(
            "repro_cluster_backends", "Backends known to the router."
        )
        self._m_live = self.registry.gauge(
            "repro_cluster_backends_live", "Backends currently routable."
        )
        self._m_forwards = self.registry.counter(
            "repro_cluster_forwards_total", "Submits forwarded to backends."
        )
        self._m_failovers = self.registry.counter(
            "repro_cluster_failovers_total",
            "Submits re-routed after a refused backend connection.",
        )
        self._m_backend_errors = self.registry.counter(
            "repro_cluster_backend_errors_total",
            "Forwarded requests that failed at or en route to a backend.",
        )
        self._m_backends.set(float(len(cluster.backends)))
        self._m_live.set(float(len(cluster.live())))

        self.monitor: HealthMonitor | None = None
        if monitor:
            self.monitor = HealthMonitor(
                cluster,
                self._clients,
                self.cluster_config,
                on_change=self._on_membership_change,
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        # clients must exist before the monitor's first probe round
        for b in self.cluster.backends:
            self._client(b.backend_id)
        await super().start()
        if self.monitor is not None:
            self.monitor.start()

    async def _finalize_drain(self) -> dict[str, Any]:
        if self.monitor is not None:
            await self.monitor.stop()
        for client in self._clients.values():
            await client.close()
        return {
            "forwards": int(self._m_forwards.value),
            "failovers": int(self._m_failovers.value),
            "backend_errors": int(self._m_backend_errors.value),
            "backends": len(self.cluster.backends),
            "live": len(self.cluster.live()),
        }

    # ------------------------------------------------------------------
    def _client(self, backend_id: str) -> AsyncSchedulerClient:
        client = self._clients.get(backend_id)
        if client is None:
            info = self.cluster.get(backend_id)
            # attempts=1: the router never retries a forward — backoff
            # and retry policy belong to the edge client, and a second
            # in-router attempt would stack retries multiplicatively
            client = AsyncSchedulerClient(
                info.host,
                info.port,
                retry=RetryPolicy(attempts=1),
                max_frame_bytes=self.cluster_config.max_frame_bytes,
            )
            self._clients[backend_id] = client
        return client

    def _on_membership_change(self, backend_id: str, alive: bool) -> None:
        self._m_live.set(float(len(self.cluster.live())))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, req_id: int, op: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        if op == "submit":
            return await self._op_submit(req_id, params)
        if op == "health":
            return ok_response(req_id, await self._merged_health())
        if op == "stats":
            return ok_response(req_id, await self._merged_stats())
        if op == "metrics":
            return ok_response(
                req_id,
                {
                    "content_type": "text/plain; version=0.0.4",
                    "text": await self._merged_metrics(),
                },
            )
        if op in ("mark_failed", "mark_repaired"):
            return await self._op_broadcast(req_id, op, params)
        if op == "shutdown":
            asyncio.get_running_loop().call_soon(self.begin_drain)
            return ok_response(req_id, {"draining": True})
        if op == "hello":
            return error_response(
                req_id, "BAD_REQUEST", "hello is only valid as the handshake"
            )
        return error_response(req_id, "UNKNOWN_OP", f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # submit: signature-affine forwarding with connect-failover
    # ------------------------------------------------------------------
    async def _op_submit(
        self, req_id: int, params: dict[str, Any]
    ) -> dict[str, Any]:
        if self._draining:
            return error_response(
                req_id, "SHUTTING_DOWN", "router is draining; no new work"
            )
        if self._inflight >= self.config.max_inflight:
            self._m_shed.inc()
            return error_response(
                req_id,
                "OVERLOADED",
                f"{self._inflight} forwards in flight "
                f"(capacity {self.config.max_inflight})",
                retry_after_ms=self.config.retry_after_ms,
            )
        # decode the query only to compute the routing key; the params
        # forward to the backend verbatim (arrival_ms, shard,
        # admission_deadline_ms all ride through untouched)
        try:
            query = query_from_wire(params.get("query"))
        except NonIntegralFieldError as exc:
            return error_response(req_id, "INVALID_QUERY", str(exc))
        except ProtocolError as exc:
            return error_response(req_id, "BAD_REQUEST", str(exc))
        key = signature_bytes(signature_of(query))

        self._inflight += 1
        self._m_inflight.set(float(self._inflight))
        try:
            return await self._forward_submit(req_id, key, params)
        finally:
            self._inflight -= 1
            self._m_inflight.set(float(self._inflight))

    async def _forward_submit(
        self, req_id: int, key: bytes, params: dict[str, Any]
    ) -> dict[str, Any]:
        attempted: set[str] = set()
        while True:
            try:
                backend = self.cluster.route(key, exclude=attempted)
            except NoLiveBackendsError as exc:
                return error_response(
                    req_id,
                    "OVERLOADED",
                    str(exc),
                    retry_after_ms=self.config.retry_after_ms,
                )
            backend_id = backend.backend_id
            try:
                result = await self._client(backend_id).request(
                    "submit",
                    params,
                    deadline_ms=self.cluster_config.forward_deadline_ms,
                )
                self._m_forwards.inc()
                return ok_response(req_id, result)
            except ConnectError:
                # the request never left the router: failing over to the
                # next rendezvous scorer cannot double-execute anything
                self._m_backend_errors.inc()
                self._m_failovers.inc()
                attempted.add(backend_id)
                if self.cluster.mark_dead(backend_id):
                    self._m_live.set(float(len(self.cluster.live())))
                continue
            except ConnectionClosedError as exc:
                # the backend died with the submit outstanding: it may
                # have executed the solve, so at-most-once forbids a
                # re-send — surface non-transient INTERNAL, like a
                # crashed fleet worker
                self._m_backend_errors.inc()
                if self.cluster.mark_dead(backend_id):
                    self._m_live.set(float(len(self.cluster.live())))
                return error_response(
                    req_id,
                    "INTERNAL",
                    f"backend {backend_id!r} lost mid-submit "
                    f"(not re-sent; at-most-once): {exc}",
                )
            except DeadlineExceededError as exc:
                # same ambiguity as a dropped connection: the backend
                # may still execute it after the deadline
                self._m_backend_errors.inc()
                return error_response(
                    req_id,
                    "INTERNAL",
                    f"backend {backend_id!r} exceeded the forward deadline "
                    f"(not re-sent; at-most-once): {exc}",
                )
            except RemoteError as exc:
                # typed backend outcome (OVERLOADED, INVALID_QUERY,
                # SHUTTING_DOWN, ...): relay code + hint unchanged
                return error_response(
                    req_id,
                    exc.code,
                    f"backend {backend_id!r}: {exc}",
                    retry_after_ms=exc.retry_after_ms,
                )

    # ------------------------------------------------------------------
    # merged control plane
    # ------------------------------------------------------------------
    async def _fan_out(
        self, op: str, params: dict[str, Any] | None = None
    ) -> dict[str, Any | NetError]:
        """Run ``op`` on every *live* backend concurrently."""
        live = self.cluster.live()

        async def one(backend_id: str) -> Any:
            try:
                return await self._client(backend_id).request(
                    op,
                    params,
                    deadline_ms=self.cluster_config.forward_deadline_ms,
                )
            except NetError as exc:
                self._m_backend_errors.inc()
                return exc

        results = await asyncio.gather(
            *(one(b.backend_id) for b in live)
        )
        return {b.backend_id: r for b, r in zip(live, results)}

    async def _merged_health(self) -> dict[str, Any]:
        results = await self._fan_out("health")
        per_backend: dict[str, Any] = {}
        inflight = 0
        max_inflight = 0
        queries = 0
        shards = 0
        healthy = 0
        for b in self.cluster.backends:
            bid = b.backend_id
            if not self.cluster.is_live(bid):
                per_backend[bid] = {"status": "dead"}
                continue
            payload = results.get(bid)
            if isinstance(payload, NetError) or not isinstance(payload, dict):
                per_backend[bid] = {"status": "unreachable"}
                continue
            per_backend[bid] = payload
            healthy += 1
            inflight += int(payload.get("inflight", 0))
            max_inflight += int(payload.get("max_inflight", 0))
            queries += int(payload.get("queries", 0))
            shards += int(payload.get("shards", 0))
        if self._draining:
            status = "draining"
        elif healthy == len(self.cluster.backends):
            status = "ok"
        else:
            status = "degraded"
        return {
            "status": status,
            "backends": len(self.cluster.backends),
            "live": len(self.cluster.live()),
            "inflight": inflight,
            "max_inflight": max_inflight,
            "queries": queries,
            "shards": shards,
            "per_backend": per_backend,
        }

    async def _merged_stats(self) -> dict[str, Any]:
        results = await self._fan_out("stats")
        payloads = {
            bid: p
            for bid, p in results.items()
            if isinstance(p, dict)
        }
        queries = sum(int(p.get("queries", 0)) for p in payloads.values())
        total_response = sum(
            float(p.get("mean_response_ms", 0.0)) * int(p.get("queries", 0))
            for p in payloads.values()
        )
        total_decision = sum(
            float(p.get("mean_decision_ms", 0.0)) * int(p.get("queries", 0))
            for p in payloads.values()
        )
        per_disk: list[int] = []
        for p in payloads.values():
            buckets = p.get("per_disk_buckets")
            if not isinstance(buckets, list):
                continue
            # backends are replicas of one deployment: disk j here is
            # disk j there, so fleet-wide load per disk sums elementwise
            if len(buckets) > len(per_disk):
                per_disk.extend([0] * (len(buckets) - len(per_disk)))
            for j, v in enumerate(buckets):
                per_disk[j] += int(v)
        hists = [
            WireHistogram.from_wire(p.get("response_histogram"))
            for p in payloads.values()
        ]
        return {
            "queries": queries,
            "buckets": sum(int(p.get("buckets", 0)) for p in payloads.values()),
            "degraded_queries": sum(
                int(p.get("degraded_queries", 0)) for p in payloads.values()
            ),
            "mean_response_ms": total_response / queries if queries else 0.0,
            "max_response_ms": max(
                (float(p.get("max_response_ms", 0.0)) for p in payloads.values()),
                default=0.0,
            ),
            "p50_response_ms": merged_quantile(hists, 0.50),
            "p95_response_ms": merged_quantile(hists, 0.95),
            "p99_response_ms": merged_quantile(hists, 0.99),
            "mean_decision_ms": total_decision / queries if queries else 0.0,
            "cache_hits": sum(
                int(p.get("cache_hits", 0)) for p in payloads.values()
            ),
            "batches": sum(int(p.get("batches", 0)) for p in payloads.values()),
            "per_disk_buckets": per_disk,
            "backends": len(self.cluster.backends),
            "live": len(self.cluster.live()),
            "per_backend": payloads,
        }

    async def _merged_metrics(self) -> str:
        results = await self._fan_out("metrics")
        # to_prometheus takes the registry's sync lock; keep it off the
        # event loop (a concurrent metric write would stall all clients)
        own = await asyncio.get_running_loop().run_in_executor(
            self._control_executor, to_prometheus, self.registry
        )
        parts = [own]
        for b in self.cluster.backends:
            payload = results.get(b.backend_id)
            if not isinstance(payload, dict) or not isinstance(
                payload.get("text"), str
            ):
                continue
            parts.append(
                f"# repro.cluster: backend {b.backend_id} "
                f"({b.host}:{b.port})\n"
            )
            parts.append(str(payload["text"]))
        return "".join(parts)

    # ------------------------------------------------------------------
    # fleet-wide broadcasts
    # ------------------------------------------------------------------
    async def _op_broadcast(
        self, req_id: int, op: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        raw = params.get("disks")
        if (
            not isinstance(raw, list)
            or not raw
            or not all(
                isinstance(d, int) and not isinstance(d, bool) for d in raw
            )
        ):
            return error_response(
                req_id, "BAD_REQUEST", "disks must be a non-empty int list"
            )
        # one broadcast at a time: two racing mark_failed/mark_repaired
        # broadcasts apply in the same order on every backend
        async with self._broadcast_mutex:
            results = await self._fan_out(op, params)
        failed = {
            bid: r for bid, r in results.items() if isinstance(r, NetError)
        }
        if failed:
            first = next(iter(failed.values()))
            code = first.code if isinstance(first, RemoteError) else "INTERNAL"
            return error_response(
                req_id,
                code,
                f"broadcast {op} failed on backend(s) "
                f"{sorted(failed)}: {first}",
            )
        return ok_response(
            req_id, {"disks": raw, "backends": sorted(results)}
        )
