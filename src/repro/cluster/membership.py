"""Cluster membership: the live-backend map and the health monitor.

:class:`ClusterMap` is the routing table — every known backend, which of
them are live, and rendezvous (highest-random-weight) routing of
signature keys over the live set.  Rendezvous hashing gives the two
properties the warm-cache tier needs with no token ring to maintain:

* **Minimal disruption.**  When a backend dies, only the keys it owned
  re-route (to their second-highest scorer); every other signature keeps
  its backend and therefore its warm ``NetworkCache`` entries and fleet
  lanes.
* **Rebalance-on-rejoin for free.**  Scores are a pure function of
  (key, backend id), so a backend that rejoins wins back *exactly* the
  keys it owned before — no state to migrate, the stale keys simply
  route home again.

The map is confined to the router's event loop: no internal locking, by
design — a sync lock here would put a blocking primitive on every routed
request's path through the proxy's coroutines.  Mutate it only from the
loop (the health monitor and the router both live there).

:class:`HealthMonitor` drives liveness: it probes every backend's
``health`` op on a fixed cadence and applies *deadline-based ejection* —
a backend is not ejected on one lost probe, but when its last successful
probe is older than ``ejection_ms``.  Any successful probe of a dead
backend rejoins it immediately.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.net.client import AsyncSchedulerClient
from repro.net.errors import NetError
from repro.cluster.config import ClusterConfig
from repro.service.signature import rendezvous_choice

__all__ = [
    "BackendInfo",
    "ClusterMap",
    "HealthMonitor",
    "NoLiveBackendsError",
]


class NoLiveBackendsError(ReproError):
    """Every backend is ejected; the cluster cannot route anything."""


@dataclass(frozen=True)
class BackendInfo:
    """Address record for one backend ``repro serve`` process."""

    backend_id: str
    host: str
    port: int


class ClusterMap:
    """All known backends, their liveness, and rendezvous routing.

    Event-loop confined: call every method from the router's loop only
    (see the module docstring for why there is deliberately no lock).
    """

    def __init__(self, backends: Sequence[BackendInfo]) -> None:
        if not backends:
            raise ValueError("a cluster needs at least one backend")
        self._backends: dict[str, BackendInfo] = {}
        for b in backends:
            if b.backend_id in self._backends:
                raise ValueError(f"duplicate backend id {b.backend_id!r}")
            self._backends[b.backend_id] = b
        self._dead: set[str] = set()
        #: bumps on every liveness change (tests, metrics, debugging)
        self.version = 0

    # ------------------------------------------------------------------
    @property
    def backends(self) -> list[BackendInfo]:
        """Every known backend, live or dead, in id order."""
        return [self._backends[k] for k in sorted(self._backends)]

    def live(self) -> list[BackendInfo]:
        """Live backends in id order."""
        return [
            self._backends[k]
            for k in sorted(self._backends)
            if k not in self._dead
        ]

    def get(self, backend_id: str) -> BackendInfo:
        return self._backends[backend_id]

    def is_live(self, backend_id: str) -> bool:
        return backend_id in self._backends and backend_id not in self._dead

    # ------------------------------------------------------------------
    def mark_dead(self, backend_id: str) -> bool:
        """Eject a backend from routing; True if its state changed."""
        if backend_id not in self._backends or backend_id in self._dead:
            return False
        self._dead.add(backend_id)
        self.version += 1
        return True

    def mark_alive(self, backend_id: str) -> bool:
        """Rejoin a backend; True if its state changed.

        Rendezvous scores are stateless, so the rejoined backend
        immediately receives exactly the signature share it owned
        before ejection.
        """
        if backend_id not in self._backends or backend_id not in self._dead:
            return False
        self._dead.discard(backend_id)
        self.version += 1
        return True

    # ------------------------------------------------------------------
    def route(
        self, key: bytes, *, exclude: Iterable[str] = ()
    ) -> BackendInfo:
        """The live backend owning ``key`` (highest rendezvous score).

        ``exclude`` removes additional ids from consideration — the
        router uses it during connect-failover so a backend that just
        refused a connection is not retried in the same request even if
        the monitor has not ejected it yet.
        """
        skip = set(exclude)
        candidates = [
            k
            for k in self._backends
            if k not in self._dead and k not in skip
        ]
        if not candidates:
            raise NoLiveBackendsError(
                f"no live backends (known: {sorted(self._backends)}, "
                f"dead: {sorted(self._dead)}, excluded: {sorted(skip)})"
            )
        return self._backends[rendezvous_choice(key, candidates)]


class HealthMonitor:
    """Probe backends on a cadence; eject on deadline, rejoin on success.

    Runs as one task on the router's event loop.  Each round probes all
    backends concurrently with ``probe_timeout_ms``; a backend whose last
    *successful* probe is older than ``ejection_ms`` is marked dead, and
    any success on a dead backend marks it alive again.  ``on_change``
    (if given) fires from the loop with ``(backend_id, alive)`` after
    each transition.
    """

    def __init__(
        self,
        cluster: ClusterMap,
        clients: Mapping[str, AsyncSchedulerClient],
        config: ClusterConfig,
        *,
        on_change: Callable[[str, bool], None] | None = None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cluster = cluster
        self._clients = clients
        self._config = config
        self._on_change = on_change
        self._time_fn = time_fn
        self._task: asyncio.Task[None] | None = None
        # everyone starts with a fresh lease: a backend must stay
        # unreachable for a full ejection window before it is ejected
        self._last_ok: dict[str, float] = {}
        #: probe rounds completed (tests wait on this advancing)
        self.rounds = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is not None:
            return
        now = self._time_fn()
        for b in self.cluster.backends:
            self._last_ok.setdefault(b.backend_id, now)
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        interval_s = self._config.probe_interval_ms / 1000.0
        while True:
            await asyncio.gather(
                *(
                    self._probe(b.backend_id)
                    for b in self.cluster.backends
                )
            )
            self.rounds += 1
            await asyncio.sleep(interval_s)

    async def _probe(self, backend_id: str) -> None:
        client = self._clients.get(backend_id)
        if client is None:
            return
        try:
            await client.request(
                "health", deadline_ms=self._config.probe_timeout_ms
            )
        except NetError:
            last = self._last_ok.get(backend_id, self._time_fn())
            overdue_ms = (self._time_fn() - last) * 1000.0
            if overdue_ms >= self._config.ejection_ms:
                if self.cluster.mark_dead(backend_id) and self._on_change:
                    self._on_change(backend_id, False)
            return
        self._last_ok[backend_id] = self._time_fn()
        if self.cluster.mark_alive(backend_id) and self._on_change:
            self._on_change(backend_id, True)
