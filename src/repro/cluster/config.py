"""Configuration for the cluster routing tier."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.protocol import MAX_FRAME_BYTES
from repro.obs.registry import MetricsRegistry

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Transport, liveness and failover policy for a routing proxy.

    Attributes
    ----------
    host, port:
        The router's bind address; port ``0`` picks an ephemeral port
        (read it back from :attr:`RoutingProxy.port` once started).
    probe_interval_ms:
        How often the health monitor probes every backend.
    probe_timeout_ms:
        Per-probe deadline; a probe slower than this counts as a miss.
    ejection_ms:
        Deadline-based ejection: a backend whose last successful probe
        is older than this is marked dead and leaves the routing table
        until a probe succeeds again (rejoin restores exactly its old
        rendezvous share).
    forward_deadline_ms:
        Deadline applied to each forwarded backend RPC (submits and
        control ops); ``None`` waits as long as the edge client does.
    retry_after_ms:
        Backoff hint attached to ``OVERLOADED`` responses the router
        itself generates (no live backends).
    max_inflight:
        Router-side cap on concurrently forwarded submits — a backstop,
        not the primary admission control (each backend sheds on its own
        ``max_inflight`` first).
    max_frame_bytes:
        Per-frame size limit on both router sides.
    registry:
        Sink for the router's metrics; ``None`` creates a private one.
    """

    host: str = "127.0.0.1"
    port: int = 0
    probe_interval_ms: float = 200.0
    probe_timeout_ms: float = 500.0
    ejection_ms: float = 1500.0
    forward_deadline_ms: float | None = 30000.0
    retry_after_ms: float = 50.0
    max_inflight: int = 256
    max_frame_bytes: int = MAX_FRAME_BYTES
    registry: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.probe_interval_ms <= 0:
            raise ValueError(
                f"probe_interval_ms must be > 0, got {self.probe_interval_ms}"
            )
        if self.probe_timeout_ms <= 0:
            raise ValueError(
                f"probe_timeout_ms must be > 0, got {self.probe_timeout_ms}"
            )
        if self.ejection_ms <= 0:
            raise ValueError(
                f"ejection_ms must be > 0, got {self.ejection_ms}"
            )
        if self.forward_deadline_ms is not None and self.forward_deadline_ms <= 0:
            raise ValueError(
                f"forward_deadline_ms must be > 0 or None, "
                f"got {self.forward_deadline_ms}"
            )
        if self.retry_after_ms < 0:
            raise ValueError(
                f"retry_after_ms must be >= 0, got {self.retry_after_ms}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
