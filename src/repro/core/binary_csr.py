"""Algorithm 6 on the compiled CSR layout — the ``pr-csr`` solver.

Same binary-scaling skeleton and StoreFlows/RestoreFlows discipline as
:mod:`repro.core.binary_pr`, but the feasibility probes run the CSR
flat-array kernel (:mod:`repro.maxflow.csr_push_relabel`): the prober
compiles the retrieval network once at :meth:`~CsrProber.attach` time
and every probe after that is ``initialize(preserve_flow=True)`` +
``run()`` over the frozen topology's reused scratch buffers — no
per-probe allocation, no adjacency re-walk.

Differentially interchangeable with ``pr-binary``: identical schedules
(the prober is flow-conserving and the default FIFO selection is an
operation-for-operation port of the list engine), measured faster on
the generalized-instance family (see BENCH_ablation_engines.json).
"""

from __future__ import annotations

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.scaling import Prober, binary_scaling_solve
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.maxflow.csr_push_relabel import CsrPushRelabelState

__all__ = ["CsrProber", "CsrBinarySolver"]


class CsrProber(Prober):
    """Warm-started CSR push–relabel probes over one compiled topology."""

    conserves_flow = True

    def __init__(
        self,
        *,
        selection: str = "fifo",
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        self.selection = selection
        self.initial_heights = initial_heights
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic
        self._state: CsrPushRelabelState | None = None

    def attach(self, network: RetrievalNetwork) -> None:
        self._state = CsrPushRelabelState(
            network.graph,
            network.source,
            network.sink,
            selection=self.selection,
            initial_heights=self.initial_heights,
            global_relabel_interval=self.global_relabel_interval,
            gap_heuristic=self.gap_heuristic,
        )

    def probe(self) -> float:
        assert self._state is not None, "attach() before probe()"
        self._state.initialize(preserve_flow=True)
        return self._state.run()

    def op_counts(self) -> tuple[int, int, int]:
        if self._state is None:
            return (0, 0, 0)
        return (self._state.pushes, self._state.relabels, 0)

    def harvest(self, stats: SolverStats) -> None:
        if self._state is not None:
            stats.pushes += self._state.pushes
            stats.relabels += self._state.relabels
            stats.extra["global_relabels"] = self._state.global_relabels
            stats.extra["gap_events"] = self._state.gap_events


class CsrBinarySolver:
    """Integrated binary-scaled push–relabel on the CSR layout."""

    name = "pr-csr"
    supports_warm_start = True

    def __init__(
        self,
        *,
        selection: str = "fifo",
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        self.selection = selection
        self.initial_heights = initial_heights
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic

    def solve(
        self,
        problem: RetrievalProblem,
        *,
        network: RetrievalNetwork | None = None,
    ) -> RetrievalSchedule:
        prober = CsrProber(
            selection=self.selection,
            initial_heights=self.initial_heights,
            global_relabel_interval=self.global_relabel_interval,
            gap_heuristic=self.gap_heuristic,
        )
        return binary_scaling_solve(problem, prober, self.name, network=network)
