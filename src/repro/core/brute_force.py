"""Exhaustive optimal scheduler — the test oracle.

Enumerates every replica choice with branch-and-bound pruning on the
running maximum finish time.  Exponential (``c^|Q|``); guarded by a
bucket-count limit so it is only ever used on the tiny instances the
tests and paper-example checks feed it.
"""

from __future__ import annotations

from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.errors import InfeasibleScheduleError

__all__ = ["brute_force_response_time", "BruteForceSolver"]

#: refuse instances bigger than this (c^|Q| blowup)
MAX_BUCKETS = 16


def _search(problem: RetrievalProblem) -> tuple[float, list[int]]:
    sys_ = problem.system
    Q = problem.num_buckets
    # precompute per-disk finish times for k = 1..Q
    finish = {
        d: [0.0] + [sys_.finish_time(d, k) for k in range(1, Q + 1)]
        for d in problem.replica_disks()
    }
    replicas = [sorted(set(r)) for r in problem.replicas]
    # order buckets by ascending option count: tighter pruning up front
    order = sorted(range(Q), key=lambda i: len(replicas[i]))

    counts: dict[int, int] = {d: 0 for d in finish}
    best_time = float("inf")
    best_choice: list[int] = [-1] * Q
    choice: list[int] = [-1] * Q

    def recurse(pos: int, current_max: float) -> None:
        nonlocal best_time, best_choice
        if current_max >= best_time:
            return  # bound: cannot improve
        if pos == Q:
            best_time = current_max
            best_choice = choice.copy()
            return
        i = order[pos]
        for d in replicas[i]:
            k = counts[d] + 1
            t = finish[d][k]
            new_max = t if t > current_max else current_max
            if new_max >= best_time:
                continue
            counts[d] = k
            choice[i] = d
            recurse(pos + 1, new_max)
            counts[d] = k - 1
            choice[i] = -1

    recurse(0, 0.0)
    return best_time, best_choice


def brute_force_response_time(problem: RetrievalProblem) -> float:
    """Optimal response time by exhaustive search (small instances)."""
    if problem.num_buckets > MAX_BUCKETS:
        raise InfeasibleScheduleError(
            f"brute force capped at {MAX_BUCKETS} buckets "
            f"(got {problem.num_buckets})"
        )
    best_time, _ = _search(problem)
    return best_time


class BruteForceSolver:
    """Oracle solver; registry name ``brute-force``."""

    name = "brute-force"

    def solve(self, problem: RetrievalProblem) -> RetrievalSchedule:
        if problem.num_buckets > MAX_BUCKETS:
            raise InfeasibleScheduleError(
                f"brute force capped at {MAX_BUCKETS} buckets "
                f"(got {problem.num_buckets})"
            )
        best_time, best_choice = _search(problem)
        assignment = {i: d for i, d in enumerate(best_choice)}
        return RetrievalSchedule(
            problem, assignment, best_time, SolverStats(), solver=self.name
        )
