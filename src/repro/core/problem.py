"""Problem statement: which buckets, which replicas, which hardware.

Notation (the paper's Table I)
------------------------------
========  ==========================================================
``N``     total number of disks in the system
``|Q|``   number of buckets to retrieve (query size)
``c``     number of copies of each bucket
``C_j``   average retrieval cost of one bucket from disk ``j`` (ms)
``D_j``   network delay to disk ``j``'s site (ms)
``X_j``   time until disk ``j`` is idle; 0 if idle (ms)
========  ==========================================================

A :class:`RetrievalProblem` freezes one query against one system state.
The *basic* problem of [18] is the special case of homogeneous disks, one
site, and no delays or loads; :attr:`RetrievalProblem.is_basic` detects
it (Algorithm 1 is only valid there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.decluster.multisite import MultiSitePlacement
from repro.errors import InfeasibleScheduleError
from repro.storage.system import StorageSystem

__all__ = ["RetrievalProblem"]


@dataclass(frozen=True)
class RetrievalProblem:
    """One query against one storage-system state.

    Attributes
    ----------
    system:
        The hardware: provides ``C_j``, ``D_j``, ``X_j`` per disk.
    replicas:
        ``replicas[i]`` is the tuple of disk ids holding copies of the
        query's ``i``-th bucket.  Duplicate ids within a tuple are allowed
        and collapse to one retrieval option.
    labels:
        Optional display labels per bucket (e.g. grid coordinates);
        defaults to the bucket index.
    """

    system: StorageSystem
    replicas: tuple[tuple[int, ...], ...]
    labels: tuple = field(default=())

    def __post_init__(self) -> None:
        if not self.replicas:
            raise InfeasibleScheduleError("query has no buckets")
        N = self.system.num_disks
        for i, reps in enumerate(self.replicas):
            if not reps:
                raise InfeasibleScheduleError(f"bucket {i} has no replicas")
            for d in reps:
                if not 0 <= d < N:
                    raise InfeasibleScheduleError(
                        f"bucket {i} replica on unknown disk {d} (N={N})"
                    )
        if self.labels and len(self.labels) != len(self.replicas):
            raise InfeasibleScheduleError(
                f"{len(self.labels)} labels for {len(self.replicas)} buckets"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_query(
        cls,
        system: StorageSystem,
        placement: MultiSitePlacement,
        bucket_coords: Sequence[tuple[int, int]],
    ) -> "RetrievalProblem":
        """Build a problem from grid coordinates under a placement."""
        if placement.total_disks != system.num_disks:
            raise InfeasibleScheduleError(
                f"placement has {placement.total_disks} disks, "
                f"system has {system.num_disks}"
            )
        reps = tuple(
            placement.allocation.replicas_of(i, j) for (i, j) in bucket_coords
        )
        return cls(system, reps, labels=tuple(bucket_coords))

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """``|Q|``."""
        return len(self.replicas)

    @property
    def num_disks(self) -> int:
        """``N``."""
        return self.system.num_disks

    @property
    def num_copies(self) -> int:
        """``c`` — the maximum replica count over the query's buckets."""
        return max(len(set(r)) for r in self.replicas)

    @property
    def is_basic(self) -> bool:
        """True for the basic problem: homogeneous, idle, no delays."""
        costs = self.system.costs()
        return bool(
            np.all(costs == costs[0])
            and not np.any(self.system.delays())
            and not np.any(self.system.loads())
        )

    def replica_disks(self) -> set[int]:
        """All disks that hold at least one requested bucket."""
        return {d for reps in self.replicas for d in reps}

    def in_degree(self, disk: int) -> int:
        """Buckets of this query with a copy on ``disk``.

        Algorithm 3's removal test: a disk→sink edge whose capacity has
        reached this bound can never carry more flow.
        """
        return sum(1 for reps in self.replicas if disk in reps)

    def label_of(self, bucket_index: int) -> object:
        return (
            self.labels[bucket_index] if self.labels else bucket_index
        )

    # trivial bounds used by Algorithm 6 and by tests -------------------
    def theoretical_min_deadline(self) -> float:
        """Algorithm 6 lines 7-11: min over disks of
        ``D + X + ceil(|Q|/N) * C``, minus the fastest block time."""
        sys_ = self.system
        per_disk = -(-self.num_buckets // self.num_disks)  # ceil
        best = min(
            sys_.finish_time(j, per_disk) for j in range(self.num_disks)
        )
        min_speed = float(sys_.costs().min())
        return best - min_speed

    def theoretical_max_deadline(self) -> float:
        """Algorithm 6 lines 4-6: max over disks of ``D + X + |Q| * C``."""
        sys_ = self.system
        return max(
            sys_.finish_time(j, self.num_buckets) for j in range(self.num_disks)
        )

    def min_speed(self) -> float:
        """``C`` of the fastest disk (Algorithm 6's range resolution)."""
        return float(self.system.costs().min())
