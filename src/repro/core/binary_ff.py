"""Integrated Ford–Fulkerson with binary capacity scaling (``ff-binary``).

The paper's abstract compares "integrated maximum flow algorithms ...
[the] first algorithm uses Ford-Fulkerson method and the second ...
Push-relabel", concluding the push–relabel family is superior.  Algorithm
2 is the *incremental* integrated FF; this module supplies the missing
binary-scaled variant — Algorithm 6's skeleton with warm-started
augmenting-path probes instead of push/relabel — so the FF-vs-PR
comparison can be made *within* the same capacity-scaling framework
(``benchmarks/bench_ablation_ff_families.py``).

Why FF loses here, mechanically: an augmenting-path probe at infeasible
capacities wastes a full DFS sweep proving no path exists, and restored
flows after feasible probes still leave it re-proving reachability from
scratch; push–relabel instead banks its partial work in vertex heights
and excesses.  The benchmark quantifies exactly this.
"""

from __future__ import annotations

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.scaling import Prober, binary_scaling_solve
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.maxflow.ford_fulkerson import ford_fulkerson

__all__ = ["FordFulkersonProber", "FordFulkersonBinarySolver"]


class FordFulkersonProber(Prober):
    """Warm-started DFS augmenting-path probes (integrated FF)."""

    conserves_flow = True

    def __init__(self) -> None:
        self._network: RetrievalNetwork | None = None
        self._augmentations = 0

    def attach(self, network: RetrievalNetwork) -> None:
        self._network = network

    def probe(self) -> float:
        net = self._network
        assert net is not None, "attach() before probe()"
        result = ford_fulkerson(
            net.graph, net.source, net.sink, warm_start=True
        )
        self._augmentations += result.augmentations
        return result.value

    def op_counts(self) -> tuple[int, int, int]:
        return (0, 0, self._augmentations)

    def harvest(self, stats: SolverStats) -> None:
        stats.augmentations += self._augmentations


class FordFulkersonBinarySolver:
    """Binary capacity scaling with flow-conserving Ford–Fulkerson."""

    name = "ff-binary"
    supports_warm_start = True

    def solve(
        self,
        problem: RetrievalProblem,
        *,
        network: RetrievalNetwork | None = None,
    ) -> RetrievalSchedule:
        return binary_scaling_solve(
            problem, FordFulkersonProber(), self.name, network=network
        )
