"""The black-box baseline from [12].

Same binary capacity scaling and min-cost incrementation as Algorithm 6,
but max flow is used "as a black box technique": every feasibility probe
resets the flow to zero and solves from scratch, so nothing is conserved
between probes.  (The paper's baseline wraps LEDA's ``MAX_FLOW``; ours
wraps any engine from :mod:`repro.maxflow`, push–relabel by default for
the like-for-like comparison of Figures 7-9.)
"""

from __future__ import annotations

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.scaling import Prober, binary_scaling_solve
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.maxflow import get_engine

__all__ = ["BlackBoxProber", "BlackBoxBinarySolver"]


class BlackBoxProber(Prober):
    """Cold-start probes: reset flow, solve fresh, every time."""

    conserves_flow = False

    def __init__(self, engine: str = "push-relabel", **engine_kwargs: object) -> None:
        self.engine = get_engine(engine, **engine_kwargs)
        self._network: RetrievalNetwork | None = None
        self._pushes = 0
        self._relabels = 0
        self._augmentations = 0

    def attach(self, network: RetrievalNetwork) -> None:
        self._network = network

    def probe(self) -> float:
        net = self._network
        assert net is not None, "attach() before probe()"
        result = self.engine.solve(
            net.graph, net.source, net.sink, warm_start=False
        )
        self._pushes += result.pushes
        self._relabels += result.relabels
        self._augmentations += result.augmentations
        return result.value

    def op_counts(self) -> tuple[int, int, int]:
        return (self._pushes, self._relabels, self._augmentations)

    def harvest(self, stats: SolverStats) -> None:
        stats.pushes += self._pushes
        stats.relabels += self._relabels
        stats.augmentations += self._augmentations


class BlackBoxBinarySolver:
    """[12]'s binary-scaling retrieval with a black-box max-flow engine."""

    name = "blackbox-binary"
    supports_warm_start = True

    def __init__(self, engine: str = "push-relabel", **engine_kwargs: object) -> None:
        self.engine_name = engine
        self.engine_kwargs = engine_kwargs

    def solve(
        self,
        problem: RetrievalProblem,
        *,
        network: RetrievalNetwork | None = None,
    ) -> RetrievalSchedule:
        prober = BlackBoxProber(self.engine_name, **self.engine_kwargs)
        return binary_scaling_solve(problem, prober, self.name, network=network)
