"""Algorithm 5 — ``PushRelabelIncremental()`` (integrated, no scaling).

Starts with all disk→sink capacities at zero and alternates
``IncrementMinCost()`` with warm-started push–relabel runs until the sink
excess reaches ``|Q|``.  The crucial property is line "flow values are not
initialized back to 0": each run's :class:`~repro.maxflow.PushRelabelState`
re-initialization (clear queue, saturate only the *residual* slack of the
source arcs, reset heights, zero source excess — lines 3-14) conserves
every previously routed bucket.

Worst case ``O(c · |Q|⁴)``; Algorithm 6 (:mod:`repro.core.binary_pr`)
adds binary scaling to bound the increment count by ``N``.
"""

from __future__ import annotations

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.scaling import Prober, incremental_solve
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.maxflow.push_relabel import PushRelabelState

__all__ = ["SequentialProber", "PushRelabelIncrementalSolver"]


class SequentialProber(Prober):
    """Warm-started sequential push–relabel probes (the integrated case)."""

    conserves_flow = True

    def __init__(
        self,
        *,
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        self.initial_heights = initial_heights
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic
        self._state: PushRelabelState | None = None

    def attach(self, network: RetrievalNetwork) -> None:
        self._state = PushRelabelState(
            network.graph,
            network.source,
            network.sink,
            initial_heights=self.initial_heights,
            global_relabel_interval=self.global_relabel_interval,
            gap_heuristic=self.gap_heuristic,
        )

    def probe(self) -> float:
        assert self._state is not None, "attach() before probe()"
        self._state.initialize(preserve_flow=True)
        return self._state.run()

    def op_counts(self) -> tuple[int, int, int]:
        if self._state is None:
            return (0, 0, 0)
        return (self._state.pushes, self._state.relabels, 0)

    def harvest(self, stats: SolverStats) -> None:
        if self._state is not None:
            stats.pushes += self._state.pushes
            stats.relabels += self._state.relabels
            stats.extra["global_relabels"] = self._state.global_relabels


class PushRelabelIncrementalSolver:
    """Integrated push–relabel without binary scaling (Algorithm 5)."""

    name = "pr-incremental"

    def __init__(self, *, initial_heights: str = "exact") -> None:
        self.initial_heights = initial_heights

    def solve(self, problem: RetrievalProblem) -> RetrievalSchedule:
        prober = SequentialProber(initial_heights=self.initial_heights)
        return incremental_solve(problem, prober, self.name)
