"""Flow-network representation of a retrieval problem (Figures 3 and 4).

Vertex layout: ``0 = source``, ``1 = sink``, ``2 .. 2+|Q|-1`` bucket
vertices, ``2+|Q| .. 2+|Q|+N-1`` disk vertices.  Arcs:

* source → bucket, capacity 1 (one retrieval per requested bucket);
* bucket → disk, capacity 1, one arc per *distinct* replica location;
* disk → sink — the capacity-scaled edge set the paper calls ``E``.

The disk→sink capacities encode a candidate response time ``t``: disk
``j`` may serve ``floor((t - D_j - X_j) / C_j)`` buckets by ``t``
(Algorithm 6 line 15).  Integrated solvers mutate these capacities *in
place* while conserving flow; black-box solvers additionally call
:meth:`~repro.graph.FlowNetwork.reset_flow` before each probe.
"""

from __future__ import annotations

from repro import invariants
from repro.core.problem import RetrievalProblem
from repro.errors import InfeasibleScheduleError, InvalidArcError
from repro.graph.flownetwork import FlowNetwork, _exact_int

__all__ = ["RetrievalNetwork"]


class RetrievalNetwork:
    """The mutable max-flow instance for one :class:`RetrievalProblem`."""

    def __init__(self, problem: RetrievalProblem) -> None:
        self.problem = problem
        Q = problem.num_buckets
        N = problem.num_disks
        g = FlowNetwork(2 + Q + N)
        self.graph = g
        self.source = 0
        self.sink = 1

        #: source→bucket arc ids, indexed by bucket
        self.source_arcs: list[int] = []
        #: bucket→disk arc ids per bucket (deduplicated replicas)
        self.replica_arcs: list[list[int]] = []
        #: disk→sink arc ids, indexed by disk
        self.sink_arcs: list[int] = []

        for i, reps in enumerate(problem.replicas):
            bv = self.bucket_vertex(i)
            self.source_arcs.append(g.add_arc(self.source, bv, 1))
            arcs = []
            for d in sorted(set(reps)):
                arcs.append(g.add_arc(bv, self.disk_vertex(d), 1))
            self.replica_arcs.append(arcs)
        for j in range(N):
            self.sink_arcs.append(g.add_arc(self.disk_vertex(j), self.sink, 0))

        # The disk→sink arcs are appended last, so their forward slots
        # form the arithmetic run base, base+2, ... (twins at the odd
        # slots).  Capture that run as a strided slice — the vectorized
        # per-probe rescale writes all N capacities in one extended-slice
        # assignment.  Verified here rather than assumed, with a per-arc
        # fallback kept for any future topology that breaks the run.
        base = self.sink_arcs[0] if self.sink_arcs else 0
        if self.sink_arcs == list(range(base, base + 2 * N, 2)):
            self._sink_cap_slice: slice | None = slice(base, base + 2 * N, 2)
        else:  # pragma: no cover - current construction always contiguous
            self._sink_cap_slice = None

    @property
    def disk_in_degree(self) -> list[int]:
        """Per-disk replica multiplicity within this query (Algorithm 3's
        ``in_degree``).

        Read straight from the graph's O(1) in-degree cache: the only
        original arcs entering a disk vertex are the deduplicated
        bucket→disk replica arcs, so no separate copy needs maintaining.
        """
        return [
            self.graph.in_degree(self.disk_vertex(j))
            for j in range(self.problem.num_disks)
        ]

    # ------------------------------------------------------------------
    # vertex arithmetic
    # ------------------------------------------------------------------
    def bucket_vertex(self, i: int) -> int:
        return 2 + i

    def disk_vertex(self, j: int) -> int:
        return 2 + self.problem.num_buckets + j

    def disk_of_vertex(self, v: int) -> int:
        return v - 2 - self.problem.num_buckets

    # ------------------------------------------------------------------
    # topology reuse (warm starts across queries)
    # ------------------------------------------------------------------
    def signature(self) -> tuple[tuple[int, ...], ...]:
        """The replica-set signature this topology was built from.

        Two problems with equal signatures (and the same system) produce
        byte-identical networks, so a network built for one can serve the
        other after :meth:`rebind` — the basis of the service-layer
        warm-start cache.
        """
        return self.problem.replicas

    def rebind(self, problem: RetrievalProblem) -> None:
        """Point this network at another problem with the same topology.

        Only the ``problem`` reference changes; arcs, capacities and flow
        are left untouched (callers decide whether the stale flow is
        worth keeping — see :meth:`clamp_flow_to_sink_caps`).  Raises if
        the replica signature differs.
        """
        if problem.replicas != self.problem.replicas:
            raise InfeasibleScheduleError(
                "cannot rebind: replica signatures differ"
            )
        if problem.num_disks != self.problem.num_disks:
            raise InfeasibleScheduleError(
                f"cannot rebind: {problem.num_disks} disks vs "
                f"{self.problem.num_disks}"
            )
        self.problem = problem

    def clamp_flow_to_sink_caps(self) -> int:
        """Cancel bucket routings on disks whose flow exceeds capacity.

        A flow carried over from an earlier solve (same topology,
        different loads) is conserving but may violate the *current*
        disk→sink capacities.  For every overloaded disk the excess
        bucket units are unrouted in full — disk→sink, bucket→disk and
        source→bucket arcs together — leaving a valid flow within
        capacities that keeps every still-affordable routing.  Returns
        the number of bucket units cancelled.
        """
        g = self.graph
        over: dict[int, int] = {}
        for j, a in enumerate(self.sink_arcs):
            excess = g.flow[a] - g.cap[a]
            if excess > 0:
                over[self.disk_vertex(j)] = excess
                g.flow[a] -= excess
                g.flow[a ^ 1] += excess
        if not over:
            if invariants.ENABLED:
                invariants.check_clamped_network(self, "clamp_flow_to_sink_caps")
            return 0
        cancelled = 0
        for i, arcs in enumerate(self.replica_arcs):
            if not over:
                break
            for a in arcs:
                if g.flow[a] > 0:
                    need = over.get(g.head[a], 0)
                    if need:
                        g.flow[a] -= 1
                        g.flow[a ^ 1] += 1
                        sa = self.source_arcs[i]
                        g.flow[sa] -= 1
                        g.flow[sa ^ 1] += 1
                        cancelled += 1
                        if need == 1:
                            del over[g.head[a]]
                        else:
                            over[g.head[a]] = need - 1
                    break  # a bucket carries at most one unit
        if invariants.ENABLED:
            invariants.check_clamped_network(self, "clamp_flow_to_sink_caps")
        return cancelled

    # ------------------------------------------------------------------
    # capacity management
    # ------------------------------------------------------------------
    def sink_caps(self) -> list[int]:
        """Current disk→sink capacities (exact ints by construction)."""
        return [self.graph.cap[a] for a in self.sink_arcs]

    def set_uniform_sink_caps(self, cap: int) -> None:
        """Set every disk→sink capacity to ``cap`` (basic problem)."""
        sl = self._sink_cap_slice
        if sl is not None:
            self.graph.cap[sl] = [cap] * len(self.sink_arcs)
        else:  # pragma: no cover - defensive fallback
            for a in self.sink_arcs:
                self.graph.cap[a] = cap

    def set_deadline_capacities(self, deadline_ms: float) -> None:
        """Capacities for candidate response time ``deadline_ms``
        (Algorithm 6 lines 14-15).

        ``capacities_at`` is the single float→int boundary of the stack:
        it maps the float deadline to exact integer bucket counts, and
        the whole vector lands in one strided slice assignment (the
        disk→sink forward slots are an arithmetic run by construction)
        instead of a per-disk Python loop — this runs inside *every*
        feasibility probe of the scaling skeleton."""
        caps = self.problem.system.capacities_at(deadline_ms)
        sl = self._sink_cap_slice
        if sl is not None:
            self.graph.cap[sl] = caps
        else:  # pragma: no cover - defensive fallback
            g_cap = self.graph.cap
            for a, c in zip(self.sink_arcs, caps):
                g_cap[a] = c

    def increment_all_sink_caps(self) -> None:
        """Raise every disk→sink capacity by one (Algorithm 1 lines 6-7)."""
        for a in self.sink_arcs:
            self.graph.cap[a] += 1

    def increment_sink_cap(self, j: int) -> None:
        """Raise disk ``j``'s disk→sink capacity by one (Algorithm 3)."""
        self.graph.cap[self.sink_arcs[j]] += 1

    def decrement_sink_cap(self, j: int, by: int = 1) -> None:
        """Lower disk ``j``'s disk→sink capacity by ``by`` units.

        The decremental half of the online mode's flow conservation
        across time: once a transfer has physically drained, the served
        units no longer occupy the disk, so the warm network's capacity
        for that disk shrinks back by exactly the drained amount (see
        :meth:`release_flow`, which must run first so the remaining flow
        still fits).  Refuses to cut below the flow currently routed or
        below zero — a capacity the flow violates would poison every
        later warm start.
        """
        by = _exact_int(by, f"sink-cap decrement on disk {j}")
        if by < 0:
            raise InvalidArcError(f"negative sink-cap decrement {by}")
        a = self.sink_arcs[j]
        g = self.graph
        new_cap = g.cap[a] - by
        if new_cap < 0:
            raise InvalidArcError(
                f"disk {j}: decrement {by} would drop sink cap "
                f"{g.cap[a]} below zero"
            )
        if new_cap < g.flow[a]:
            raise InvalidArcError(
                f"disk {j}: sink cap {new_cap} would fall below the "
                f"routed flow {g.flow[a]} — release_flow first"
            )
        g.cap[a] = new_cap

    def release_flow(self, j: int, units: int) -> int:
        """Unroute up to ``units`` bucket routings that pass through disk
        ``j``, returning how many were actually released.

        The decremental repair primitive for the online scheduler: when
        a query's transfer on disk ``j`` drains, its routed units are no
        longer *pending* flow, so they are cancelled in full —
        source→bucket, bucket→disk and disk→sink arcs together (the same
        complete-unit-path discipline as :meth:`clamp_flow_to_sink_caps`)
        — leaving a smaller but still conserving flow.  Releasing fewer
        than ``units`` (because the current flow routes fewer through
        ``j``) is not an error: a later solve for the same signature may
        have rerouted the topology's conserved flow elsewhere.
        """
        units = _exact_int(units, f"flow release on disk {j}")
        if units < 0:
            raise InvalidArcError(f"negative flow release {units}")
        g = self.graph
        sa_sink = self.sink_arcs[j]
        dv = self.disk_vertex(j)
        remaining = min(units, g.flow[sa_sink])
        released = 0
        if remaining > 0:
            for i, arcs in enumerate(self.replica_arcs):
                if remaining == 0:
                    break
                for a in arcs:
                    if g.head[a] == dv and g.flow[a] > 0:
                        g.flow[a] -= 1
                        g.flow[a ^ 1] += 1
                        sa = self.source_arcs[i]
                        g.flow[sa] -= 1
                        g.flow[sa ^ 1] += 1
                        remaining -= 1
                        released += 1
                        break  # a bucket carries at most one unit
            g.flow[sa_sink] -= released
            g.flow[sa_sink ^ 1] += released
        if invariants.ENABLED:
            invariants.check_valid_flow(
                g, self.source, self.sink, f"release_flow(disk={j})"
            )
        return released

    # ------------------------------------------------------------------
    # flow management
    # ------------------------------------------------------------------
    def saturate_source_arcs(self) -> None:
        """Saturate every source→bucket arc.

        The integrated solvers' stated precondition: each requested
        bucket demands exactly one unit of retrieval, pushed onto the
        source→bucket arcs up front and then routed bucket-by-bucket.
        """
        g = self.graph
        for a in self.source_arcs:
            g.flow[a] = 1
            g.flow[a ^ 1] = -1

    # ------------------------------------------------------------------
    # flow inspection
    # ------------------------------------------------------------------
    def flow_value(self) -> int:
        """Net flow into the sink."""
        g = self.graph
        return -sum(g.flow[a] for a in g.adj[self.sink])

    def counts_per_disk(self) -> list[int]:
        """Buckets currently routed through each disk (exact ints)."""
        g = self.graph
        return [g.flow[a] for a in self.sink_arcs]

    def assignment(self) -> dict[int, int]:
        """Extract bucket → disk from the current (integral) flow.

        Raises if the flow is not a complete retrieval (value < |Q|).
        """
        g = self.graph
        out: dict[int, int] = {}
        for i, arcs in enumerate(self.replica_arcs):
            chosen = None
            for a in arcs:
                if g.flow[a] > 0:
                    chosen = self.disk_of_vertex(g.head[a])
                    break
            if chosen is None:
                raise InfeasibleScheduleError(
                    f"bucket {i} unrouted: flow value "
                    f"{self.flow_value()} < |Q| = {self.problem.num_buckets}"
                )
            out[i] = chosen
        return out

    def response_time(self) -> float:
        """``max_j (D_j + X_j + k_j C_j)`` of the current complete flow."""
        sys_ = self.problem.system
        worst = 0.0
        for j, k in enumerate(self.counts_per_disk()):
            if k > 0:
                worst = max(worst, sys_.finish_time(j, k))
        return worst
