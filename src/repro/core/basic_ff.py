"""Algorithm 1 — ``FordFulkersonBasic()`` (from [18], basic problem only).

The original formulation initializes every source→bucket edge's flow to 1
("Algorithm 1 assumes that flow values of the edges going out of the
source vertex are all initialized to 1 at the beginning"), sets the
disk→sink capacities to the theoretical lower bound ``ceil(|Q|/N)``, and
then, bucket by bucket, DFS-es from the bucket vertex to the sink —
incrementing *all* sink capacities together whenever no augmenting path
exists (homogeneous disks make simultaneous incrementation optimal).

Saturating the source arcs up front matters: it removes every residual
``s → bucket`` arc, so the per-bucket DFS can revisit earlier decisions
through residual ``disk → bucket`` arcs (the paper's explicit
edge-reversals) but can never "un-route" a finished bucket by detouring
through the source.  Worst case ``O(c · |Q|²)``.

Only valid for the *basic* problem (homogeneous disks, no delays or
initial loads, single effective site); :meth:`solve` enforces this.
"""

from __future__ import annotations

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.errors import InfeasibleScheduleError
from repro.maxflow.ford_fulkerson import augment_unit_from

__all__ = ["FordFulkersonBasicSolver"]


class FordFulkersonBasicSolver:
    """Integrated Ford–Fulkerson for the basic retrieval problem."""

    name = "ff-basic"

    def solve(self, problem: RetrievalProblem) -> RetrievalSchedule:
        if not problem.is_basic:
            raise InfeasibleScheduleError(
                "Algorithm 1 only solves the basic problem (homogeneous "
                "disks, zero delays and loads); use 'ff-incremental' or "
                "'pr-binary' for the generalized problem"
            )
        net = RetrievalNetwork(problem)
        g = net.graph
        stats = SolverStats()
        Q = problem.num_buckets
        N = problem.num_disks

        # lines 1-2: caps <- ceil(|Q| / N), the theoretical lower bound
        net.set_uniform_sink_caps(-(-Q // N))

        # saturate all source arcs (the paper's stated precondition)
        net.saturate_source_arcs()

        # lines 3-15: per-bucket DFS with uniform capacity incrementation
        for i in range(Q):
            bv = net.bucket_vertex(i)
            while not augment_unit_from(g, bv, net.sink):
                net.increment_all_sink_caps()
                stats.increments += 1
            stats.augmentations += 1

        assignment = net.assignment()
        return RetrievalSchedule(
            problem, assignment, net.response_time(), stats, solver=self.name
        )
