"""Binary capacity scaling — the shared skeleton of Algorithm 6 and of
the black-box baseline from [12].

Both algorithms perform the same search over candidate response times:

1. bracket the optimum in ``[tmin, tmax)`` from the closed-form bounds
   (Algorithm 6 lines 1-11);
2. binary-search the bracket down to ``min_speed`` resolution, probing
   feasibility (max flow == |Q|) at each midpoint (lines 12-37);
3. finish with min-cost capacity increments from ``tmin``
   (``PushRelabelIncremental``, lines 38-42).

They differ **only** in what a probe does with previously computed flow:
the *integrated* prober warm-starts from the conserved flow (with
Algorithm 6's StoreFlows/RestoreFlows discipline), the *black-box* prober
zeroes the flow and solves from scratch — which is exactly the paper's
framing of the two families, so this module expresses the difference as a
:class:`Prober` strategy object.

Defensive deviation (documented in DESIGN.md): the paper subtracts
``min_speed`` from the closed-form ``tmin`` to "ensure that there is no
solution for tmin", but that is a heuristic, not a proof.  We *probe*
``tmin`` first; in the (rare) case it is already feasible, the bracket is
re-anchored to ``[0, tmin]`` so the binary search always starts from an
infeasible lower end and optimality is unconditional.
"""

from __future__ import annotations

import abc
import time

from repro import invariants
from repro.core.increment import MinCostIncrementer
from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.obs.trace import active_trace

__all__ = ["Prober", "binary_scaling_solve", "incremental_solve"]


class Prober(abc.ABC):
    """Strategy: run max-flow to completion at the current capacities.

    ``conserves_flow`` decides whether the skeleton maintains Algorithm
    6's StoreFlows/RestoreFlows bookkeeping (pointless when every probe
    starts from zero anyway).
    """

    #: integrated (True) vs black-box (False)
    conserves_flow: bool = True

    @abc.abstractmethod
    def attach(self, network: RetrievalNetwork) -> None:
        """Bind to a network before the first probe."""

    @abc.abstractmethod
    def probe(self) -> int:
        """Solve max-flow at the current capacities; return the exact
        integer flow value."""

    @abc.abstractmethod
    def harvest(self, stats: SolverStats) -> None:
        """Deposit accumulated engine counters into ``stats``."""

    def op_counts(self) -> tuple[int, int, int]:
        """Cumulative ``(pushes, relabels, augmentations)`` so far.

        Snapshotted around each probe by the tracing hook; per-probe
        deltas therefore sum exactly to what :meth:`harvest` deposits.
        """
        return (0, 0, 0)


def _probe(
    prober: Prober,
    stats: SolverStats,
    num_buckets: int,
    t: float,
    phase: str,
    monitor: invariants.ProbeMonitor | None = None,
) -> int:
    """One feasibility probe; records a trace event when tracing is on.

    ``monitor`` (armed sanitizer only) validates the post-probe flow and
    watches feasibility monotonicity across the solve's probes.
    """
    stats.probes += 1
    trace = active_trace()
    if trace is None and monitor is None:
        return prober.probe()
    p0, r0, a0 = prober.op_counts()
    start = time.perf_counter()
    flow = prober.probe()
    wall = time.perf_counter() - start
    p1, r1, a1 = prober.op_counts()
    feasible = flow >= num_buckets
    if trace is not None:
        trace.record(
            phase=phase,
            t=t,
            flow=flow,
            feasible=feasible,
            pushes=p1 - p0,
            relabels=r1 - r0,
            augmentations=a1 - a0,
            wall_s=wall,
        )
    if monitor is not None:
        monitor.after_probe(t, feasible, phase)
    return flow


def binary_scaling_solve(
    problem: RetrievalProblem,
    prober: Prober,
    solver_name: str,
    *,
    network: RetrievalNetwork | None = None,
) -> RetrievalSchedule:
    """Run the full Algorithm 6 skeleton with ``prober``'s flow policy.

    ``network`` warm-starts the solve from an existing
    :class:`RetrievalNetwork` of the same replica signature (see
    :meth:`RetrievalNetwork.rebind`): topology construction is skipped
    and any flow the caller restored into it is conserved — after being
    clamped to the capacities of the first probe, so a stale routing can
    never make an infeasible deadline look feasible.
    """
    if network is None:
        net = RetrievalNetwork(problem)
        warm = False
    else:
        net = network
        if net.problem is not problem:
            net.rebind(problem)
        warm = True
    g = net.graph
    stats = SolverStats()
    prober.attach(net)
    monitor = invariants.ProbeMonitor(net) if invariants.ENABLED else None
    Q = problem.num_buckets

    # lines 1-11: bracket the optimum
    tmin = problem.theoretical_min_deadline()
    tmax = problem.theoretical_max_deadline()
    min_speed = problem.min_speed()

    # defensive anchor probe at tmin (see module docstring)
    net.set_deadline_capacities(tmin)
    if warm:
        net.clamp_flow_to_sink_caps()
    flow = _probe(prober, stats, Q, tmin, "anchor", monitor)
    if flow >= Q:
        tmax, tmin = tmin, 0.0
        g.reset_flow()
    saved = g.save_flow()

    # lines 12-37: binary search with flow store/restore
    while tmax - tmin >= min_speed:
        tmid = tmin + (tmax - tmin) * 0.5
        net.set_deadline_capacities(tmid)
        flow = _probe(prober, stats, Q, tmid, "binary", monitor)
        if flow >= Q:
            # feasible but maybe not optimal: back off to the stored flow
            if prober.conserves_flow:
                g.restore_flow(saved)
            tmax = tmid
        else:
            # infeasible: this flow is valid at every larger deadline
            if prober.conserves_flow:
                saved = g.save_flow()
            tmin = tmid

    # lines 38-42: finish from tmin with min-cost increments
    if prober.conserves_flow:
        g.restore_flow(saved)
    net.set_deadline_capacities(tmin)
    schedule = incremental_solve(
        problem, prober, solver_name, stats=stats, network=net,
        entry_deadline=tmin,
    )
    return schedule


def incremental_solve(
    problem: RetrievalProblem,
    prober: Prober,
    solver_name: str,
    *,
    stats: SolverStats | None = None,
    network: RetrievalNetwork | None = None,
    entry_deadline: float = 0.0,
) -> RetrievalSchedule:
    """Algorithm 5's outer loop: probe, then increment-min-cost until |Q|.

    Called standalone (capacities start at zero — the pure
    ``pr-incremental`` solver) or as Algorithm 6's final phase (capacities
    pre-scaled by the caller; ``entry_deadline`` is the deadline those
    capacities encode, recorded as the first increment-phase probe's
    candidate ``t`` — every later candidate, being a min-cost finish time
    *above* the scaled capacities, is strictly larger).
    """
    if network is None:
        network = RetrievalNetwork(problem)
        prober.attach(network)
    if stats is None:
        stats = SolverStats()
    Q = problem.num_buckets
    inc = MinCostIncrementer(network)
    inc.sync_live_set()
    monitor = (
        invariants.ProbeMonitor(network) if invariants.ENABLED else None
    )

    t_cur = entry_deadline
    flow = _probe(prober, stats, Q, t_cur, "increment", monitor)
    while flow < Q:
        t_cur = inc.increment()
        stats.increments += 1
        flow = _probe(prober, stats, Q, t_cur, "increment", monitor)

    prober.harvest(stats)
    assignment = network.assignment()
    return RetrievalSchedule(
        problem,
        assignment,
        network.response_time(),
        stats,
        solver=solver_name,
    )
