"""Batch scheduling: several queries arriving together.

The paper schedules one query at a time (arrivals spaced by the online
``X_j`` mechanism).  When a burst of queries lands *simultaneously* —
the GIS session case — scheduling them jointly minimizes the batch
makespan, and the max-flow formulation extends for free: concatenate the
queries' buckets into one problem (bucket instances stay distinct even
when two queries want the same grid cell) and solve once.  The makespan
optimum follows from the same argument as the single-query case; per-
query finish times are then read back out of the shared schedule.

This also quantifies the *cost of isolation*: scheduling the same burst
query-by-query (each oblivious to the others) can only do worse on
makespan — :func:`isolation_penalty` measures by how much.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import solve
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule
from repro.errors import InfeasibleScheduleError
from repro.storage.system import StorageSystem

__all__ = ["BatchSchedule", "merge_problems", "solve_batch", "isolation_penalty"]


@dataclass(frozen=True)
class BatchSchedule:
    """A joint schedule for a batch of queries."""

    schedule: RetrievalSchedule
    #: query index of each merged bucket
    owner: tuple[int, ...]
    num_queries: int

    @property
    def makespan_ms(self) -> float:
        """Completion time of the whole batch."""
        return self.schedule.response_time_ms

    def per_query_assignments(self) -> list[dict[int, int]]:
        """Bucket→disk maps, re-split per query (bucket ids are local)."""
        out: list[dict[int, int]] = [dict() for _ in range(self.num_queries)]
        local_index = [0] * self.num_queries
        for merged_i in range(len(self.owner)):
            q = self.owner[merged_i]
            out[q][local_index[q]] = self.schedule.assignment[merged_i]
            local_index[q] += 1
        return out

    def per_query_finish_ms(self) -> list[float]:
        """Each query's own completion under the joint schedule.

        A query finishes when the last disk serving *any of its buckets*
        finishes — disks interleave the batch, so the per-query time is
        bounded by the finish time of its disks (conservative model:
        a disk's batch completes as a unit).
        """
        sys_ = self.schedule.problem.system
        counts = self.schedule.counts_per_disk()
        disk_finish = {
            j: sys_.finish_time(j, k) for j, k in enumerate(counts) if k > 0
        }
        finishes = [0.0] * self.num_queries
        for merged_i, disk in self.schedule.assignment.items():
            q = self.owner[merged_i]
            finishes[q] = max(finishes[q], disk_finish[disk])
        return finishes


def merge_problems(
    problems: list[RetrievalProblem],
) -> tuple[RetrievalProblem, tuple[int, ...]]:
    """Concatenate queries against a shared system into one problem.

    Returns the merged problem and each merged bucket's owning query.
    """
    if not problems:
        raise InfeasibleScheduleError("empty batch")
    system: StorageSystem = problems[0].system
    for k, p in enumerate(problems[1:], start=1):
        if p.system is not system:
            raise InfeasibleScheduleError(
                f"query {k} targets a different storage system"
            )
    replicas: list[tuple[int, ...]] = []
    owner: list[int] = []
    for q, p in enumerate(problems):
        replicas.extend(p.replicas)
        owner.extend([q] * p.num_buckets)
    return RetrievalProblem(system, tuple(replicas)), tuple(owner)


def solve_batch(
    problems: list[RetrievalProblem], solver: str = "pr-binary", **kwargs: object
) -> BatchSchedule:
    """Jointly schedule a batch for minimum makespan."""
    merged, owner = merge_problems(problems)
    schedule = solve(merged, solver=solver, **kwargs)
    return BatchSchedule(schedule, owner, len(problems))


def isolation_penalty(
    problems: list[RetrievalProblem], solver: str = "pr-binary"
) -> tuple[float, float]:
    """(joint makespan, isolated makespan) for the same batch.

    *Isolated* model: every query schedules itself optimally **as if it
    were alone** (the system state all queries observe on simultaneous
    arrival); the batch then actually executes with the per-disk work
    summed across queries.  The joint schedule optimizes that combined
    objective directly, so ``joint <= isolated`` always; the gap is what
    batch-awareness buys.
    """
    joint = solve_batch(problems, solver=solver).makespan_ms

    system = problems[0].system
    counts = [0] * system.num_disks
    for p in problems:
        sched = solve(p, solver=solver)
        for d in sched.assignment.values():
            counts[d] += 1
    isolated = max(
        system.finish_time(j, k) for j, k in enumerate(counts) if k > 0
    )
    return joint, isolated
