"""Algorithm 2 — ``FordFulkersonIncremental()`` (generalized problem).

The integrated Ford–Fulkerson solver for heterogeneous disks, initial
loads, multiple sites and network delays.  Differences from Algorithm 1:

* disk→sink capacities start at **0** — no closed-form lower bound exists
  when disks differ (lines 1-2);
* when a bucket's DFS finds no augmenting path, only the edge(s) whose
  next bucket would finish *earliest* are incremented
  (:class:`~repro.core.increment.MinCostIncrementer`, Algorithm 3),
  instead of all edges together.

Each increment raises a capacity only when the current capacities admit
no complete flow, so the capacities trace the ascending sequence of
achievable finish times — when the last bucket routes, the bottleneck
edge's cost is the minimum feasible response time.  Worst case
``O(c² · |Q|²)``.
"""

from __future__ import annotations

from repro.core.increment import MinCostIncrementer
from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.maxflow.ford_fulkerson import augment_unit_from

__all__ = ["FordFulkersonIncrementalSolver"]


class FordFulkersonIncrementalSolver:
    """Integrated Ford–Fulkerson for the generalized retrieval problem."""

    name = "ff-incremental"

    def solve(self, problem: RetrievalProblem) -> RetrievalSchedule:
        net = RetrievalNetwork(problem)
        g = net.graph
        stats = SolverStats()
        inc = MinCostIncrementer(net)

        # caps start at 0 (lines 1-2); saturate source arcs as in Alg. 1
        net.saturate_source_arcs()

        for i in range(problem.num_buckets):
            bv = net.bucket_vertex(i)
            while not augment_unit_from(g, bv, net.sink):
                inc.increment()
                stats.increments += 1
            stats.augmentations += 1

        assignment = net.assignment()
        return RetrievalSchedule(
            problem, assignment, net.response_time(), stats, solver=self.name
        )
