"""Retrieval core — the paper's contribution.

Given a query (a set of buckets, each replicated on several disks) and a
:class:`~repro.storage.StorageSystem`, find the replica assignment that
minimizes the query's response time.  The solvers:

======================  =============================================
registry name           paper reference
======================  =============================================
``ff-basic``            Algorithm 1 (basic problem, [18])
``ff-incremental``      Algorithms 2 + 3 (generalized, integrated FF)
``ff-binary``           integrated FF + binary scaling (ours)
``pr-incremental``      Algorithm 5 (integrated push–relabel)
``pr-binary``           Algorithm 6 (integrated PR + binary scaling)
``pr-csr``              Algorithm 6 on the CSR flat-array kernel
``blackbox-binary``     [12]'s black-box binary scaling baseline
``parallel-binary``     Algorithm 6 with multithreaded push/relabel
``brute-force``         exhaustive oracle (tiny instances; tests)
``greedy-finish-time``  heuristic baseline (NOT optimal)
``round-robin``         parameter-blind strawman (NOT optimal)
======================  =============================================

All optimal solvers provably return the same response time; the paper's
§VI.F does the same cross-check ("the results are matching as expected").
Extensions: batch scheduling, degraded mode, min-work tie-breaking,
certification (:mod:`repro.core.certify`) and min-cut explanations
(:mod:`repro.core.explain`).
"""

from repro.core.api import SOLVERS, get_solver, solve
from repro.core.basic_ff import FordFulkersonBasicSolver
from repro.core.batch import (
    BatchSchedule,
    isolation_penalty,
    merge_problems,
    solve_batch,
)
from repro.core.degraded import (
    FailureImpact,
    degrade_problem,
    failure_impact,
    solve_degraded,
)
from repro.core.explain import ScheduleExplanation, explain_schedule
from repro.core.tiebreak import WorkOptimalResult, solve_min_work, total_work_ms
from repro.core.binary_csr import CsrBinarySolver
from repro.core.binary_ff import FordFulkersonBinarySolver
from repro.core.binary_pr import PushRelabelBinarySolver
from repro.core.blackbox import BlackBoxBinarySolver
from repro.core.brute_force import BruteForceSolver, brute_force_response_time
from repro.core.certify import CertificateResult, certify_optimal, verify_schedule
from repro.core.greedy import GreedyFinishTimeSolver, RoundRobinSolver
from repro.core.increment import MinCostIncrementer
from repro.core.incremental_ff import FordFulkersonIncrementalSolver
from repro.core.incremental_pr import PushRelabelIncrementalSolver
from repro.core.network import RetrievalNetwork
from repro.core.parallel import ParallelBinarySolver
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats

__all__ = [
    "SOLVERS",
    "get_solver",
    "solve",
    "FordFulkersonBasicSolver",
    "FordFulkersonBinarySolver",
    "FordFulkersonIncrementalSolver",
    "PushRelabelIncrementalSolver",
    "PushRelabelBinarySolver",
    "CsrBinarySolver",
    "BlackBoxBinarySolver",
    "ParallelBinarySolver",
    "BruteForceSolver",
    "brute_force_response_time",
    "GreedyFinishTimeSolver",
    "RoundRobinSolver",
    "CertificateResult",
    "certify_optimal",
    "verify_schedule",
    "BatchSchedule",
    "isolation_penalty",
    "merge_problems",
    "solve_batch",
    "FailureImpact",
    "degrade_problem",
    "failure_impact",
    "solve_degraded",
    "WorkOptimalResult",
    "solve_min_work",
    "total_work_ms",
    "ScheduleExplanation",
    "explain_schedule",
    "MinCostIncrementer",
    "RetrievalNetwork",
    "RetrievalProblem",
    "RetrievalSchedule",
    "SolverStats",
]
