"""Algorithm 3 — ``IncrementMinCost()``.

When the current disk→sink capacities admit no more flow, the generalized
algorithms raise exactly the capacities whose *next* bucket would finish
earliest: for each live edge ``e`` (disk ``j``),

``cost[e] = D_j + X_j + (caps[e] + 1) * C_j``

and every edge achieving the minimum is incremented together (ties are
incremented simultaneously, "as in the basic problem").  Edges whose disk
already has capacity for every replica it holds (``in_degree <= caps``)
are removed from the live set — they can never carry more flow — which
bounds the total number of increment steps by ``O(c * |Q|)``.
"""

from __future__ import annotations

from repro.core.network import RetrievalNetwork
from repro.errors import InfeasibleScheduleError

__all__ = ["MinCostIncrementer"]


class MinCostIncrementer:
    """Stateful Algorithm 3 bound to one retrieval network.

    The live edge set ``E`` starts as every disk that stores at least one
    of the query's buckets (disks with ``in_degree == 0`` can never serve
    this query and are dropped immediately, matching Algorithm 3's
    deletion rule on the first call).
    """

    def __init__(self, network: RetrievalNetwork) -> None:
        self.network = network
        self.live_disks: list[int] = [
            j
            for j in range(network.problem.num_disks)
            if network.disk_in_degree[j] > 0
        ]
        #: number of increment steps performed
        self.steps = 0

    # ------------------------------------------------------------------
    def sync_live_set(self) -> None:
        """Drop exhausted edges after an external capacity change.

        Algorithm 6 jumps capacities via binary scaling before the
        incremental phase; the live set must be re-filtered against the
        new capacity levels.
        """
        g = self.network.graph
        in_deg = self.network.disk_in_degree
        arcs = self.network.sink_arcs
        self.live_disks = [
            j for j in self.live_disks if in_deg[j] > g.cap[arcs[j]]
        ]

    def increment(self) -> float:
        """One ``IncrementMinCost()`` step; returns the minimum cost.

        Raises :class:`InfeasibleScheduleError` if the live set is empty —
        every replica-holding disk is already at full capacity, so if the
        flow still falls short the instance itself is broken.
        """
        net = self.network
        g = net.graph
        sys_ = net.problem.system
        arcs = net.sink_arcs
        in_deg = net.disk_in_degree

        min_cost = float("inf")
        survivors: list[int] = []
        costs: list[float] = []
        for j in self.live_disks:
            cap = g.cap[arcs[j]]
            if in_deg[j] <= cap:
                continue  # Algorithm 3 lines 3-5: delete exhausted edge
            cost = sys_.finish_time(j, cap + 1)
            survivors.append(j)
            costs.append(cost)
            if cost < min_cost:
                min_cost = cost
        self.live_disks = survivors

        if not survivors:
            raise InfeasibleScheduleError(
                "no capacity left to increment: every replica-holding disk "
                "is saturated (flow < |Q| implies a corrupt instance)"
            )

        # exact-equality ties: every candidate cost for a given disk is the
        # same float expression D_j + X_j + k*C_j, so equal costs compare
        # equal bit-for-bit — the paper's doubles did the same
        for j, cost in zip(survivors, costs):
            if cost == min_cost:
                net.increment_sink_cap(j)
        self.steps += 1
        return min_cost
