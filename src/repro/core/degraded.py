"""Degraded-mode retrieval: scheduling around failed disks and sites.

Replication's second dividend (paper §I: "better fault-tolerance") made
operational: given failures, restrict every bucket's replica set to the
survivors and re-solve.  A bucket whose replicas are all gone makes the
query unanswerable, which is reported precisely rather than as a generic
solver error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.api import solve
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule
from repro.errors import InfeasibleScheduleError
from repro.storage.system import StorageSystem

__all__ = ["FailureImpact", "degrade_problem", "solve_degraded", "failure_impact"]


def degrade_problem(
    problem: RetrievalProblem, failed_disks: Iterable[int]
) -> RetrievalProblem:
    """The same query with ``failed_disks`` removed from every replica set.

    Raises :class:`InfeasibleScheduleError` naming the first bucket left
    without replicas.
    """
    failed = set(failed_disks)
    for d in failed:
        if not 0 <= d < problem.num_disks:
            raise InfeasibleScheduleError(f"unknown disk {d} in failure set")
    new_replicas = []
    for i, reps in enumerate(problem.replicas):
        kept = tuple(d for d in reps if d not in failed)
        if not kept:
            raise InfeasibleScheduleError(
                f"bucket {problem.label_of(i)!r} lost all replicas "
                f"({sorted(set(reps))} all failed): data unavailable"
            )
        new_replicas.append(kept)
    return RetrievalProblem(
        problem.system, tuple(new_replicas), labels=problem.labels
    )


def failed_site_disks(system: StorageSystem, site_id: int) -> list[int]:
    """All disk ids of one site — the whole-site-outage failure set."""
    for site in system.sites:
        if site.site_id == site_id:
            return site.disk_ids()
    raise InfeasibleScheduleError(f"unknown site {site_id}")


def solve_degraded(
    problem: RetrievalProblem,
    failed_disks: Iterable[int],
    solver: str = "pr-binary",
    **kwargs: object,
) -> RetrievalSchedule:
    """Optimal schedule avoiding the failed disks."""
    return solve(degrade_problem(problem, failed_disks), solver=solver, **kwargs)


@dataclass(frozen=True)
class FailureImpact:
    """Before/after view of one failure scenario."""

    healthy_ms: float
    degraded_ms: float
    failed_disks: tuple[int, ...]

    @property
    def slowdown(self) -> float:
        return (
            self.degraded_ms / self.healthy_ms if self.healthy_ms > 0 else 1.0
        )


def failure_impact(
    problem: RetrievalProblem,
    failed_disks: Iterable[int],
    solver: str = "pr-binary",
) -> FailureImpact:
    """Response-time impact of a failure set on one query."""
    failed = tuple(sorted(set(failed_disks)))
    healthy = solve(problem, solver=solver).response_time_ms
    degraded = solve_degraded(problem, failed, solver=solver).response_time_ms
    return FailureImpact(healthy, degraded, failed)
