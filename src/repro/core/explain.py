"""Schedule explanation: *why* this response time, *why* these disks.

Operators distrust opaque schedulers.  This module turns a schedule into
an explanation built from the max-flow structure itself:

* the **binding disk set** — the min cut of the retrieval network one
  step below the optimum.  These disks' capacities are what pins the
  response time: speeding up *any other* disk cannot help.
* the **bottleneck chain** — the bucket set forced through the binding
  disks (the cut's source side), i.e. which part of the query is hard;
* per-disk placement rationale (finish time with vs without each
  assigned bucket).

Built on :func:`repro.graph.min_cut_reachable`; the explanation is a
certificate, not a heuristic narrative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule
from repro.graph.validation import min_cut_reachable
from repro.maxflow.push_relabel import push_relabel

__all__ = ["ScheduleExplanation", "explain_schedule"]


@dataclass(frozen=True)
class ScheduleExplanation:
    """A structured explanation of one optimal schedule."""

    response_time_ms: float
    #: disks whose capacity at (T* - min_speed) forms the binding cut
    binding_disks: tuple[int, ...]
    #: query buckets whose replica sets force flow through the cut
    hard_buckets: tuple[int, ...]
    #: disk -> (buckets served, finish time)
    disk_summary: dict[int, tuple[int, float]]
    #: True when the whole query is hard (cut at the source side)
    source_limited: bool

    def render(self, problem: RetrievalProblem) -> str:
        lines = [
            f"optimal response time: {self.response_time_ms:.2f} ms",
        ]
        if self.source_limited:
            lines.append(
                "every bucket is on the critical path (source-side cut): "
                "the query itself saturates the system"
            )
        else:
            disks = ", ".join(str(d) for d in self.binding_disks)
            lines.append(
                f"binding disks: {{{disks}}} — their capacity one step "
                f"below T* is what forbids a faster schedule; speeding up "
                f"any other disk cannot improve this query"
            )
            labels = ", ".join(
                str(problem.label_of(i)) for i in self.hard_buckets[:8]
            )
            more = (
                f" (+{len(self.hard_buckets) - 8} more)"
                if len(self.hard_buckets) > 8
                else ""
            )
            lines.append(f"hard buckets (forced through the cut): {labels}{more}")
        lines.append("per-disk plan:")
        for d in sorted(self.disk_summary):
            k, finish = self.disk_summary[d]
            marker = " <- binding" if d in self.binding_disks else ""
            lines.append(
                f"  disk {d}: {k} bucket(s), finishes {finish:.2f} ms{marker}"
            )
        return "\n".join(lines)


def explain_schedule(
    problem: RetrievalProblem, schedule: RetrievalSchedule
) -> ScheduleExplanation:
    """Build a :class:`ScheduleExplanation` for an optimal schedule.

    The binding set comes from the min cut at capacities
    ``T* - min_speed`` (infeasible by optimality): after a max flow
    there, the source-reachable residual set's outgoing disk→sink edges
    are exactly the capacities blocking further flow.
    """
    T = schedule.response_time_ms
    sys_ = problem.system

    net = RetrievalNetwork(problem)
    net.set_deadline_capacities(T - problem.min_speed())
    push_relabel(net.graph, net.source, net.sink)
    reachable = min_cut_reachable(net.graph, net.source)

    binding = tuple(
        j
        for j in range(problem.num_disks)
        if net.disk_vertex(j) in reachable and net.disk_in_degree[j] > 0
    )
    hard = tuple(
        i
        for i in range(problem.num_buckets)
        if net.bucket_vertex(i) in reachable
    )
    # no disk edge in the cut: the cut crosses source or replica arcs,
    # i.e. the query's own structure (not disk speed) limits it
    source_limited = len(binding) == 0

    counts = schedule.counts_per_disk()
    disk_summary = {
        j: (k, sys_.finish_time(j, k))
        for j, k in enumerate(counts)
        if k > 0
    }
    return ScheduleExplanation(
        response_time_ms=T,
        binding_disks=binding,
        hard_buckets=hard,
        disk_summary=disk_summary,
        source_limited=source_limited,
    )
