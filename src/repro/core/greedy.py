"""Greedy retrieval heuristics — quality baselines, not from the paper.

The paper takes for granted that optimal scheduling is worth computing;
these baselines quantify it.  Both run in O(|Q| · c) to O(|Q| log |Q|)
time — far cheaper than any max-flow — but give up optimality:

* :class:`GreedyFinishTimeSolver` — assign buckets one by one, each to
  the replica disk whose *finish time after taking it* is smallest
  (the natural online heuristic a storage array would ship).
* :class:`RoundRobinSolver` — rotate across each bucket's replicas,
  ignoring disk parameters entirely (the "no scheduler" strawman).

`benchmarks/bench_greedy_gap.py` measures the response-time gap versus
the optimum across the paper's workloads, and
`examples/greedy_vs_optimal.py` walks through where and why greedy loses
(it cannot *revoke* an earlier assignment — exactly the ability the
max-flow formulation's residual arcs provide).
"""

from __future__ import annotations

from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats

__all__ = ["GreedyFinishTimeSolver", "RoundRobinSolver"]


class GreedyFinishTimeSolver:
    """Marginal-finish-time greedy assignment.

    Processes buckets in input order by default (the paper's motivating
    applications stream buckets in storage order);
    ``order="constrained-first"`` handles the least-flexible buckets
    first — a common greedy improvement — for comparison.
    """

    name = "greedy-finish-time"

    def __init__(self, order: str = "input") -> None:
        if order not in ("input", "constrained-first"):
            raise ValueError(
                f"order must be 'input' or 'constrained-first', got {order!r}"
            )
        self.order = order

    def solve(self, problem: RetrievalProblem) -> RetrievalSchedule:
        sys_ = problem.system
        counts: dict[int, int] = {d: 0 for d in problem.replica_disks()}
        indices = list(range(problem.num_buckets))
        if self.order == "constrained-first":
            indices.sort(key=lambda i: len(set(problem.replicas[i])))
        assignment: dict[int, int] = {}
        for i in indices:
            best_d, best_t = -1, float("inf")
            for d in sorted(set(problem.replicas[i])):
                t = sys_.finish_time(d, counts[d] + 1)
                if t < best_t:
                    best_d, best_t = d, t
            assignment[i] = best_d
            counts[best_d] += 1
        response = max(
            sys_.finish_time(d, k) for d, k in counts.items() if k > 0
        )
        return RetrievalSchedule(
            problem, assignment, response, SolverStats(), solver=self.name
        )


class RoundRobinSolver:
    """Rotate through each bucket's replica list, parameter-blind."""

    name = "round-robin"

    def solve(self, problem: RetrievalProblem) -> RetrievalSchedule:
        sys_ = problem.system
        counts: dict[int, int] = {d: 0 for d in problem.replica_disks()}
        assignment: dict[int, int] = {}
        for i, reps in enumerate(problem.replicas):
            choices = sorted(set(reps))
            assignment[i] = choices[i % len(choices)]
            counts[assignment[i]] += 1
        response = max(
            sys_.finish_time(d, k) for d, k in counts.items() if k > 0
        )
        return RetrievalSchedule(
            problem, assignment, response, SolverStats(), solver=self.name
        )
