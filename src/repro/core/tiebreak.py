"""Work-minimizing tie-breaking among optimal schedules.

The optimal response time usually admits *many* schedules (any max flow
at the optimal deadline's capacities).  They differ in **total disk
work** ``Σ_i C_{disk(i)}`` — seconds of actuator/flash time spent, i.e.
energy and interference with other tenants.  This extension keeps the
optimal response time and, within it, minimizes total work by running a
min-cost max-flow at the optimal deadline with each replica arc priced
at its disk's ``C_j``.

A pure extension (not in the paper — its solvers return an arbitrary
optimal flow); useful whenever slow disks should not be touched unless
they shorten the response.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import solve
from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.errors import InfeasibleScheduleError
from repro.maxflow.mincost import min_cost_max_flow

__all__ = ["WorkOptimalResult", "total_work_ms", "solve_min_work"]


def total_work_ms(schedule: RetrievalSchedule) -> float:
    """Total disk service time of a schedule: ``Σ_buckets C_{disk}``."""
    sys_ = schedule.problem.system
    return sum(
        sys_.disk(d).block_time_ms for d in schedule.assignment.values()
    )


@dataclass(frozen=True)
class WorkOptimalResult:
    """A response-time-optimal, work-minimal schedule plus savings."""

    schedule: RetrievalSchedule
    baseline_work_ms: float
    optimal_work_ms: float

    @property
    def savings_ms(self) -> float:
        return self.baseline_work_ms - self.optimal_work_ms

    @property
    def savings_fraction(self) -> float:
        if self.baseline_work_ms <= 0:
            return 0.0
        return self.savings_ms / self.baseline_work_ms


def solve_min_work(
    problem: RetrievalProblem, solver: str = "pr-binary", **solver_kwargs: object
) -> WorkOptimalResult:
    """Optimal response time first, minimal total work second.

    Runs the requested solver for the optimal response time ``T*``, then a
    min-cost max-flow at ``caps(T*)`` with replica arcs priced at their
    disk's ``C_j``.  The result provably keeps ``T*`` (its per-disk counts
    satisfy the same capacities) while minimizing work.
    """
    baseline = solve(problem, solver=solver, **solver_kwargs)
    T = baseline.response_time_ms

    net = RetrievalNetwork(problem)
    net.set_deadline_capacities(T)
    costs = [0.0] * net.graph.num_arc_slots
    sys_ = problem.system
    for arcs in net.replica_arcs:
        for a in arcs:
            disk = net.disk_of_vertex(net.graph.head[a])
            costs[a] = sys_.disk(disk).block_time_ms
    result = min_cost_max_flow(net.graph, net.source, net.sink, costs)
    if result.value < problem.num_buckets:
        raise InfeasibleScheduleError(
            "min-cost pass lost flow — capacities at the reported optimum "
            "do not admit |Q| (corrupt baseline schedule?)"
        )

    assignment = net.assignment()
    stats = SolverStats(
        probes=baseline.stats.probes + 1,
        increments=baseline.stats.increments,
        pushes=baseline.stats.pushes,
        relabels=baseline.stats.relabels,
        augmentations=baseline.stats.augmentations + result.augmentations,
        extra={"mincost_total": result.extra["total_cost"]},
    )
    schedule = RetrievalSchedule(
        problem, assignment, net.response_time(), stats,
        solver=f"{solver}+min-work",
    )
    # capacity_at is the exact inverse of finish_time, so the min-cost
    # flow's response time can never exceed T through rounding alone
    if schedule.response_time_ms > T:
        raise InfeasibleScheduleError(
            "min-work schedule exceeded the optimal response time"
        )
    return WorkOptimalResult(
        schedule=schedule,
        baseline_work_ms=total_work_ms(baseline),
        optimal_work_ms=total_work_ms(schedule),
    )
