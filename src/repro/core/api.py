"""Top-level solver API and registry.

>>> from repro.core import solve, RetrievalProblem
>>> schedule = solve(problem)                       # pr-binary (Alg. 6)
>>> schedule = solve(problem, solver="blackbox-binary")
>>> schedule = solve(problem, solver="parallel-binary", num_threads=2)
"""

from __future__ import annotations

import time

from repro.core.basic_ff import FordFulkersonBasicSolver
from repro.core.binary_ff import FordFulkersonBinarySolver
from repro.core.binary_pr import PushRelabelBinarySolver
from repro.core.blackbox import BlackBoxBinarySolver
from repro.core.brute_force import BruteForceSolver
from repro.core.greedy import GreedyFinishTimeSolver, RoundRobinSolver
from repro.core.incremental_ff import FordFulkersonIncrementalSolver
from repro.core.incremental_pr import PushRelabelIncrementalSolver
from repro.core.parallel import ParallelBinarySolver
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule

__all__ = ["SOLVERS", "get_solver", "solve"]

#: registry name → solver class (see package docstring for the mapping to
#: the paper's algorithm numbers)
SOLVERS = {
    "ff-basic": FordFulkersonBasicSolver,
    "ff-incremental": FordFulkersonIncrementalSolver,
    "ff-binary": FordFulkersonBinarySolver,
    "pr-incremental": PushRelabelIncrementalSolver,
    "pr-binary": PushRelabelBinarySolver,
    "blackbox-binary": BlackBoxBinarySolver,
    "parallel-binary": ParallelBinarySolver,
    "brute-force": BruteForceSolver,
    # heuristic baselines (NOT optimal — excluded from cross-checked
    # benchmark points; see repro.core.greedy)
    "greedy-finish-time": GreedyFinishTimeSolver,
    "round-robin": RoundRobinSolver,
}


def get_solver(name: str, **kwargs):
    """Instantiate a solver by registry name."""
    try:
        cls = SOLVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; choose from {sorted(SOLVERS)}"
        ) from None
    return cls(**kwargs)


def solve(
    problem: RetrievalProblem, solver: str = "pr-binary", **solver_kwargs
) -> RetrievalSchedule:
    """Compute an optimal-response-time retrieval schedule.

    Parameters
    ----------
    problem:
        The query + system state to schedule.
    solver:
        Registry name (default: the paper's integrated Algorithm 6).
    solver_kwargs:
        Forwarded to the solver constructor (e.g. ``num_threads=2``).

    Returns
    -------
    RetrievalSchedule
        With ``stats.wall_time_s`` filled in.
    """
    instance = get_solver(solver, **solver_kwargs)
    start = time.perf_counter()
    schedule = instance.solve(problem)
    schedule.stats.wall_time_s = time.perf_counter() - start
    return schedule
