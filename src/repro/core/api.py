"""Top-level solver API and registry.

>>> from repro.core import solve, RetrievalProblem
>>> schedule = solve(problem)                       # pr-binary (Alg. 6)
>>> schedule = solve(problem, solver="blackbox-binary")
>>> schedule = solve(problem, solver="parallel-binary", num_threads=2)
>>> schedule = solve(problem, trace=True)           # probe trace in
...                                                 # stats.extra["trace"]
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Protocol

from repro.core.basic_ff import FordFulkersonBasicSolver
from repro.core.binary_csr import CsrBinarySolver
from repro.core.binary_ff import FordFulkersonBinarySolver
from repro.core.binary_pr import PushRelabelBinarySolver
from repro.core.blackbox import BlackBoxBinarySolver
from repro.core.brute_force import BruteForceSolver
from repro.core.greedy import GreedyFinishTimeSolver, RoundRobinSolver
from repro.core.incremental_ff import FordFulkersonIncrementalSolver
from repro.core.incremental_pr import PushRelabelIncrementalSolver
from repro.core.parallel import ParallelBinarySolver
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule
from repro.obs.instrument import observe_solve as _observe_solve

if TYPE_CHECKING:
    from repro.core.network import RetrievalNetwork
    from repro.obs.registry import MetricsRegistry

__all__ = ["SOLVERS", "Solver", "get_solver", "solve"]


class Solver(Protocol):
    """Structural type every registry solver satisfies."""

    name: str

    def solve(self, problem: RetrievalProblem) -> RetrievalSchedule: ...


#: registry name → solver class (see package docstring for the mapping to
#: the paper's algorithm numbers)
SOLVERS = {
    "ff-basic": FordFulkersonBasicSolver,
    "ff-incremental": FordFulkersonIncrementalSolver,
    "ff-binary": FordFulkersonBinarySolver,
    "pr-incremental": PushRelabelIncrementalSolver,
    "pr-binary": PushRelabelBinarySolver,
    "pr-csr": CsrBinarySolver,
    "blackbox-binary": BlackBoxBinarySolver,
    "parallel-binary": ParallelBinarySolver,
    "brute-force": BruteForceSolver,
    # heuristic baselines (NOT optimal — excluded from cross-checked
    # benchmark points; see repro.core.greedy)
    "greedy-finish-time": GreedyFinishTimeSolver,
    "round-robin": RoundRobinSolver,
}


def get_solver(name: str, **kwargs: object) -> Solver:
    """Instantiate a solver by registry name."""
    try:
        cls = SOLVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; choose from {sorted(SOLVERS)}"
        ) from None
    return cls(**kwargs)


def solve(
    problem: RetrievalProblem,
    solver: str = "pr-binary",
    *,
    trace: bool = False,
    registry: MetricsRegistry | None = None,
    network: RetrievalNetwork | None = None,
    **solver_kwargs: object,
) -> RetrievalSchedule:
    """Compute an optimal-response-time retrieval schedule.

    This is also the observability choke point: every registry solver
    runs under the same tracing context and metrics hook
    (:mod:`repro.obs`), so instrumentation added here covers all of
    :data:`SOLVERS` at once.

    Parameters
    ----------
    problem:
        The query + system state to schedule.
    solver:
        Registry name (default: the paper's integrated Algorithm 6).
    trace:
        Record a :class:`~repro.obs.ProbeTrace` of every feasibility
        probe into ``schedule.stats.extra["trace"]`` (off by default;
        default solves pay no tracing cost).
    registry:
        A :class:`~repro.obs.MetricsRegistry` to record this solve into;
        ``None`` uses the global registry when
        :func:`repro.obs.enable_metrics` has been called, else nothing.
    network:
        A pre-built :class:`~repro.core.network.RetrievalNetwork` with
        the query's replica signature, to warm-start the solve from
        (skips topology construction; conserved flow the caller restored
        into it is clamped and reused).  Only the binary-scaling solvers
        accept this — :class:`KeyError`-adjacent misuse raises
        ``TypeError`` for others.
    solver_kwargs:
        Forwarded to the solver constructor (e.g. ``num_threads=2``).

    Returns
    -------
    RetrievalSchedule
        With ``stats.wall_time_s`` filled in.
    """
    instance = get_solver(solver, **solver_kwargs)
    if network is not None:
        if not getattr(instance, "supports_warm_start", False):
            raise TypeError(
                f"solver {solver!r} does not support warm-start networks"
            )

        def solve_fn() -> RetrievalSchedule:
            return instance.solve(problem, network=network)

    else:

        def solve_fn() -> RetrievalSchedule:
            return instance.solve(problem)

    if trace:
        from repro.obs.trace import ProbeTrace, capture_probes

        probe_trace = ProbeTrace(solver=solver)
        start = time.perf_counter()
        with capture_probes(probe_trace):
            schedule = solve_fn()
        schedule.stats.wall_time_s = time.perf_counter() - start
        probe_trace.finish(schedule)
        schedule.stats.extra["trace"] = probe_trace
    else:
        start = time.perf_counter()
        schedule = solve_fn()
        schedule.stats.wall_time_s = time.perf_counter() - start
    _observe_solve(schedule, registry)
    return schedule
