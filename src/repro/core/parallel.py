"""Parallel integrated solver (paper §V).

Algorithm 6 with the push/relabel phase (line 29) executed by the
asynchronous multithreaded engine of Hong & He [31]
(:mod:`repro.maxflow.parallel_push_relabel`).  The binary-scaling
skeleton, flow store/restore, and min-cost incrementation are byte-for-
byte the sequential ones; only the inner max-flow loop is threaded —
exactly the paper's "line 29 of the Algorithm 6 is modified to support
multi-threaded push/relabel operations".

The GIL caveat of the engine module applies: per-query value agreement
with the sequential solver is exact; wall-clock parallel *speedup* is
not expected under CPython (DESIGN.md §2).  For real multi-core scaling
use :mod:`repro.fleet` — :func:`repro.fleet.partitioned_push_relabel`
runs the same kernel across worker *processes* (escaping the GIL), and
the service layer's ``solve_backend="process"`` routes whole solves to a
:class:`repro.fleet.SolveFleet`; both are verified exact-``==`` against
this module's sequential results.
"""

from __future__ import annotations

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.scaling import Prober, binary_scaling_solve
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.maxflow.parallel_push_relabel import parallel_push_relabel

__all__ = ["ParallelProber", "ParallelBinarySolver"]


class ParallelProber(Prober):
    """Warm-started multithreaded push–relabel probes."""

    conserves_flow = True

    def __init__(self, num_threads: int = 2) -> None:
        self.num_threads = num_threads
        self._network: RetrievalNetwork | None = None
        self._pushes = 0
        self._relabels = 0
        self._load_balances: list[float] = []

    def attach(self, network: RetrievalNetwork) -> None:
        self._network = network

    def probe(self) -> float:
        net = self._network
        assert net is not None, "attach() before probe()"
        result = parallel_push_relabel(
            net.graph,
            net.source,
            net.sink,
            num_threads=self.num_threads,
            warm_start=True,
        )
        self._pushes += result.pushes
        self._relabels += result.relabels
        self._load_balances.append(result.extra["parallel_stats"].load_balance)
        return result.value

    def op_counts(self) -> tuple[int, int, int]:
        return (self._pushes, self._relabels, 0)

    def harvest(self, stats: SolverStats) -> None:
        stats.pushes += self._pushes
        stats.relabels += self._relabels
        stats.extra["num_threads"] = self.num_threads
        if self._load_balances:
            stats.extra["mean_load_balance"] = sum(self._load_balances) / len(
                self._load_balances
            )


class ParallelBinarySolver:
    """Algorithm 6 with multithreaded push/relabel (2 threads by default,
    matching the paper's Figure 10 configuration)."""

    name = "parallel-binary"
    supports_warm_start = True

    def __init__(self, num_threads: int = 2) -> None:
        self.num_threads = num_threads

    def solve(
        self,
        problem: RetrievalProblem,
        *,
        network: RetrievalNetwork | None = None,
    ) -> RetrievalSchedule:
        prober = ParallelProber(self.num_threads)
        return binary_scaling_solve(problem, prober, self.name, network=network)
