"""Solver outputs: the retrieval schedule and its statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Mapping

from repro.core.problem import RetrievalProblem
from repro.errors import InfeasibleScheduleError

if TYPE_CHECKING:
    from repro.maxflow.base import MaxFlowResult

__all__ = ["SolverStats", "RetrievalSchedule"]


@dataclass
class SolverStats:
    """Work accounting for one solve.

    Attributes
    ----------
    probes:
        Max-flow runs (binary-scaling iterations count one each).
    increments:
        ``IncrementMinCost`` / uniform-increment steps performed.
    pushes, relabels, augmentations:
        Summed engine operation counts.
    wall_time_s:
        Wall-clock time of the solve (set by the public API).
    """

    probes: int = 0
    increments: int = 0
    pushes: int = 0
    relabels: int = 0
    augmentations: int = 0
    wall_time_s: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def absorb(self, result: "MaxFlowResult") -> None:
        """Accumulate a :class:`~repro.maxflow.MaxFlowResult`'s counters."""
        self.pushes += result.pushes
        self.relabels += result.relabels
        self.augmentations += result.augmentations


@dataclass(frozen=True)
class RetrievalSchedule:
    """An optimal (or candidate) retrieval plan for one problem.

    Attributes
    ----------
    problem:
        The problem this schedule solves.
    assignment:
        bucket index → disk id.
    response_time_ms:
        ``max_j (D_j + X_j + k_j C_j)`` under this assignment.
    stats:
        Solver work accounting.
    solver:
        Registry name of the producing solver.
    """

    problem: RetrievalProblem
    assignment: Mapping[int, int]
    response_time_ms: float
    stats: SolverStats
    solver: str = "?"

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Every bucket assigned, and only to one of its replicas."""
        missing = [
            i for i in range(self.problem.num_buckets) if i not in self.assignment
        ]
        if missing:
            raise InfeasibleScheduleError(
                f"{len(missing)} bucket(s) unassigned, e.g. {missing[:5]}"
            )
        for i, d in self.assignment.items():
            if not 0 <= i < self.problem.num_buckets:
                raise InfeasibleScheduleError(f"unknown bucket index {i}")
            if d not in self.problem.replicas[i]:
                raise InfeasibleScheduleError(
                    f"bucket {i} assigned to disk {d}, but its replicas are "
                    f"{self.problem.replicas[i]}"
                )

    # ------------------------------------------------------------------
    def counts_per_disk(self) -> list[int]:
        counts = [0] * self.problem.num_disks
        for d in self.assignment.values():
            counts[d] += 1
        return counts

    def recompute_response_time(self) -> float:
        """Response time from first principles (used to cross-check)."""
        sys_ = self.problem.system
        worst = 0.0
        for j, k in enumerate(self.counts_per_disk()):
            if k > 0:
                worst = max(worst, sys_.finish_time(j, k))
        return worst

    def bottleneck_disk(self) -> int:
        """The disk whose finish time equals the response time."""
        sys_ = self.problem.system
        best_j, best_t = -1, -1.0
        for j, k in enumerate(self.counts_per_disk()):
            if k > 0:
                t = sys_.finish_time(j, k)
                if t > best_t:
                    best_j, best_t = j, t
        return best_j

    def as_bucket_map(self) -> dict[Hashable, int]:
        """Assignment keyed by the problem's bucket labels."""
        return {
            self.problem.label_of(i): d for i, d in self.assignment.items()
        }

    def summary(self) -> str:
        """One-paragraph human description (examples/CLI)."""
        counts = self.counts_per_disk()
        used = sum(1 for k in counts if k > 0)
        return (
            f"{self.problem.num_buckets} buckets over {used}/"
            f"{self.problem.num_disks} disks; response "
            f"{self.response_time_ms:.2f} ms (bottleneck disk "
            f"{self.bottleneck_disk()}); solver={self.solver}, "
            f"probes={self.stats.probes}, increments={self.stats.increments}"
        )
