"""Schedule verification and optimality certification.

Downstream systems that integrate a scheduler want to *check* it without
trusting it.  Two levels:

* :func:`verify_schedule` — feasibility: every bucket assigned to one of
  its replicas, reported response time consistent with the cost model
  (cheap, no flow computation).
* :func:`certify_optimal` — optimality: the reported response time ``T``
  is optimal iff (a) capacities at ``T`` admit a flow of ``|Q|`` —
  witnessed by the schedule itself — and (b) capacities at the largest
  achievable finish time strictly below ``T`` do **not** (one max-flow
  run).  This is the max-flow/min-cut certificate Figure 4 illustrates,
  packaged as an API; the test suite uses it to certify every solver
  without circular trust in another solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule
from repro.errors import InfeasibleScheduleError
from repro.maxflow.push_relabel import push_relabel

__all__ = ["CertificateResult", "verify_schedule", "certify_optimal"]


@dataclass(frozen=True)
class CertificateResult:
    """Outcome of an optimality certification."""

    feasible: bool
    optimal: bool
    response_time_ms: float
    next_lower_candidate_ms: float | None
    reason: str

    def __bool__(self) -> bool:  # truthy iff fully certified
        return self.feasible and self.optimal


def verify_schedule(
    problem: RetrievalProblem, schedule: RetrievalSchedule
) -> None:
    """Raise :class:`InfeasibleScheduleError` unless the schedule is a
    feasible plan whose reported response time matches the cost model."""
    if schedule.problem is not problem and schedule.problem.replicas != problem.replicas:
        raise InfeasibleScheduleError(
            "schedule was built for a different problem"
        )
    schedule.validate()
    # exact comparison: both sides are the max over identical
    # finish_time(j, k) float expressions, so they match bit-for-bit
    recomputed = schedule.recompute_response_time()
    if recomputed != schedule.response_time_ms:
        raise InfeasibleScheduleError(
            f"reported response {schedule.response_time_ms} ms does not "
            f"match the cost model ({recomputed} ms)"
        )


def _largest_finish_below(problem: RetrievalProblem, T: float) -> float | None:
    """The largest achievable finish time strictly below ``T``.

    Finish times form the discrete candidate set
    ``{D_j + X_j + k·C_j : j touched, 1 <= k <= |Q|}``; optimality only
    needs the next candidate below ``T`` to be infeasible.
    """
    best: float | None = None
    sys_ = problem.system
    for j in problem.replica_disks():
        for k in range(1, problem.num_buckets + 1):
            t = sys_.finish_time(j, k)
            if t >= T:
                break  # finish times increase with k
            if best is None or t > best:
                best = t
    return best


def certify_optimal(
    problem: RetrievalProblem, schedule: RetrievalSchedule
) -> CertificateResult:
    """Certify that ``schedule`` achieves the optimal response time.

    Performs feasibility verification, then the single max-flow
    infeasibility check at the next-lower candidate time.  Never consults
    another retrieval solver.
    """
    try:
        verify_schedule(problem, schedule)
    except InfeasibleScheduleError as exc:
        return CertificateResult(
            feasible=False,
            optimal=False,
            response_time_ms=schedule.response_time_ms,
            next_lower_candidate_ms=None,
            reason=f"infeasible: {exc}",
        )

    T = schedule.response_time_ms
    candidate = _largest_finish_below(problem, T)
    if candidate is None:
        return CertificateResult(
            True, True, T, None,
            reason="no achievable finish time below T: trivially optimal",
        )

    net = RetrievalNetwork(problem)
    net.set_deadline_capacities(candidate)
    value = push_relabel(net.graph, net.source, net.sink).value
    if value >= problem.num_buckets:
        return CertificateResult(
            True, False, T, candidate,
            reason=(
                f"capacities at {candidate:.6g} ms already admit |Q| flow: "
                f"a faster schedule exists"
            ),
        )
    return CertificateResult(
        True, True, T, candidate,
        reason=(
            f"max flow at {candidate:.6g} ms is {value} < "
            f"|Q| = {problem.num_buckets}: T is the least feasible "
            f"candidate"
        ),
    )
