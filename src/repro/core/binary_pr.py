"""Algorithm 6 — ``PushRelabelBinary()``: the paper's flagship solver.

Integrated push–relabel with binary capacity scaling and flow
conservation across probes (StoreFlows/RestoreFlows).  The skeleton lives
in :mod:`repro.core.scaling`; this module binds it to the warm-started
sequential prober.  Worst case ``O(log|Q| · |Q|³)``, much faster in
practice thanks to flow conservation (§IV).
"""

from __future__ import annotations

from repro.core.incremental_pr import SequentialProber
from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.core.scaling import binary_scaling_solve
from repro.core.schedule import RetrievalSchedule

__all__ = ["PushRelabelBinarySolver"]


class PushRelabelBinarySolver:
    """Integrated binary-scaled push–relabel (Algorithm 6)."""

    name = "pr-binary"
    supports_warm_start = True

    def __init__(
        self,
        *,
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        self.initial_heights = initial_heights
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic

    def solve(
        self,
        problem: RetrievalProblem,
        *,
        network: RetrievalNetwork | None = None,
    ) -> RetrievalSchedule:
        prober = SequentialProber(
            initial_heights=self.initial_heights,
            global_relabel_interval=self.global_relabel_interval,
            gap_heuristic=self.gap_heuristic,
        )
        return binary_scaling_solve(problem, prober, self.name, network=network)
