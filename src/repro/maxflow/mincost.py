"""Minimum-cost maximum flow (successive shortest paths with potentials).

Used by :mod:`repro.core.tiebreak` to pick, among all maximum flows of a
retrieval network at the optimal deadline, the one minimizing total disk
work.  The implementation is the textbook successive-shortest-path
algorithm with Johnson potentials: Bellman–Ford once to initialize
(residual twins carry negated costs), then Dijkstra per augmentation.
Costs must be non-negative on forward arcs.
"""

from __future__ import annotations

import heapq

from repro.errors import GraphError
from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowResult

__all__ = ["min_cost_max_flow"]

#: infinity sentinel for *cost-space* Dijkstra distances.  Costs (response
#: times) stay float by design; flows and capacities below are exact ints.
_INF = float("inf")


def min_cost_max_flow(
    g: FlowNetwork, s: int, t: int, arc_costs: list[float]
) -> MaxFlowResult:
    """Maximum s-t flow of minimum total cost.

    Parameters
    ----------
    g:
        The network; its flow is reset and recomputed.
    arc_costs:
        Cost per *forward arc slot* (length ``num_arc_slots``; odd slots
        — residual twins — are ignored and treated as the negation).
        Forward costs must be >= 0.

    Returns
    -------
    MaxFlowResult with ``extra["total_cost"]`` set.
    """
    n = g.n
    if len(arc_costs) != g.num_arc_slots:
        raise GraphError(
            f"need {g.num_arc_slots} arc costs, got {len(arc_costs)}"
        )
    head, cap, flow, adj = g.arrays()
    cost = list(arc_costs)
    for a in range(0, len(cost), 2):
        if cost[a] < 0:
            raise GraphError(f"negative cost {cost[a]} on arc {a}")
        cost[a ^ 1] = -cost[a]
    g.reset_flow()

    potential = [0.0] * n  # all forward costs >= 0 and flow = 0: valid
    total_flow = 0
    total_cost = 0.0
    augments = 0

    while True:
        # Dijkstra on reduced costs
        dist = [_INF] * n
        dist[s] = 0.0
        parent_arc = [-1] * n
        done = bytearray(n)
        heap = [(0.0, s)]
        while heap:
            d, v = heapq.heappop(heap)
            if done[v]:
                continue
            done[v] = 1
            for a in adj[v]:
                if cap[a] - flow[a] > 0:
                    w = head[a]
                    if done[w]:
                        continue
                    nd = d + cost[a] + potential[v] - potential[w]
                    if nd < dist[w] - 1e-12:
                        dist[w] = nd
                        parent_arc[w] = a
                        heapq.heappush(heap, (nd, w))
        if dist[t] == _INF:
            break
        for v in range(n):
            if dist[v] < _INF:
                potential[v] += dist[v]
        # bottleneck along the shortest path (-1 sentinel: no arc yet)
        delta = -1
        v = t
        while v != s:
            a = parent_arc[v]
            r = cap[a] - flow[a]
            if delta < 0 or r < delta:
                delta = r
            v = g.tail(a)
        v = t
        while v != s:
            a = parent_arc[v]
            flow[a] += delta
            flow[a ^ 1] -= delta
            total_cost += delta * cost[a]
            v = g.tail(a)
        total_flow += delta
        augments += 1

    return MaxFlowResult(
        value=total_flow,
        augmentations=augments,
        extra={"total_cost": total_cost},
    )
