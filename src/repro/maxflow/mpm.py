"""MPM (Malhotra–Pramodh Kumar–Maheshwari) blocking flows.

The O(V³) blocking-flow method in the Karzanov [33] tradition the paper
cites alongside Dinic: per phase, build the level graph, then repeatedly
pick the vertex of minimum *potential* (min of level-graph in-capacity
and out-capacity), push exactly that much flow forward to the sink and
pull it back from the source, and delete the saturated vertex.  Included
to complete the §II-B survey in the engine ablation.
"""

from __future__ import annotations

from collections import deque

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["mpm", "MpmEngine"]


def _levels(g: FlowNetwork, s: int, t: int) -> list[int] | None:
    head, cap, flow, adj = g.arrays()
    level = [-1] * g.n
    level[s] = 0
    dq = deque([s])
    while dq:
        v = dq.popleft()
        for a in adj[v]:
            if cap[a] - flow[a] > 0:
                w = head[a]
                if level[w] < 0:
                    level[w] = level[v] + 1
                    dq.append(w)
    return level if level[t] >= 0 else None


def _blocking_flow_mpm(g: FlowNetwork, s: int, t: int, level: list[int]) -> int:
    head, cap, flow, adj = g.arrays()
    n = g.n
    # level-graph arcs per vertex (forward = level+1 only)
    out_arcs: list[list[int]] = [[] for _ in range(n)]
    in_arcs: list[list[int]] = [[] for _ in range(n)]
    in_pot = [0] * n
    out_pot = [0] * n
    for v in range(n):
        if level[v] < 0:
            continue
        for a in adj[v]:
            w = head[a]
            if cap[a] - flow[a] > 0 and level[w] == level[v] + 1:
                out_arcs[v].append(a)
                in_arcs[w].append(a)
                out_pot[v] += cap[a] - flow[a]
                in_pot[w] += cap[a] - flow[a]
    alive = [level[v] >= 0 for v in range(n)]

    def potential(v: int) -> int:
        if v == s:
            return out_pot[v]
        if v == t:
            return in_pot[v]
        return min(in_pot[v], out_pot[v])

    def push_dir(start: int, amount: int, towards_sink: bool) -> None:
        """Propagate ``amount`` from ``start`` through the level graph —
        forward to the sink or backward to the source.  MPM's invariant
        (``amount`` <= every alive vertex's potential) guarantees each
        vertex can forward everything it receives."""
        terminal = t if towards_sink else s
        excess = {start: amount}
        order = sorted(
            (v for v in range(n) if alive[v]),
            key=lambda v: level[v],
            reverse=not towards_sink,
        )
        for v in order:
            need = excess.get(v, 0)
            if need <= 0 or v == terminal:
                continue
            arcs = out_arcs[v] if towards_sink else in_arcs[v]
            for a in arcs:
                if need <= 0:
                    break
                w = head[a] if towards_sink else g.tail(a)
                residual = cap[a] - flow[a]
                if residual <= 0 or not alive[w]:
                    continue
                delta = need if need < residual else residual
                flow[a] += delta
                flow[a ^ 1] -= delta
                out_pot[g.tail(a)] -= delta
                in_pot[head[a]] -= delta
                need -= delta
                excess[w] = excess.get(w, 0) + delta
            excess[v] = need

    def delete_vertex(r: int) -> None:
        alive[r] = False
        for a in out_arcs[r]:
            w = head[a]
            if alive[w]:
                in_pot[w] -= cap[a] - flow[a]
        for a in in_arcs[r]:
            v = g.tail(a)
            if alive[v]:
                out_pot[v] -= cap[a] - flow[a]

    total = 0
    while True:
        # min-potential alive vertex
        best, best_p = -1, -1
        for v in range(n):
            if alive[v]:
                p = potential(v)
                if best < 0 or p < best_p:
                    best, best_p = v, p
        if best < 0 or not alive[s] or not alive[t]:
            break
        if best_p <= 0:
            delete_vertex(best)
            continue
        r = best
        amount = best_p
        # push amount r -> t forward, and pull amount s -> r backward
        push_dir(r, amount, towards_sink=True)
        push_dir(r, amount, towards_sink=False)
        total += amount
        delete_vertex(r)
    return total


def mpm(g: FlowNetwork, s: int, t: int, *, warm_start: bool = False) -> MaxFlowResult:
    """Maximum flow via MPM blocking flows, O(V³)."""
    if not warm_start:
        g.reset_flow()
    phases = 0
    while True:
        level = _levels(g, s, t)
        if level is None:
            break
        _blocking_flow_mpm(g, s, t, level)
        phases += 1
    value = -sum(g.flow[a] for a in g.adj[t])
    return MaxFlowResult(value=value, extra={"phases": phases})


class MpmEngine(MaxFlowEngine):
    """Registry wrapper around :func:`mpm`."""

    name = "mpm"

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return mpm(g, s, t, warm_start=warm_start)
