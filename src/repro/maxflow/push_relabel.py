"""FIFO push–relabel maximum flow (Goldberg & Tarjan [29]).

This is the engine inside the paper's Algorithms 4, 5 and 6.  Design notes:

* **FIFO vertex selection** with a **current-arc pointer** per vertex, as in
  the paper ("we use the FIFO ordering ... suggested by [19]"), giving the
  O(|V|³) bound the paper quotes for Algorithm 4.

* **Exact-height (global relabeling) heuristic** [19]: heights are
  periodically recomputed as exact residual-graph distances to the sink
  (or, for vertices that cannot reach the sink, ``n`` + distance to the
  source).  The paper's pseudocode (Algorithm 5 lines 11–13) resets heights
  to zero between incremental runs; both behaviours are supported through
  ``initial_heights`` and produce identical flows — only operation counts
  differ (quantified in ``benchmarks/bench_ablation_conservation.py``).

* **Gap heuristic** [14,19]: when a height level in ``(0, n)`` empties, all
  vertices stranded above it are lifted past ``n`` at once.

* **Single-loop two-phase execution.** Heights may grow up to ``2n`` and
  *every* active vertex (positive excess, not source/sink) is discharged,
  so at termination leftover excess has drained back to the source and the
  arrays hold a genuine maximum *flow*, not just a preflow.  Algorithm 6's
  ``StoreFlows``/``RestoreFlows`` depends on this: a stored state must be a
  valid flow for every larger capacity vector (feasibility–capacity
  monotonicity, see DESIGN.md §5).

* **Warm starts.** :meth:`PushRelabelState.initialize` implements
  Algorithm 5 lines 3–14: clear the FIFO queue, saturate only the source
  arcs with positive residual ``delta`` (conserving all previously computed
  flow), reset heights, zero the source excess.
"""

from __future__ import annotations

from collections import deque

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["PushRelabelState", "push_relabel", "PushRelabelEngine"]


class PushRelabelState:
    """Re-entrant push–relabel machinery bound to one network.

    The retrieval algorithms create one state per query and call
    :meth:`initialize` + :meth:`run` once per capacity probe, preserving
    flow in between — that reuse *is* the paper's "integrated" idea.

    Parameters
    ----------
    g, s, t:
        Network, source, sink.
    initial_heights:
        ``"exact"`` (global-relabel style BFS distances, default) or
        ``"zero"`` (the literal Algorithm 5 pseudocode).
    global_relabel_interval:
        Re-run the exact-height computation after this many relabels;
        ``0`` disables the heuristic.  ``None`` (default) disables it when
        heights already start exact and picks ``max(n, 16)`` otherwise:
        on the shallow 4-layer retrieval networks, exact initialization
        plus the gap heuristic leaves mid-run global relabeling strictly
        counterproductive — re-scanning every current-arc pointer costs
        8-18x in measured solve time (see
        ``benchmarks/bench_ablation_conservation.py``).
    gap_heuristic:
        Enable the gap heuristic.
    """

    def __init__(
        self,
        g: FlowNetwork,
        s: int,
        t: int,
        *,
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        if s == t:
            raise ValueError("source and sink must differ")
        if initial_heights not in ("exact", "zero"):
            raise ValueError(f"initial_heights must be 'exact' or 'zero', got {initial_heights!r}")
        self.g = g
        self.s = s
        self.t = t
        self.initial_heights = initial_heights
        n = g.n
        if global_relabel_interval is None:
            global_relabel_interval = 0 if initial_heights == "exact" else max(n, 16)
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic

        self.excess: list[int] = [0] * n
        self.height: list[int] = [0] * n
        self.current: list[int] = [0] * n
        self.queue: deque[int] = deque()
        self.in_queue: bytearray = bytearray(n)
        self.height_count: list[int] = [0] * (2 * n + 1)

        # operation counters (reported in MaxFlowResult.extra)
        self.pushes = 0
        self.relabels = 0
        self.global_relabels = 0
        self.gap_events = 0

    # ------------------------------------------------------------------
    def initialize(self, *, preserve_flow: bool = True) -> None:
        """(Re)start the solver — Algorithm 4 lines 1–8 / Algorithm 5 lines 3–14.

        With ``preserve_flow=True`` the current flow is kept and only the
        source arcs' *residual* slack ``delta = cap - flow`` is injected as
        new excess.  With ``preserve_flow=False`` the flow is zeroed first
        (black-box behaviour) and the source arcs are saturated in full.
        """
        g, s, t = self.g, self.s, self.t
        n = g.n
        if not preserve_flow:
            g.reset_flow()
        head, cap, flow, adj = g.arrays()

        self.queue.clear()
        self.in_queue = bytearray(n)

        # Cancel preserved flow on arcs INTO the source.  Such flow leaves
        # residual s->w arcs, and no height labeling with height[s] = n can
        # satisfy the validity invariant across them — phase 1 could then
        # terminate before the preflow is maximum.  Cancelling converts
        # that flow into excess at the arcs' tails, a legal preflow
        # transformation.  (Retrieval networks have no arcs into s; this
        # matters for the generic engine API.)
        for b in adj[s]:
            if b % 2 == 1 and flow[b ^ 1] > 0:
                flow[b ^ 1] = 0
                flow[b] = 0

        # Exact excesses from the preserved assignment: net inflow per
        # vertex.  For a valid starting *flow* this is zero away from s/t
        # (Algorithm 5's stated precondition); computing it exactly also
        # makes warm starts from any valid *preflow* safe.  The sink excess
        # must reflect flow already delivered in earlier probes, otherwise
        # Algorithm 5's `excess[t] == |Q|` test cannot see it.
        excess = [0] * n
        for v in range(n):
            ev = 0
            for a in adj[v]:
                ev -= flow[a]
            excess[v] = ev
        self.excess = excess

        # Algorithm 5 lines 4-10: saturate source arcs that still have slack
        # (delta = cap - flow), conserving all previously computed flow.
        for a in adj[s]:
            if a % 2 == 1:
                continue
            if flow[a] > cap[a]:
                # A caller lowered a source-arc capacity without restoring a
                # compatible flow; refuse to solve a corrupted instance.
                raise ValueError(
                    "flow exceeds capacity on a source arc; restore a "
                    "compatible flow before re-initializing (see DESIGN.md)"
                )
            delta = cap[a] - flow[a]
            if delta > 0:
                v = head[a]
                flow[a] += delta
                flow[a ^ 1] -= delta
                excess[v] += delta

        # Algorithm 5 line 14: the source's (negative) excess is irrelevant.
        excess[s] = 0
        for v in range(n):
            if v != s and v != t and excess[v] > 0:
                self.queue.append(v)
                self.in_queue[v] = 1

        if self.initial_heights == "zero":
            self.height = [0] * n
            self.height[s] = n
        else:
            self._global_relabel()

        self.current = [0] * n
        self._rebuild_height_count()

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Discharge until no active vertices remain; return flow value.

        Must be preceded by :meth:`initialize`.
        """
        g, s, t = self.g, self.s, self.t
        n = g.n
        head, cap, flow, adj = g.arrays()
        excess, height, current = self.excess, self.height, self.current
        queue, in_queue = self.queue, self.in_queue
        height_count = self.height_count
        gr_interval = self.global_relabel_interval
        relabels_since_gr = 0
        two_n = 2 * n

        while queue:
            v = queue.popleft()
            in_queue[v] = 0
            if v == s or v == t:
                continue
            ev = excess[v]
            if ev <= 0:
                continue
            arcs = adj[v]
            deg = len(arcs)
            hv = height[v]
            i = current[v]
            while ev > 0:
                if i < deg:
                    a = arcs[i]
                    residual = cap[a] - flow[a]
                    if residual > 0:
                        w = head[a]
                        if hv == height[w] + 1:
                            delta = ev if ev < residual else residual
                            flow[a] += delta
                            flow[a ^ 1] -= delta
                            ev -= delta
                            excess[w] += delta
                            self.pushes += 1
                            if w != s and w != t and not in_queue[w]:
                                queue.append(w)
                                in_queue[w] = 1
                    i += 1
                else:
                    # relabel: lift v to 1 + min height over residual arcs
                    self.relabels += 1
                    relabels_since_gr += 1
                    old_h = hv
                    new_h = two_n
                    for a in arcs:
                        if cap[a] - flow[a] > 0:
                            hw = height[head[a]]
                            if hw + 1 < new_h:
                                new_h = hw + 1
                    if new_h >= two_n + 1:
                        new_h = two_n  # clamp; vertex is effectively stranded
                    height[v] = new_h
                    hv = new_h
                    height_count[old_h] -= 1
                    height_count[new_h] += 1
                    i = 0
                    # gap heuristic: old level emptied below n
                    if (
                        self.gap_heuristic
                        and 0 < old_h < n
                        and height_count[old_h] == 0
                    ):
                        self._apply_gap(old_h)
                        hv = height[v]
                    if gr_interval and relabels_since_gr >= gr_interval:
                        excess[v] = ev
                        current[v] = 0
                        self._global_relabel()
                        relabels_since_gr = 0
                        self._rebuild_height_count()
                        # heights changed globally: requeue v and restart
                        if ev > 0 and not in_queue[v]:
                            queue.append(v)
                            in_queue[v] = 1
                        break
                    if new_h >= two_n:
                        # cannot route anywhere; drop remaining excess search
                        break
            else:
                excess[v] = ev
                current[v] = i
                continue
            # reached via break paths above
            excess[v] = ev
            current[v] = i if i < deg else 0
            if ev > 0 and height[v] < two_n and not in_queue[v]:
                queue.append(v)
                in_queue[v] = 1

        return self.excess[t]

    # ------------------------------------------------------------------
    def _apply_gap(self, gap_h: int) -> None:
        """Lift every vertex with height in (gap_h, n) to n + 1."""
        g = self.g
        n = g.n
        self.gap_events += 1
        height, height_count = self.height, self.height_count
        for v in range(n):
            if v == self.s:
                continue
            h = height[v]
            if gap_h < h < n:
                height_count[h] -= 1
                height[v] = n + 1
                height_count[n + 1] += 1
                self.current[v] = 0

    def _global_relabel(self) -> None:
        """Exact-height computation: BFS distances in the residual graph.

        ``height[v] = dist(v, t)`` when the sink is residually reachable
        from ``v``; otherwise ``n + dist(v, s)``, which routes stranded
        excess back toward the source (phase 2).
        """
        g, s, t = self.g, self.s, self.t
        n = g.n
        head, cap, flow, adj = g.arrays()
        self.global_relabels += 1
        INF = 2 * n
        height = [INF] * n

        # backward BFS from t: follow arcs *into* v with residual capacity,
        # i.e. out-arcs a of v whose twin has residual (cap[a^1] - flow[a^1]).
        height[t] = 0
        dq = deque([t])
        while dq:
            v = dq.popleft()
            hv1 = height[v] + 1
            for a in adj[v]:
                # arc a: v -> w; its twin w -> v is the arc whose residual
                # capacity lets flow travel w -> v toward the sink.
                if cap[a ^ 1] - flow[a ^ 1] > 0:
                    w = head[a]
                    if height[w] > hv1:
                        height[w] = hv1
                        dq.append(w)

        height[s] = n
        # backward BFS from s, but only when some vertex cannot reach t
        # (the common feasible-probe case has none — skip the second pass)
        if any(h >= INF for h in height):
            dist_s = [INF] * n
            dist_s[s] = 0
            dq = deque([s])
            while dq:
                v = dq.popleft()
                dv1 = dist_s[v] + 1
                for a in adj[v]:
                    if cap[a ^ 1] - flow[a ^ 1] > 0:
                        w = head[a]
                        if dist_s[w] > dv1:
                            dist_s[w] = dv1
                            dq.append(w)
            for v in range(n):
                if v != s and height[v] >= INF:
                    height[v] = min(n + dist_s[v], 2 * n)
        self.height = height
        self.current = [0] * n

    def _rebuild_height_count(self) -> None:
        self.height_count = [0] * (2 * self.g.n + 1)
        for h in self.height:
            self.height_count[min(h, 2 * self.g.n)] += 1

    # ------------------------------------------------------------------
    def result(self) -> MaxFlowResult:
        """Package counters into a :class:`MaxFlowResult`."""
        return MaxFlowResult(
            value=self.excess[self.t],
            pushes=self.pushes,
            relabels=self.relabels,
            extra={
                "global_relabels": self.global_relabels,
                "gap_events": self.gap_events,
            },
        )


def push_relabel(
    g: FlowNetwork,
    s: int,
    t: int,
    *,
    warm_start: bool = False,
    initial_heights: str = "exact",
    global_relabel_interval: int | None = None,
    gap_heuristic: bool = True,
) -> MaxFlowResult:
    """One-shot FIFO push–relabel solve (the paper's Algorithm 4)."""
    state = PushRelabelState(
        g,
        s,
        t,
        initial_heights=initial_heights,
        global_relabel_interval=global_relabel_interval,
        gap_heuristic=gap_heuristic,
    )
    state.initialize(preserve_flow=warm_start)
    state.run()
    return state.result()


class PushRelabelEngine(MaxFlowEngine):
    """Registry wrapper around :func:`push_relabel`."""

    name = "push-relabel"

    def __init__(
        self,
        *,
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        self.initial_heights = initial_heights
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return push_relabel(
            g,
            s,
            t,
            warm_start=warm_start,
            initial_heights=self.initial_heights,
            global_relabel_interval=self.global_relabel_interval,
            gap_heuristic=self.gap_heuristic,
        )
