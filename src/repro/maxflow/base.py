"""Common engine interface and result container."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.graph.flownetwork import FlowNetwork

__all__ = ["MaxFlowResult", "MaxFlowEngine"]


@dataclass
class MaxFlowResult:
    """Outcome of one max-flow solve.

    Attributes
    ----------
    value:
        The flow value reached (net inflow to the sink) — an exact int
        under the integer kernel contract.
    augmentations:
        Number of augmenting paths (path-based engines) — 0 for
        push–relabel engines.
    pushes, relabels:
        Push–relabel operation counts — 0 for path-based engines.
    extra:
        Engine-specific counters (e.g. global relabel count, per-thread
        work split for the parallel engine).
    """

    value: int
    augmentations: int = 0
    pushes: int = 0
    relabels: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def work(self) -> int:
        """A crude engine-agnostic work measure (ops performed)."""
        return self.augmentations + self.pushes + self.relabels


class MaxFlowEngine(abc.ABC):
    """Abstract maximum-flow engine.

    Engines are cheap, stateless objects; all state lives in the
    :class:`~repro.graph.FlowNetwork` so that *integrated* callers can keep
    flow between solves and *black-box* callers can
    :meth:`~repro.graph.FlowNetwork.reset_flow` first — the distinction the
    paper is about.
    """

    #: registry name, overridden by subclasses
    name: str = "abstract"

    @abc.abstractmethod
    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        """Compute a maximum s-t flow on ``g``.

        Parameters
        ----------
        g:
            The network; its ``flow`` arrays are mutated in place.
        s, t:
            Source and sink vertex ids.
        warm_start:
            If true, the engine must treat the current flow on ``g`` as a
            valid starting flow and only add to it.  If false the engine
            zeroes the flow first (black-box behaviour).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name})>"
