"""Ford–Fulkerson augmenting-path maximum flow.

The paper's Algorithms 1 and 2 are built on a per-bucket DFS that walks
bucket → disk → sink, *reversing* bucket→disk edges along the way so a later
DFS can undo an earlier retrieval decision, and finally calling
``fixReversedEdges()``.  That edge-reversal dance is exactly a hand-rolled
residual graph over LEDA's unidirectional edge objects.  On our paired-arc
:class:`~repro.graph.FlowNetwork` the same search is simply a DFS over arcs
with positive residual capacity — no reversal or fix-up pass needed, and
the flow semantics are identical (asserted against the paper's worked
example in ``tests/core/test_paper_example.py``).

:func:`augment_unit_from` is the primitive the retrieval algorithms use:
find one unit-augmenting path from an arbitrary start vertex (a bucket) to
the sink.  :class:`FordFulkersonEngine` wraps it into a standard s-t
max-flow solver for the generic engine registry.

All arithmetic is exact integer arithmetic on the int kernel: residual
tests are ``> 0``, bottlenecks are int mins, and the flow value is an int.
"""

from __future__ import annotations

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["augment_unit_from", "ford_fulkerson", "FordFulkersonEngine"]


def augment_unit_from(g: FlowNetwork, start: int, t: int) -> bool:
    """Try to push **one unit** of flow from ``start`` to ``t``.

    Performs an iterative DFS on the residual graph; on success, augments
    every arc of the found path by 1 and returns ``True``.  On failure the
    network is untouched and ``False`` is returned.

    This is the ``DFS(G, v[i], t, caps, flow, path)`` call of Algorithms 1
    and 2 (one call per query bucket).
    """
    head, cap, flow, adj = g.arrays()
    if start == t:
        return True
    # Iterative DFS keeping the arc path; visited guards against cycles in
    # the residual graph (which contains reverse arcs by construction).
    visited = bytearray(g.n)
    visited[start] = 1
    # stack entries: (vertex, iterator index into adj[vertex])
    stack: list[list[int]] = [[start, 0]]
    path: list[int] = []
    while stack:
        frame = stack[-1]
        v, i = frame
        arcs = adj[v]
        advanced = False
        while i < len(arcs):
            a = arcs[i]
            i += 1
            if cap[a] - flow[a] > 0:
                w = head[a]
                if not visited[w]:
                    frame[1] = i
                    path.append(a)
                    if w == t:
                        for b in path:
                            flow[b] += 1
                            flow[b ^ 1] -= 1
                        return True
                    visited[w] = 1
                    stack.append([w, 0])
                    advanced = True
                    break
        if not advanced:
            frame[1] = i
            if i >= len(arcs):
                stack.pop()
                if path:
                    path.pop()
    return False


def _augment_max_from(g: FlowNetwork, s: int, t: int) -> int:
    """Find one augmenting path s→t and push its bottleneck; 0 if none."""
    head, cap, flow, adj = g.arrays()
    visited = bytearray(g.n)
    visited[s] = 1
    stack: list[list[int]] = [[s, 0]]
    path: list[int] = []
    while stack:
        frame = stack[-1]
        v, i = frame
        arcs = adj[v]
        advanced = False
        while i < len(arcs):
            a = arcs[i]
            i += 1
            if cap[a] - flow[a] > 0:
                w = head[a]
                if not visited[w]:
                    frame[1] = i
                    path.append(a)
                    if w == t:
                        delta = min(cap[b] - flow[b] for b in path)
                        for b in path:
                            flow[b] += delta
                            flow[b ^ 1] -= delta
                        return delta
                    visited[w] = 1
                    stack.append([w, 0])
                    advanced = True
                    break
        if not advanced:
            frame[1] = i
            if i >= len(arcs):
                stack.pop()
                if path:
                    path.pop()
    return 0


def ford_fulkerson(
    g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
) -> MaxFlowResult:
    """Repeatedly augment along DFS paths until none remain.

    With integral capacities this terminates with the maximum flow
    (Theorem 1 of the paper).  ``warm_start=True`` keeps the current flow
    and only augments on top of it.
    """
    if not warm_start:
        g.reset_flow()
    augments = 0
    while _augment_max_from(g, s, t) > 0:
        augments += 1
    # When warm-starting, the pre-existing flow also counts toward value.
    from repro.graph.validation import flow_value

    return MaxFlowResult(value=flow_value(g, s, t), augmentations=augments)


class FordFulkersonEngine(MaxFlowEngine):
    """Registry wrapper around :func:`ford_fulkerson`."""

    name = "ford-fulkerson"

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return ford_fulkerson(g, s, t, warm_start=warm_start)
