"""Highest-label push–relabel (HIPR-style selection).

The third classic selection rule after FIFO (Algorithm 4) and
relabel-to-front: always discharge an active vertex of **maximum
height**, giving the O(V²·√E) bound and, with the global-relabel + gap
heuristics, the strongest practical max-flow solver of the
Cherkassky–Goldberg study [19] (the HIPR code).  Implemented over the
same paired-arc structure with height-indexed active buckets, as an
ablation engine: the engine benchmark shows how much selection rule vs
height heuristics matters on retrieval networks.
"""

from __future__ import annotations

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["highest_label", "HighestLabelEngine"]


def highest_label(
    g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
) -> MaxFlowResult:
    """Maximum flow via highest-label push–relabel.

    Single-loop two-phase execution (heights ≤ 2n) like the FIFO engine,
    so the terminal state is a valid maximum flow.
    """
    if not warm_start:
        g.reset_flow()
    n = g.n
    head, cap, flow, adj = g.arrays()
    two_n = 2 * n

    # cancel preserved flow on arcs into the source (residual s->w arcs
    # break the height-validity invariant; cf. PushRelabelState.initialize)
    for b in adj[s]:
        if b % 2 == 1 and flow[b ^ 1] > 0:
            flow[b ^ 1] = 0
            flow[b] = 0

    # exact excesses from any preserved assignment, then saturate source
    excess = [0] * n
    for v in range(n):
        ev = 0
        for a in adj[v]:
            ev -= flow[a]
        excess[v] = ev
    for a in adj[s]:
        if a % 2 == 1:
            continue
        delta = cap[a] - flow[a]
        if delta > 0:
            flow[a] += delta
            flow[a ^ 1] -= delta
            excess[head[a]] += delta
    excess[s] = 0

    height = [0] * n
    height[s] = n
    current = [0] * n

    # height-indexed buckets of active vertices
    buckets: list[list[int]] = [[] for _ in range(two_n + 1)]
    in_bucket = bytearray(n)
    highest = 0
    for v in range(n):
        if v != s and v != t and excess[v] > 0:
            buckets[0].append(v)
            in_bucket[v] = 1

    pushes = relabels = 0
    while highest >= 0:
        while highest >= 0 and not buckets[highest]:
            highest -= 1
        if highest < 0:
            break
        v = buckets[highest].pop()
        in_bucket[v] = 0
        if v == s or v == t or excess[v] <= 0:
            continue
        hv = height[v]
        if hv != highest:
            # stale entry (vertex was relabelled since queued): requeue
            if hv <= two_n and excess[v] > 0 and not in_bucket[v]:
                buckets[hv].append(v)
                in_bucket[v] = 1
                if hv > highest:
                    highest = hv
            continue
        arcs = adj[v]
        deg = len(arcs)
        i = current[v]
        ev = excess[v]
        while ev > 0:
            if i < deg:
                a = arcs[i]
                if cap[a] - flow[a] > 0:
                    w = head[a]
                    if hv == height[w] + 1:
                        delta = ev if ev < cap[a] - flow[a] else cap[a] - flow[a]
                        flow[a] += delta
                        flow[a ^ 1] -= delta
                        ev -= delta
                        excess[w] += delta
                        pushes += 1
                        if w != s and w != t and not in_bucket[w]:
                            buckets[height[w]].append(w)
                            in_bucket[w] = 1
                i += 1
            else:
                relabels += 1
                new_h = two_n
                for a in arcs:
                    if cap[a] - flow[a] > 0:
                        hw = height[head[a]]
                        if hw + 1 < new_h:
                            new_h = hw + 1
                height[v] = new_h
                hv = new_h
                i = 0
                if new_h >= two_n:
                    break  # stranded (impossible for valid preflows)
        excess[v] = ev
        current[v] = i if i < deg else 0
        if ev > 0 and height[v] < two_n and not in_bucket[v]:
            buckets[height[v]].append(v)
            in_bucket[v] = 1
        if height[v] > highest:
            highest = min(height[v], two_n)

    value = -sum(flow[a] for a in adj[t])
    return MaxFlowResult(value=value, pushes=pushes, relabels=relabels)


class HighestLabelEngine(MaxFlowEngine):
    """Registry wrapper around :func:`highest_label`."""

    name = "highest-label"

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return highest_label(g, s, t, warm_start=warm_start)
