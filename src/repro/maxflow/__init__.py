"""Maximum-flow engines.

Every engine consumes a :class:`repro.graph.FlowNetwork` and drives flow
from a source to a sink.  The family mirrors the methods the paper surveys
in §II-B:

* :mod:`repro.maxflow.ford_fulkerson` — DFS augmenting paths (Ford &
  Fulkerson [24]); the engine inside Algorithms 1 and 2.
* :mod:`repro.maxflow.edmonds_karp` — BFS shortest augmenting paths;
  ablation baseline.
* :mod:`repro.maxflow.dinic` — blocking flows (Dinic [22]); ablation
  baseline.
* :mod:`repro.maxflow.push_relabel` — FIFO push–relabel with exact-height
  (global relabeling) and gap heuristics (Goldberg & Tarjan [29],
  Cherkassky & Goldberg [19]); the engine inside Algorithms 4–6.
* :mod:`repro.maxflow.csr_push_relabel` — the same FIFO push–relabel on
  the compiled CSR flat-array layout (:meth:`FlowNetwork.compile`), with
  per-topology scratch reuse; produces arc-identical flows to
  ``push-relabel`` and is the engine behind the ``pr-csr`` solver.
* :mod:`repro.maxflow.parallel_push_relabel` — asynchronous multithreaded
  push–relabel in the style of Hong & He [31].

All engines support *warm starts* (continuing from the network's current
flow), which is the property the paper's "integrated" algorithms exploit.
"""

from repro.maxflow.base import MaxFlowEngine, MaxFlowResult
from repro.maxflow.capacity_scaling import CapacityScalingEngine, capacity_scaling_ff
from repro.maxflow.csr_push_relabel import (
    CsrPushRelabelEngine,
    CsrPushRelabelState,
    csr_push_relabel,
)
from repro.maxflow.dinic import DinicEngine, dinic
from repro.maxflow.edmonds_karp import EdmondsKarpEngine, edmonds_karp
from repro.maxflow.ford_fulkerson import (
    FordFulkersonEngine,
    augment_unit_from,
    ford_fulkerson,
)
from repro.maxflow.highest_label import HighestLabelEngine, highest_label
from repro.maxflow.mpm import MpmEngine, mpm
from repro.maxflow.relabel_to_front import RelabelToFrontEngine, relabel_to_front
from repro.maxflow.parallel_push_relabel import (
    ParallelPushRelabelEngine,
    ParallelStats,
    parallel_push_relabel,
)
from repro.maxflow.push_relabel import (
    PushRelabelEngine,
    PushRelabelState,
    push_relabel,
)

ENGINES = {
    "ford-fulkerson": FordFulkersonEngine,
    "edmonds-karp": EdmondsKarpEngine,
    "capacity-scaling": CapacityScalingEngine,
    "dinic": DinicEngine,
    "mpm": MpmEngine,
    "push-relabel": PushRelabelEngine,
    "csr-push-relabel": CsrPushRelabelEngine,
    "highest-label": HighestLabelEngine,
    "relabel-to-front": RelabelToFrontEngine,
    "parallel-push-relabel": ParallelPushRelabelEngine,
}


def get_engine(name: str, **kwargs: object) -> MaxFlowEngine:
    """Instantiate an engine by registry name (see :data:`ENGINES`)."""
    try:
        cls = ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "ENGINES",
    "get_engine",
    "MaxFlowEngine",
    "MaxFlowResult",
    "FordFulkersonEngine",
    "ford_fulkerson",
    "augment_unit_from",
    "EdmondsKarpEngine",
    "edmonds_karp",
    "CapacityScalingEngine",
    "capacity_scaling_ff",
    "DinicEngine",
    "dinic",
    "MpmEngine",
    "mpm",
    "HighestLabelEngine",
    "highest_label",
    "RelabelToFrontEngine",
    "relabel_to_front",
    "PushRelabelEngine",
    "PushRelabelState",
    "push_relabel",
    "CsrPushRelabelEngine",
    "CsrPushRelabelState",
    "csr_push_relabel",
    "ParallelPushRelabelEngine",
    "ParallelStats",
    "parallel_push_relabel",
]
