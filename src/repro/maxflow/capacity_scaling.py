"""Capacity-scaling Ford–Fulkerson (Δ-scaling augmenting paths).

The classic O(E² log U) refinement of Ford–Fulkerson: only augment along
paths whose bottleneck is at least Δ, halving Δ until 1.  Included as an
ablation engine — it shares the name "capacity scaling" with the paper's
*binary capacity scaling* ([12] / Algorithm 6) but scales a different
quantity (the augmenting bottleneck vs the sink-edge capacities), and the
engine benchmark keeps that distinction measurable instead of
terminological.
"""

from __future__ import annotations

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["capacity_scaling_ff", "CapacityScalingEngine"]


def _augment_with_threshold(
    g: FlowNetwork, s: int, t: int, delta: int
) -> int:
    """DFS for an augmenting path with residuals >= delta; push bottleneck."""
    head, cap, flow, adj = g.arrays()
    visited = bytearray(g.n)
    visited[s] = 1
    stack: list[list[int]] = [[s, 0]]
    path: list[int] = []
    while stack:
        frame = stack[-1]
        v, i = frame
        arcs = adj[v]
        advanced = False
        while i < len(arcs):
            a = arcs[i]
            i += 1
            if cap[a] - flow[a] >= delta:
                w = head[a]
                if not visited[w]:
                    frame[1] = i
                    path.append(a)
                    if w == t:
                        push = min(cap[b] - flow[b] for b in path)
                        for b in path:
                            flow[b] += push
                            flow[b ^ 1] -= push
                        return push
                    visited[w] = 1
                    stack.append([w, 0])
                    advanced = True
                    break
        if not advanced:
            frame[1] = i
            if i >= len(arcs):
                stack.pop()
                if path:
                    path.pop()
    return 0


def capacity_scaling_ff(
    g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
) -> MaxFlowResult:
    """Maximum flow via Δ-scaling augmenting paths."""
    if not warm_start:
        g.reset_flow()
    max_cap = max((c for c in g.cap if c > 0), default=0)
    delta = 1
    while delta * 2 <= max_cap:
        delta *= 2
    augments = 0
    phases = 0
    while delta >= 1:
        phases += 1
        while _augment_with_threshold(g, s, t, delta) > 0:
            augments += 1
        delta //= 2
    value = -sum(g.flow[a] for a in g.adj[t])
    return MaxFlowResult(
        value=value, augmentations=augments, extra={"phases": phases}
    )


class CapacityScalingEngine(MaxFlowEngine):
    """Registry wrapper around :func:`capacity_scaling_ff`."""

    name = "capacity-scaling"

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return capacity_scaling_ff(g, s, t, warm_start=warm_start)
