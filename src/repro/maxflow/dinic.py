"""Dinic's blocking-flow algorithm.

The paper cites the blocking-flow method (Dinic [22], Karzanov [33]) as one
of the classic alternatives to push–relabel.  We implement it as a second
ablation baseline; on the shallow 4-layer retrieval networks
(source → buckets → disks → sink) Dinic needs at most a handful of phases,
so it is surprisingly competitive — the ablation bench quantifies this.
"""

from __future__ import annotations

from collections import deque

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["dinic", "DinicEngine"]


def _build_levels(g: FlowNetwork, s: int, t: int) -> list[int] | None:
    """BFS level graph on residual arcs; None if t unreachable."""
    head, cap, flow, adj = g.arrays()
    level = [-1] * g.n
    level[s] = 0
    queue = deque([s])
    while queue:
        v = queue.popleft()
        for a in adj[v]:
            if cap[a] - flow[a] > 0:
                w = head[a]
                if level[w] < 0:
                    level[w] = level[v] + 1
                    queue.append(w)
    return level if level[t] >= 0 else None


def _blocking_flow(
    g: FlowNetwork, s: int, t: int, level: list[int], it: list[int]
) -> int:
    """Send a blocking flow through the level graph (iterative DFS)."""
    head, cap, flow, adj = g.arrays()
    total = 0
    while True:
        # find one augmenting path within the level graph
        path: list[int] = []
        v = s
        while v != t:
            arcs = adj[v]
            advanced = False
            while it[v] < len(arcs):
                a = arcs[it[v]]
                if cap[a] - flow[a] > 0 and level[head[a]] == level[v] + 1:
                    path.append(a)
                    v = head[a]
                    advanced = True
                    break
                it[v] += 1
            if not advanced:
                # dead end: retreat
                if v == s:
                    return total
                level[v] = -1  # prune
                v = g.tail(path[-1])
                path.pop()
                it[v] += 1
        delta = min(cap[a] - flow[a] for a in path)
        for a in path:
            flow[a] += delta
            flow[a ^ 1] -= delta
        total += delta
        # restart path search from s, reusing iterators
        # (saturated arcs are skipped automatically)


def dinic(g: FlowNetwork, s: int, t: int, *, warm_start: bool = False) -> MaxFlowResult:
    """Maximum flow via phases of blocking flows, O(V²·E)."""
    if not warm_start:
        g.reset_flow()
    phases = 0
    while True:
        level = _build_levels(g, s, t)
        if level is None:
            break
        it = [0] * g.n
        _blocking_flow(g, s, t, level, it)
        phases += 1
    from repro.graph.validation import flow_value

    return MaxFlowResult(value=flow_value(g, s, t), extra={"phases": phases})


class DinicEngine(MaxFlowEngine):
    """Registry wrapper around :func:`dinic`."""

    name = "dinic"

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return dinic(g, s, t, warm_start=warm_start)
