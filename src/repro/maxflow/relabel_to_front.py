"""Relabel-to-front push–relabel (Goldberg & Tarjan [29], CLRS variant).

The paper's Algorithm 4 uses FIFO vertex selection; relabel-to-front is
the other textbook O(V³) selection rule — maintain a topological-ish list
of vertices, fully discharge the current one, and move it to the front
whenever it was relabelled.  Implemented as an ablation engine so the
engine benchmark can show that *selection rule* matters less than the
height heuristics on the shallow retrieval networks.
"""

from __future__ import annotations

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["relabel_to_front", "RelabelToFrontEngine"]


def relabel_to_front(
    g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
) -> MaxFlowResult:
    """Maximum flow via relabel-to-front, O(V³).

    Runs single-phase to completion over heights ≤ 2n (like our FIFO
    engine), so the terminal state is a valid maximum *flow*.
    """
    if not warm_start:
        g.reset_flow()
    n = g.n
    head, cap, flow, adj = g.arrays()

    # cancel preserved flow on arcs into the source (residual s->w arcs
    # break the height-validity invariant; cf. PushRelabelState.initialize)
    for b in adj[s]:
        if b % 2 == 1 and flow[b ^ 1] > 0:
            flow[b ^ 1] = 0
            flow[b] = 0

    # exact excesses from any preserved assignment, then saturate source
    excess = [0] * n
    for v in range(n):
        ev = 0
        for a in adj[v]:
            ev -= flow[a]
        excess[v] = ev
    for a in adj[s]:
        if a % 2 == 1:
            continue
        delta = cap[a] - flow[a]
        if delta > 0:
            flow[a] += delta
            flow[a ^ 1] -= delta
            excess[head[a]] += delta
    excess[s] = 0

    height = [0] * n
    height[s] = n
    current = [0] * n
    pushes = relabels = 0
    two_n = 2 * n

    order = [v for v in range(n) if v != s and v != t]
    i = 0
    while i < len(order):
        v = order[i]
        old_h = height[v]
        # discharge v completely
        while excess[v] > 0:
            arcs = adj[v]
            if current[v] < len(arcs):
                a = arcs[current[v]]
                w = head[a]
                if cap[a] - flow[a] > 0 and height[v] == height[w] + 1:
                    delta = min(excess[v], cap[a] - flow[a])
                    flow[a] += delta
                    flow[a ^ 1] -= delta
                    excess[v] -= delta
                    excess[w] += delta
                    pushes += 1
                else:
                    current[v] += 1
            else:
                # relabel
                new_h = two_n
                for a in arcs:
                    if cap[a] - flow[a] > 0:
                        hw = height[head[a]]
                        if hw + 1 < new_h:
                            new_h = hw + 1
                height[v] = new_h
                current[v] = 0
                relabels += 1
                if new_h >= two_n:
                    break  # stranded (cannot occur for valid preflows)
        if height[v] > old_h and i > 0:
            # relabelled: move to front and restart the scan from it
            order.pop(i)
            order.insert(0, v)
            i = 0
        i += 1

    value = -sum(flow[a] for a in adj[t])
    return MaxFlowResult(value=value, pushes=pushes, relabels=relabels)


class RelabelToFrontEngine(MaxFlowEngine):
    """Registry wrapper around :func:`relabel_to_front`."""

    name = "relabel-to-front"

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return relabel_to_front(g, s, t, warm_start=warm_start)
