"""Edmonds–Karp: Ford–Fulkerson specialized to BFS shortest paths.

Not used by any of the paper's algorithms directly; it exists as an
ablation baseline (``benchmarks/bench_ablation_engines.py``) showing where
the paper's "push-relabel beats augmenting paths in practice" claim sits
when the augmenting-path side is given its textbook-best variant.
"""

from __future__ import annotations

from collections import deque

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["edmonds_karp", "EdmondsKarpEngine"]


def _bfs_augment(g: FlowNetwork, s: int, t: int) -> int:
    """One BFS phase: find a shortest augmenting path, push its bottleneck."""
    head, cap, flow, adj = g.arrays()
    parent_arc = [-1] * g.n
    parent_arc[s] = -2  # mark source visited
    queue = deque([s])
    while queue:
        v = queue.popleft()
        for a in adj[v]:
            if cap[a] - flow[a] > 0:
                w = head[a]
                if parent_arc[w] == -1:
                    parent_arc[w] = a
                    if w == t:
                        queue.clear()
                        break
                    queue.append(w)
    if parent_arc[t] == -1:
        return 0
    # walk back to find bottleneck (-1 sentinel: "no arc seen yet")
    delta = -1
    v = t
    while v != s:
        a = parent_arc[v]
        r = cap[a] - flow[a]
        if delta < 0 or r < delta:
            delta = r
        v = g.tail(a)
    v = t
    while v != s:
        a = parent_arc[v]
        flow[a] += delta
        flow[a ^ 1] -= delta
        v = g.tail(a)
    return delta


def edmonds_karp(
    g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
) -> MaxFlowResult:
    """Maximum flow via BFS augmenting paths, O(V·E²)."""
    if not warm_start:
        g.reset_flow()
    augments = 0
    while _bfs_augment(g, s, t) > 0:
        augments += 1
    from repro.graph.validation import flow_value

    return MaxFlowResult(value=flow_value(g, s, t), augmentations=augments)


class EdmondsKarpEngine(MaxFlowEngine):
    """Registry wrapper around :func:`edmonds_karp`."""

    name = "edmonds-karp"

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return edmonds_karp(g, s, t, warm_start=warm_start)
