"""Push–relabel on the compiled CSR flat-array layout.

Same answers, different memory system — plus a selection rule the flat
layout makes cheap.  This engine ports :mod:`repro.maxflow.push_relabel`
(current-arc pointers, exact-height initialization, gap relabeling) onto
the frozen layout built by
:meth:`~repro.graph.flownetwork.FlowNetwork.compile`, with two vertex
selection rules:

* ``selection="fifo"`` (default) — an operation-for-operation port of
  the list-based FIFO engine.  Discharge order, relabel rule and gap
  heuristic match exactly, so the two produce **arc-identical flow
  assignments** (asserted arc-by-arc in the compile/round-trip property
  suite), which makes the list engine a differential oracle for the
  layout itself.
* ``selection="highest"`` — highest-label buckets: active vertices live
  in per-height stacks and the highest is discharged first.  Unlike
  :mod:`repro.maxflow.highest_label` (zero heights, no gap — the
  measured 16x-slower ablation baseline), this variant keeps the
  exact-height BFS initialization *and* the gap heuristic.  It does cut
  relabels ~11% on the generalized probe workload, but the per-push
  bucket bookkeeping costs more than the saved relabels on these
  shallow 4-layer networks (measured: ~10% slower than FIFO), so FIFO
  stays the default.  Flow values are identical (any max-flow is); the
  arc-level routing may differ.

Layout mechanics shared by both paths:

* adjacency is the CSR range ``adj[first[v] : first[v + 1]]``, walked
  with an *absolute* cursor (``current[v]`` stores a position in the
  flat array, not an offset), so the inner loop does one list index per
  arc;
* all per-vertex working state (excess/height/cursor buffers, FIFO
  ring or height buckets, activity bitmap, height histogram, BFS
  scratch) lives in
  :attr:`~repro.graph.csr.CompiledNetwork.kernel_scratch`, keyed by
  ``(source, sink)``, and is reused across probes — reset by
  whole-buffer slice writes from precomputed templates instead of
  reallocated;
* the exact-height BFS folds the height-histogram rebuild into the
  distance sweep and skips the ``O(n + m)`` excess recomputation on
  cold (``preserve_flow=False``) starts, where the flow buffer is
  known-zero.

Flows and capacities stay in the builder's plain lists (the single
source of truth the scaling skeleton's StoreFlows/RestoreFlows
discipline mutates); the compiled network contributes the frozen
topology and the amortized scratch.  Scalar element access is why: list
indexing beats ``array('q')`` boxing ~1.6x in CPython (measured; see
docs/ALGORITHMS.md "Memory layout"), so the kernel binds the compiled
topology's cached list mirrors and the builder's value lists.
"""

from __future__ import annotations

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["CsrPushRelabelState", "csr_push_relabel", "CsrPushRelabelEngine"]


class CsrPushRelabelState:
    """Re-entrant CSR push–relabel bound to one compiled network.

    Construction compiles (or reuses the memoized compile of) the
    builder ``g`` and adopts the scratch buffers earlier states for the
    same ``(source, sink)`` left behind.  ``initial_heights``,
    ``global_relabel_interval`` and ``gap_heuristic`` mirror
    :class:`~repro.maxflow.push_relabel.PushRelabelState`;
    ``selection`` picks the vertex order (see module docstring).
    """

    def __init__(
        self,
        g: FlowNetwork,
        s: int,
        t: int,
        *,
        selection: str = "fifo",
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        if s == t:
            raise ValueError("source and sink must differ")
        if selection not in ("fifo", "highest"):
            raise ValueError(
                f"selection must be 'fifo' or 'highest', got {selection!r}"
            )
        if initial_heights not in ("exact", "zero"):
            raise ValueError(
                f"initial_heights must be 'exact' or 'zero', "
                f"got {initial_heights!r}"
            )
        self.g = g
        self.s = s
        self.t = t
        self.selection = selection
        self.initial_heights = initial_heights
        n = g.n
        if global_relabel_interval is None:
            global_relabel_interval = (
                0 if initial_heights == "exact" else max(n, 16)
            )
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic

        c = g.compiled()
        self.c = c
        scratch = c.kernel_scratch.get((s, t))
        if scratch is None or scratch["n"] != n:
            first = c.first_list
            adjf = c.adj_list
            head = c.head_list
            two_n = 2 * n
            scratch = {
                "n": n,
                "excess": [0] * n,
                "height": [0] * n,
                "current": [0] * n,
                "in_queue": bytearray(n),
                "height_count": [0] * (two_n + 1),
                "dist": [0] * n,
                "zeros_n": [0] * n,
                "zeros_hc": [0] * (two_n + 1),
                "inf_n": [two_n] * n,
                # per-vertex CSR base positions: the current-arc reset
                "cursor0": first[:n],
                # forward source arcs with their heads, in adjacency order
                "src_arcs": [
                    (a, head[a])
                    for a in adjf[first[s] : first[s + 1]]
                    if not a & 1
                ],
                # the only vertices a cold start can activate, ascending
                # (so the seed order matches the full-vertex scan)
                "src_heads": sorted(
                    {
                        head[a]
                        for a in adjf[first[s] : first[s + 1]]
                        if not a & 1
                    }
                ),
                "zeros_m": [0] * len(adjf),
                # height buckets for highest-label selection
                "buckets": [[] for _ in range(two_n + 1)],
            }
            c.kernel_scratch[(s, t)] = scratch
        self._scratch = scratch
        self.excess: list[int] = scratch["excess"]
        self.height: list[int] = scratch["height"]
        self.current: list[int] = scratch["current"]
        self.in_queue: bytearray = scratch["in_queue"]
        self.height_count: list[int] = scratch["height_count"]
        #: FIFO as a list + head cursor (amortized O(1) popleft)
        self.queue: list[int] = []
        self.qhead: int = 0

        # operation counters (reported in MaxFlowResult.extra)
        self.pushes = 0
        self.relabels = 0
        self.global_relabels = 0
        self.gap_events = 0

    # ------------------------------------------------------------------
    def initialize(self, *, preserve_flow: bool = True) -> None:
        """(Re)start the solver; see ``PushRelabelState.initialize``.

        Cold starts (``preserve_flow=False``) skip the net-inflow excess
        recomputation: the flow buffer is all-zero after ``reset_flow``,
        so every excess is zero until the source arcs are saturated.
        """
        g, s, t = self.g, self.s, self.t
        n = g.n
        cap, flow = g.cap, g.flow
        scratch = self._scratch
        first = self.c.first_list
        adjf = self.c.adj_list
        zeros_n = scratch["zeros_n"]

        self.queue = []
        self.qhead = 0
        in_queue = self.in_queue
        in_queue[:] = bytes(n)

        excess = self.excess
        if preserve_flow:
            # Cancel preserved flow on arcs INTO the source (see the
            # list engine for why this is required for correctness).
            for b in adjf[first[s] : first[s + 1]]:
                if b & 1 and flow[b ^ 1] > 0:
                    flow[b ^ 1] = 0
                    flow[b] = 0
            # Exact excesses from the preserved assignment.
            pos = first[0]
            for v in range(n):
                end = first[v + 1]
                ev = 0
                for k in range(pos, end):
                    ev -= flow[adjf[k]]
                excess[v] = ev
                pos = end
        else:
            # known-zero reset from the scratch template: one C-level
            # slice write, no per-solve [0] * m allocation
            flow[:] = scratch["zeros_m"]
            excess[:] = zeros_n

        # Saturate source arcs that still have slack, conserving flow.
        for a, v in scratch["src_arcs"]:
            fa = flow[a]
            if fa > cap[a]:
                raise ValueError(
                    "flow exceeds capacity on a source arc; restore a "
                    "compatible flow before re-initializing (see DESIGN.md)"
                )
            delta = cap[a] - fa
            if delta > 0:
                flow[a] = fa + delta
                flow[a ^ 1] -= delta
                excess[v] += delta

        excess[s] = 0
        queue = self.queue
        if preserve_flow:
            for v in range(n):
                if v != s and v != t and excess[v] > 0:
                    queue.append(v)
                    in_queue[v] = 1
        else:
            # cold start: only source-arc heads can hold excess, and the
            # precomputed ascending seed order equals the full scan's
            for v in scratch["src_heads"]:
                if v != t and excess[v] > 0:
                    queue.append(v)
                    in_queue[v] = 1

        height = self.height
        height_count = self.height_count
        if self.initial_heights == "zero":
            height[:] = zeros_n
            height[s] = n
            self.current[:] = scratch["cursor0"]
            height_count[:] = scratch["zeros_hc"]
            height_count[0] = n - 1
            height_count[n] += 1
        else:
            self._global_relabel()

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Discharge until no active vertices remain; return flow value.

        Must be preceded by :meth:`initialize`.
        """
        if self.selection == "highest":
            return self._run_highest()
        return self._run_fifo()

    # ------------------------------------------------------------------
    def _run_fifo(self) -> int:
        """FIFO discharge — operation-for-operation the list engine."""
        g, s, t = self.g, self.s, self.t
        c = self.c
        n = g.n
        cap, flow = g.cap, g.flow
        head = c.head_list
        first = c.first_list
        adjf = c.adj_list
        excess, height, current = self.excess, self.height, self.current
        queue, in_queue = self.queue, self.in_queue
        height_count = self.height_count
        gr_interval = self.global_relabel_interval
        gap_on = self.gap_heuristic
        relabels_since_gr = 0
        two_n = 2 * n
        pushes = self.pushes
        relabels = self.relabels
        qhead = self.qhead

        while qhead < len(queue):
            v = queue[qhead]
            qhead += 1
            in_queue[v] = 0
            if v == s or v == t:
                continue
            ev = excess[v]
            if ev <= 0:
                continue
            i0 = first[v]
            i1 = first[v + 1]
            hv = height[v]
            i = current[v]
            while ev > 0:
                if i < i1:
                    a = adjf[i]
                    residual = cap[a] - flow[a]
                    if residual > 0:
                        w = head[a]
                        if hv == height[w] + 1:
                            delta = ev if ev < residual else residual
                            flow[a] += delta
                            flow[a ^ 1] -= delta
                            ev -= delta
                            excess[w] += delta
                            pushes += 1
                            if w != s and w != t and not in_queue[w]:
                                queue.append(w)
                                in_queue[w] = 1
                    i += 1
                else:
                    # relabel: lift v to 1 + min height over residual arcs
                    relabels += 1
                    relabels_since_gr += 1
                    old_h = hv
                    new_h = two_n
                    for k in range(i0, i1):
                        a = adjf[k]
                        if cap[a] - flow[a] > 0:
                            hw = height[head[a]]
                            if hw + 1 < new_h:
                                new_h = hw + 1
                    if new_h >= two_n + 1:
                        new_h = two_n  # clamp; vertex effectively stranded
                    height[v] = new_h
                    hv = new_h
                    height_count[old_h] -= 1
                    height_count[new_h] += 1
                    i = i0
                    # gap heuristic: old level emptied below n
                    if gap_on and 0 < old_h < n and height_count[old_h] == 0:
                        self._apply_gap(old_h)
                        hv = height[v]
                    if gr_interval and relabels_since_gr >= gr_interval:
                        excess[v] = ev
                        current[v] = i0
                        self.pushes = pushes
                        self.relabels = relabels
                        self.qhead = qhead
                        self._global_relabel()
                        relabels_since_gr = 0
                        # heights changed globally: requeue v and restart
                        if ev > 0 and not in_queue[v]:
                            queue.append(v)
                            in_queue[v] = 1
                        break
                    if new_h >= two_n:
                        # cannot route anywhere; drop remaining excess search
                        break
            else:
                excess[v] = ev
                current[v] = i
                continue
            # reached via break paths above
            excess[v] = ev
            current[v] = i if i < i1 else i0
            if ev > 0 and height[v] < two_n and not in_queue[v]:
                queue.append(v)
                in_queue[v] = 1

        self.pushes = pushes
        self.relabels = relabels
        self.qhead = qhead
        return self.excess[t]

    # ------------------------------------------------------------------
    def _run_highest(self) -> int:
        """Highest-label discharge over per-height bucket stacks.

        The FIFO seed queue from :meth:`initialize` is scattered into
        the buckets first; ``in_queue`` doubles as the in-bucket bitmap.
        A vertex popped with a stale height (moved by a gap lift) is
        re-bucketed instead of discharged.
        """
        g, s, t = self.g, self.s, self.t
        c = self.c
        n = g.n
        cap, flow = g.cap, g.flow
        head = c.head_list
        first = c.first_list
        adjf = c.adj_list
        excess, height, current = self.excess, self.height, self.current
        in_queue = self.in_queue
        height_count = self.height_count
        gap_on = self.gap_heuristic
        two_n = 2 * n
        pushes = self.pushes
        relabels = self.relabels

        buckets = self._scratch["buckets"]
        for b in buckets:
            if b:
                del b[:]
        hmax = 0
        queue = self.queue
        for k in range(self.qhead, len(queue)):
            v = queue[k]
            if in_queue[v]:
                h = height[v]
                if h < two_n:
                    buckets[h].append(v)
                    if h > hmax:
                        hmax = h
                else:
                    in_queue[v] = 0
        del queue[:]
        self.qhead = 0

        while hmax >= 0:
            bucket = buckets[hmax]
            if not bucket:
                hmax -= 1
                continue
            v = bucket.pop()
            hv = height[v]
            if hv != hmax:  # stale after a gap lift; re-bucket
                if hv < two_n:
                    buckets[hv].append(v)
                    if hv > hmax:
                        hmax = hv
                else:
                    in_queue[v] = 0
                continue
            in_queue[v] = 0
            ev = excess[v]
            if ev <= 0:
                continue
            i0 = first[v]
            i1 = first[v + 1]
            i = current[v]
            while ev > 0:
                if i < i1:
                    a = adjf[i]
                    residual = cap[a] - flow[a]
                    if residual > 0:
                        w = head[a]
                        if hv == height[w] + 1:
                            delta = ev if ev < residual else residual
                            flow[a] += delta
                            flow[a ^ 1] -= delta
                            ev -= delta
                            excess[w] += delta
                            pushes += 1
                            if w != s and w != t and not in_queue[w]:
                                hw = height[w]
                                buckets[hw].append(w)
                                in_queue[w] = 1
                                if hw > hmax:
                                    hmax = hw
                    i += 1
                else:
                    # relabel: lift v to 1 + min height over residual arcs
                    relabels += 1
                    old_h = hv
                    new_h = two_n
                    for k in range(i0, i1):
                        a = adjf[k]
                        if cap[a] - flow[a] > 0:
                            hw = height[head[a]]
                            if hw + 1 < new_h:
                                new_h = hw + 1
                    if new_h > two_n:
                        new_h = two_n  # clamp; vertex effectively stranded
                    height[v] = new_h
                    hv = new_h
                    height_count[old_h] -= 1
                    height_count[new_h] += 1
                    i = i0
                    # gap heuristic: old level emptied below n
                    if gap_on and 0 < old_h < n and height_count[old_h] == 0:
                        self._apply_gap(old_h)
                        hv = height[v]
                    if hv >= two_n:
                        # cannot route anywhere; park remaining excess
                        break
            excess[v] = ev
            current[v] = i if i < i1 else i0
            if ev > 0 and hv < two_n:
                buckets[hv].append(v)
                in_queue[v] = 1
                if hv > hmax:
                    hmax = hv

        self.pushes = pushes
        self.relabels = relabels
        return self.excess[t]

    # ------------------------------------------------------------------
    def _apply_gap(self, gap_h: int) -> None:
        """Lift every vertex with height in (gap_h, n) to n + 1.

        Bucketed (highest-label) vertices are left in place: the run
        loop detects the stale height at pop time and re-buckets.
        """
        n = self.g.n
        s = self.s
        self.gap_events += 1
        height, height_count = self.height, self.height_count
        current, cursor0 = self.current, self._scratch["cursor0"]
        lifted = n + 1
        for v in range(n):
            if v == s:
                continue
            h = height[v]
            if gap_h < h < n:
                height_count[h] -= 1
                height[v] = lifted
                height_count[lifted] += 1
                current[v] = cursor0[v]

    # ------------------------------------------------------------------
    def _global_relabel(self) -> None:
        """Exact heights (BFS residual distances), histogram fused in.

        Identical distance semantics to the list engine's
        ``_global_relabel``; the height histogram and current-arc reset
        ride along so no separate ``_rebuild_height_count`` pass runs.
        """
        g, s, t = self.g, self.s, self.t
        c = self.c
        n = g.n
        cap, flow = g.cap, g.flow
        head = c.head_list
        first = c.first_list
        adjf = c.adj_list
        scratch = self._scratch
        self.global_relabels += 1
        INF = 2 * n
        height = self.height
        height[:] = scratch["inf_n"]

        # backward BFS from t over residual twins (arc a: v -> w; flow
        # can travel w -> v toward the sink iff twin residual > 0)
        height[t] = 0
        bfs = [t]
        qpos = 0
        while qpos < len(bfs):
            v = bfs[qpos]
            qpos += 1
            hv1 = height[v] + 1
            for a in adjf[first[v] : first[v + 1]]:
                if cap[a ^ 1] - flow[a ^ 1] > 0:
                    w = head[a]
                    if height[w] > hv1:
                        height[w] = hv1
                        bfs.append(w)

        # backward BFS from s only when some non-source vertex cannot
        # reach t; the count of sink-reached vertices makes the test O(1)
        s_reached = height[s] < INF
        height[s] = n
        if len(bfs) - s_reached < n - 1:
            dist_s = scratch["dist"]
            dist_s[:] = scratch["inf_n"]
            dist_s[s] = 0
            bfs = [s]
            qpos = 0
            while qpos < len(bfs):
                v = bfs[qpos]
                qpos += 1
                dv1 = dist_s[v] + 1
                for a in adjf[first[v] : first[v + 1]]:
                    if cap[a ^ 1] - flow[a ^ 1] > 0:
                        w = head[a]
                        if dist_s[w] > dv1:
                            dist_s[w] = dv1
                            bfs.append(w)
            for v in range(n):
                if v != s and height[v] >= INF:
                    hs = n + dist_s[v]
                    height[v] = hs if hs < INF else INF

        self.current[:] = scratch["cursor0"]
        height_count = self.height_count
        height_count[:] = scratch["zeros_hc"]
        for h in height:
            height_count[h if h < INF else INF] += 1

    # ------------------------------------------------------------------
    def result(self) -> MaxFlowResult:
        """Package counters into a :class:`MaxFlowResult`."""
        return MaxFlowResult(
            value=self.excess[self.t],
            pushes=self.pushes,
            relabels=self.relabels,
            extra={
                "global_relabels": self.global_relabels,
                "gap_events": self.gap_events,
            },
        )


def csr_push_relabel(
    g: FlowNetwork,
    s: int,
    t: int,
    *,
    warm_start: bool = False,
    selection: str = "fifo",
    initial_heights: str = "exact",
    global_relabel_interval: int | None = None,
    gap_heuristic: bool = True,
) -> MaxFlowResult:
    """One-shot push–relabel solve on the compiled CSR layout.

    The state object itself is memoized in the compiled network's
    scratch (keyed by endpoints and options), so a probe loop that calls
    the one-shot engine repeatedly — the black-box scheduler's exact
    shape — pays construction once and ``initialize`` + ``run`` per
    solve.  Counters are reset per call so the returned
    :class:`MaxFlowResult` reports this solve only.
    """
    key = (
        "state", s, t, selection, initial_heights,
        global_relabel_interval, gap_heuristic,
    )
    scratch = g.compiled().kernel_scratch
    state = scratch.get(key)
    if state is None or state.g is not g:
        state = CsrPushRelabelState(
            g,
            s,
            t,
            selection=selection,
            initial_heights=initial_heights,
            global_relabel_interval=global_relabel_interval,
            gap_heuristic=gap_heuristic,
        )
        scratch[key] = state
    state.pushes = 0
    state.relabels = 0
    state.global_relabels = 0
    state.gap_events = 0
    state.initialize(preserve_flow=warm_start)
    state.run()
    return state.result()


class CsrPushRelabelEngine(MaxFlowEngine):
    """Registry wrapper around :func:`csr_push_relabel`."""

    name = "csr-push-relabel"

    def __init__(
        self,
        *,
        selection: str = "fifo",
        initial_heights: str = "exact",
        global_relabel_interval: int | None = None,
        gap_heuristic: bool = True,
    ) -> None:
        self.selection = selection
        self.initial_heights = initial_heights
        self.global_relabel_interval = global_relabel_interval
        self.gap_heuristic = gap_heuristic

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return csr_push_relabel(
            g,
            s,
            t,
            warm_start=warm_start,
            selection=self.selection,
            initial_heights=self.initial_heights,
            global_relabel_interval=self.global_relabel_interval,
            gap_heuristic=self.gap_heuristic,
        )
