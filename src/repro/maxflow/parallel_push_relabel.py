"""Asynchronous multithreaded push–relabel (Hong & He [31] style).

The paper parallelizes Algorithm 6's push/relabel phase with the
asynchronous algorithm of Hong & He (*An asynchronous multithreaded
algorithm for the maximum network flow problem*, TPDS 2011): worker threads
repeatedly pop an active vertex from a shared queue and discharge it —
pushing to the *lowest-height* residual neighbour when the vertex sits
above it, relabelling to one above that neighbour otherwise — with no
global barriers in the discharge path; conflicting updates are resolved
with atomic read-modify-write instructions.

Substitutions (documented in DESIGN.md §2)
------------------------------------------
* *pthreads + atomic fetch-and-add* → ``threading`` + per-vertex
  ``Lock`` objects.  For each push we acquire the two endpoint locks in
  vertex-id order and re-validate residual capacity and heights inside the
  critical section, which is an exact (if slower) emulation of the CAS
  retry loop in [31].
* [31]'s *nonblocking global relabeling* → a park-the-workers global
  relabel: when the shared relabel counter passes the threshold, workers
  park at a condition variable, the last one to park recomputes exact
  BFS heights, and everyone resumes.  The heuristic matters for the same
  reason as in [31] — without it, excess stranded by saturated arcs
  ping-pongs its height upward one relabel at a time (measured ~10x
  discharge blowup on infeasible capacity probes).
* **GIL caveat:** CPython threads cannot exceed 1x CPU-bound speedup, and
  the lock emulation adds real constant factors (repro band: "GIL hampers
  multithreaded push-relabel speedup claims").  What this module
  reproduces faithfully is the *algorithm* and its parallel schedule:
  work splits across threads, per-query runtime ratios fluctuate with
  graph structure exactly as in the paper's Figure 10, and the optimal
  values always agree with the sequential solver.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.graph.flownetwork import FlowNetwork
from repro.maxflow.base import MaxFlowEngine, MaxFlowResult

__all__ = ["ParallelStats", "parallel_push_relabel", "ParallelPushRelabelEngine"]


@dataclass
class ParallelStats:
    """Per-thread work distribution of one parallel solve."""

    num_threads: int
    pushes_per_thread: list[int] = field(default_factory=list)
    relabels_per_thread: list[int] = field(default_factory=list)
    idle_spins_per_thread: list[int] = field(default_factory=list)
    global_relabels: int = 0

    @property
    def total_pushes(self) -> int:
        return sum(self.pushes_per_thread)

    @property
    def total_relabels(self) -> int:
        return sum(self.relabels_per_thread)

    @property
    def load_balance(self) -> float:
        """max/mean pushes across threads (1.0 = perfectly balanced)."""
        if not self.pushes_per_thread or self.total_pushes == 0:
            return 1.0
        mean = self.total_pushes / self.num_threads
        return max(self.pushes_per_thread) / mean if mean else 1.0


class _SharedState:
    """All mutable state shared by the worker threads."""

    def __init__(self, g: FlowNetwork, s: int, t: int, gr_interval: int) -> None:
        self.g = g
        self.s = s
        self.t = t
        n = g.n
        self.n = n
        self.excess = [0] * n
        self.height = [0] * n
        self.vlocks = [threading.Lock() for _ in range(n)]
        self.queue: deque[int] = deque()
        self.in_queue = bytearray(n)
        #: queued + currently-being-discharged vertex count; exit when 0
        self.pending = 0
        self.qlock = threading.Lock()

        #: global-relabel coordination (parked-workers simplification of
        #: [31]'s nonblocking heuristic)
        self.gr_interval = gr_interval
        self.relabels_since_gr = 0
        self.gr_request = False
        self.gr_count = 0
        self.cond = threading.Condition()
        self.workers_active = 0
        self.workers_parked = 0

    # -- queue ops -----------------------------------------------------
    def enqueue(self, v: int) -> None:
        with self.qlock:
            if not self.in_queue[v]:
                self.in_queue[v] = 1
                self.queue.append(v)
                self.pending += 1

    def try_pop(self) -> int | None:
        with self.qlock:
            if self.queue:
                v = self.queue.popleft()
                self.in_queue[v] = 0
                return v
            return None

    def done_with(self, v: int) -> None:
        del v
        with self.qlock:
            self.pending -= 1

    def drained(self) -> bool:
        with self.qlock:
            return self.pending == 0

    # -- global relabel coordination ------------------------------------
    def note_relabel(self) -> None:
        """Count a relabel; raise the GR flag when the threshold passes."""
        if not self.gr_interval:
            return
        with self.qlock:
            self.relabels_since_gr += 1
            trigger = self.relabels_since_gr >= self.gr_interval
        if trigger and not self.gr_request:
            with self.cond:
                self.gr_request = True

    def park_for_global_relabel(self) -> None:
        """Park until the global relabel completes; the last worker to
        park performs it.  Exiting workers shrink ``workers_active`` and
        notify, so the barrier never waits for a thread that is gone."""
        with self.cond:
            self.workers_parked += 1
            while self.gr_request:
                if self.workers_parked == self.workers_active:
                    self.height = _exact_heights(self.g, self.s, self.t)
                    self.gr_count += 1
                    with self.qlock:
                        self.relabels_since_gr = 0
                    self.gr_request = False
                    self.cond.notify_all()
                    break
                self.cond.wait(timeout=0.05)
            self.workers_parked -= 1

    def worker_enter(self) -> None:
        with self.cond:
            self.workers_active += 1

    def worker_exit(self) -> None:
        with self.cond:
            self.workers_active -= 1
            self.cond.notify_all()


def _exact_heights(g: FlowNetwork, s: int, t: int) -> list[int]:
    """Residual BFS distances to t (n + dist-to-s for stranded vertices)."""
    n = g.n
    head, cap, flow, adj = g.arrays()
    INF = 2 * n
    height = [INF] * n
    height[t] = 0
    dq = deque([t])
    while dq:
        v = dq.popleft()
        hv1 = height[v] + 1
        for a in adj[v]:
            if cap[a ^ 1] - flow[a ^ 1] > 0:
                w = head[a]
                if height[w] > hv1:
                    height[w] = hv1
                    dq.append(w)
    height[s] = n
    # second pass only when some vertex cannot reach t (cf. PushRelabelState)
    if any(h >= INF for h in height):
        dist_s = [INF] * n
        dist_s[s] = 0
        dq = deque([s])
        while dq:
            v = dq.popleft()
            dv1 = dist_s[v] + 1
            for a in adj[v]:
                if cap[a ^ 1] - flow[a ^ 1] > 0:
                    w = head[a]
                    if dist_s[w] > dv1:
                        dist_s[w] = dv1
                        dq.append(w)
        for v in range(n):
            if v != s and height[v] >= INF:
                height[v] = min(n + dist_s[v], 2 * n)
    return height


def _worker(state: _SharedState, tid: int, stats: ParallelStats) -> None:
    """Hong & He discharge loop for one thread."""
    g, s, t = state.g, state.s, state.t
    head, cap, flow, adj = g.arrays()
    excess, vlocks = state.excess, state.vlocks
    two_n = 2 * state.n
    pushes = relabels = spins = 0

    state.worker_enter()
    while True:
        if state.gr_request:
            state.park_for_global_relabel()
        v = state.try_pop()
        if v is None:
            if state.drained():
                break
            spins += 1
            # brief backoff; another thread is mid-discharge and may refill
            time.sleep(1e-5)
            continue

        # discharge v until its excess is gone or it is stranded
        while True:
            if state.gr_request:
                # heights are about to change wholesale; requeue and park
                if excess[v] > 0:
                    state.enqueue(v)
                break
            height = state.height  # re-read: global relabel swaps the list
            ev = excess[v]
            if ev <= 0:
                break
            # find the lowest-height residual neighbour ([31] §3: push goes
            # to the lowest neighbour, relabel lifts just above it)
            best_arc = -1
            best_h = two_n + 1
            for a in adj[v]:
                if cap[a] - flow[a] > 0:
                    h = height[head[a]]
                    if h < best_h:
                        best_h = h
                        best_arc = a
            if best_arc < 0:
                break  # no residual arcs at all; cannot happen for preflows
            w = head[best_arc]
            if height[v] > best_h:
                # push min(excess, residual) under both endpoint locks,
                # re-validating inside the critical section (CAS emulation)
                lo, hi = (v, w) if v < w else (w, v)
                with vlocks[lo]:
                    with vlocks[hi]:
                        residual = cap[best_arc] - flow[best_arc]
                        ev = excess[v]
                        if (
                            residual > 0
                            and ev > 0
                            and height[v] > height[w]
                        ):
                            delta = ev if ev < residual else residual
                            flow[best_arc] += delta
                            flow[best_arc ^ 1] -= delta
                            excess[v] = ev - delta
                            excess[w] += delta
                            pushes += 1
                            if w != s and w != t and excess[w] > 0:
                                state.enqueue(w)
                        # else: a concurrent update invalidated the plan;
                        # loop re-reads and retries (the [31] retry path)
            else:
                if best_h >= two_n:
                    break  # stranded; cannot route anywhere
                with vlocks[v]:
                    # relabel only if heights did not move under us
                    if height[v] <= best_h:
                        height[v] = best_h + 1
                        relabels += 1
                state.note_relabel()
        state.done_with(v)
    state.worker_exit()

    stats.pushes_per_thread[tid] = pushes
    stats.relabels_per_thread[tid] = relabels
    stats.idle_spins_per_thread[tid] = spins


def parallel_push_relabel(
    g: FlowNetwork,
    s: int,
    t: int,
    *,
    num_threads: int = 2,
    warm_start: bool = False,
    global_relabel_interval: int | None = None,
) -> MaxFlowResult:
    """Maximum flow via asynchronous multithreaded push–relabel.

    Parameters mirror the sequential engines; ``num_threads=2`` matches the
    configuration of the paper's Figure 10.  ``global_relabel_interval``
    is the relabel count between global relabels (``None`` → ``max(n, 32)``,
    ``0`` disables).
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if not warm_start:
        g.reset_flow()
    if global_relabel_interval is None:
        global_relabel_interval = max(g.n, 32)

    state = _SharedState(g, s, t, global_relabel_interval)
    head, cap, flow, adj = g.arrays()

    # cancel preserved flow on arcs into the source (residual s->w arcs
    # break the height-validity invariant; cf. PushRelabelState.initialize)
    for b in adj[s]:
        if b % 2 == 1 and flow[b ^ 1] > 0:
            flow[b ^ 1] = 0
            flow[b] = 0

    # exact excesses from the preserved assignment (cf. PushRelabelState)
    for v in range(state.n):
        ev = 0
        for a in adj[v]:
            ev -= flow[a]
        state.excess[v] = ev

    # saturate source arcs with remaining slack (flow-conserving warm start)
    for a in adj[s]:
        if a % 2 == 1:
            continue
        delta = cap[a] - flow[a]
        if delta > 0:
            w = head[a]
            flow[a] += delta
            flow[a ^ 1] -= delta
            state.excess[w] += delta
    state.excess[s] = 0

    state.height = _exact_heights(g, s, t)
    for v in range(state.n):
        if v != s and v != t and state.excess[v] > 0:
            state.enqueue(v)

    stats = ParallelStats(
        num_threads=num_threads,
        pushes_per_thread=[0] * num_threads,
        relabels_per_thread=[0] * num_threads,
        idle_spins_per_thread=[0] * num_threads,
    )

    if num_threads == 1:
        _worker(state, 0, stats)
    else:
        # thread 0 runs on the calling thread: halves the per-probe
        # spawn/join cost, which matters for warm-started integrated
        # solves (each solve issues ~log|Q| short probes)
        threads = [
            threading.Thread(
                target=_worker, args=(state, tid, stats), daemon=True
            )
            for tid in range(1, num_threads)
        ]
        for th in threads:
            th.start()
        _worker(state, 0, stats)
        for th in threads:
            th.join()

    stats.global_relabels = state.gr_count
    return MaxFlowResult(
        value=state.excess[t],
        pushes=stats.total_pushes,
        relabels=stats.total_relabels,
        extra={"parallel_stats": stats},
    )


class ParallelPushRelabelEngine(MaxFlowEngine):
    """Registry wrapper around :func:`parallel_push_relabel`."""

    name = "parallel-push-relabel"

    def __init__(
        self,
        *,
        num_threads: int = 2,
        global_relabel_interval: int | None = None,
    ) -> None:
        self.num_threads = num_threads
        self.global_relabel_interval = global_relabel_interval

    def solve(
        self, g: FlowNetwork, s: int, t: int, *, warm_start: bool = False
    ) -> MaxFlowResult:
        return parallel_push_relabel(
            g,
            s,
            t,
            num_threads=self.num_threads,
            warm_start=warm_start,
            global_relabel_interval=self.global_relabel_interval,
        )
