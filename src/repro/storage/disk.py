"""Disk specifications — the paper's Table III.

+-----------+-----------+------+------+-----------+
| Producer  | Model     | Type | RPM  | Time (ms) |
+===========+===========+======+======+===========+
| Seagate   | Barracuda | HDD  | 7.2K | 13.2      |
| WD        | Raptor    | HDD  | 10K  | 8.3       |
| Seagate   | Cheetah   | HDD  | 15K  | 6.1       |
| OCZ       | Vertex    | SSD  | —    | 0.5       |
| Intel     | X25-E     | SSD  | —    | 0.2       |
+-----------+-----------+------+------+-----------+

"Time" is the average access time to read one block (spin-up + seek +
rotational latency + transfer for HDDs; transfer only for SSDs), i.e. the
scheduler's ``C_j``.  Experiments draw disks from the groups ``hdd``,
``ssd``, ``ssd+hdd`` or use ``cheetah`` homogeneously (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageConfigError

__all__ = ["DiskSpec", "Disk", "DISK_CATALOG", "DISK_GROUPS", "pick_disks"]


@dataclass(frozen=True)
class DiskSpec:
    """One row of Table III."""

    name: str
    producer: str
    model: str
    kind: str  # "HDD" or "SSD"
    rpm: int | None
    block_time_ms: float

    def __post_init__(self) -> None:
        if self.block_time_ms <= 0:
            raise StorageConfigError(
                f"block time must be positive, got {self.block_time_ms}"
            )
        if self.kind not in ("HDD", "SSD"):
            raise StorageConfigError(f"unknown disk kind {self.kind!r}")


#: Table III, keyed by short name.
DISK_CATALOG: dict[str, DiskSpec] = {
    "barracuda": DiskSpec("barracuda", "Seagate", "Barracuda", "HDD", 7200, 13.2),
    "raptor": DiskSpec("raptor", "WD", "Raptor", "HDD", 10000, 8.3),
    "cheetah": DiskSpec("cheetah", "Seagate", "Cheetah", "HDD", 15000, 6.1),
    "vertex": DiskSpec("vertex", "OCZ", "Vertex", "SSD", None, 0.5),
    "x25e": DiskSpec("x25e", "Intel", "X25-E", "SSD", None, 0.2),
}

#: Table IV's disk-group notation ("ssd", "hdd", "ssd+hdd", "cheetah", ...)
DISK_GROUPS: dict[str, tuple[str, ...]] = {
    "hdd": ("barracuda", "raptor", "cheetah"),
    "ssd": ("vertex", "x25e"),
    "ssd+hdd": ("barracuda", "raptor", "cheetah", "vertex", "x25e"),
    **{name: (name,) for name in DISK_CATALOG},
}


@dataclass
class Disk:
    """A physical disk instance inside a storage system.

    Attributes
    ----------
    disk_id:
        Global id (matches the allocation's disk ids).
    spec:
        Hardware spec; ``C_j = spec.block_time_ms``.
    initial_load_ms:
        ``X_j`` — time until this disk finishes its current work (0 when
        idle).  Mutable: the online replay updates it between queries.
    """

    disk_id: int
    spec: DiskSpec
    initial_load_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.disk_id < 0:
            raise StorageConfigError(f"disk id must be >= 0, got {self.disk_id}")
        if self.initial_load_ms < 0:
            raise StorageConfigError(
                f"initial load must be >= 0, got {self.initial_load_ms}"
            )

    @property
    def block_time_ms(self) -> float:
        """``C_j`` — average cost of retrieving one bucket."""
        return self.spec.block_time_ms


def pick_disks(
    group: str, count: int, rng: np.random.Generator | None = None
) -> list[DiskSpec]:
    """Draw ``count`` disk specs from a Table IV group.

    Singleton groups (e.g. ``"cheetah"``) are deterministic; mixed groups
    draw uniformly with replacement, as the paper's "disks are chosen
    randomly among the disk group" (§VI-E).
    """
    try:
        names = DISK_GROUPS[group]
    except KeyError:
        raise StorageConfigError(
            f"unknown disk group {group!r}; choose from {sorted(DISK_GROUPS)}"
        ) from None
    if count < 0:
        raise StorageConfigError(f"count must be >= 0, got {count}")
    if len(names) == 1:
        return [DISK_CATALOG[names[0]]] * count
    if rng is None:
        raise StorageConfigError(f"group {group!r} is random; an rng is required")
    chosen = rng.choice(len(names), size=count)
    return [DISK_CATALOG[names[int(k)]] for k in chosen]
