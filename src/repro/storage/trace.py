"""Synthetic arrival traces for online replay.

The paper's model derives each disk's initial load ``X_j`` from "how the
previous queries are scheduled" (§II-A) — which presupposes a query
*stream*.  Real multi-tenant traces are proprietary, so this module
generates the standard synthetic equivalents (substitution recorded in
DESIGN.md):

* :func:`poisson_trace` — memoryless arrivals at a target rate, query
  sizes/types from the paper's load model;
* :func:`session_trace` — bursts of spatially correlated range queries
  (pan/zoom sessions), the access pattern the paper's GIS motivation
  describes.

Both return ``(arrival_ms, bucket_coords)`` pairs ready for
:class:`repro.storage.replay.OnlineReplay`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

# NOTE: repro.workloads imports are deferred to call time — the workloads
# package imports repro.core which imports repro.storage, and a module-
# level import here would close that cycle.

__all__ = ["TraceEvent", "poisson_trace", "session_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One query arrival."""

    arrival_ms: float
    buckets: tuple[tuple[int, int], ...]

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)


def poisson_trace(
    N: int,
    n_queries: int,
    mean_interarrival_ms: float,
    rng: np.random.Generator,
    *,
    qtype: str = "range",
    load: int = 3,
) -> list[TraceEvent]:
    """Poisson arrivals with load-model query sizes.

    ``mean_interarrival_ms`` tunes contention: values below the system's
    mean service time build up initial loads, values far above it keep
    disks idle between queries.
    """
    if n_queries < 0:
        raise WorkloadError(f"n_queries must be >= 0, got {n_queries}")
    if mean_interarrival_ms <= 0:
        raise WorkloadError(
            f"mean interarrival must be positive, got {mean_interarrival_ms}"
        )
    from repro.workloads.loads import sample_query

    clock = 0.0
    events = []
    for _ in range(n_queries):
        clock += float(rng.exponential(mean_interarrival_ms))
        query = sample_query(load, qtype, N, rng)
        events.append(TraceEvent(clock, tuple(query.buckets())))
    return events


def session_trace(
    N: int,
    n_sessions: int,
    queries_per_session: int,
    rng: np.random.Generator,
    *,
    think_time_ms: float = 50.0,
    session_gap_ms: float = 500.0,
    viewport: tuple[int, int] = (2, 3),
) -> list[TraceEvent]:
    """Pan/zoom sessions: spatially correlated range-query bursts.

    Each session starts at a random tile, then pans one step per query
    (occasionally zooming out to a larger viewport), with short think
    times inside a session and longer gaps between sessions.
    """
    if min(viewport) < 1 or max(viewport) > N:
        raise WorkloadError(f"viewport {viewport} invalid for grid {N}")
    from repro.workloads.queries import RangeQuery

    events = []
    clock = 0.0
    r0, c0 = viewport
    for _ in range(n_sessions):
        clock += float(rng.exponential(session_gap_ms))
        i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
        for step in range(queries_per_session):
            if step > 0:
                clock += float(rng.exponential(think_time_ms))
            if step % 5 == 4:  # zoom out
                r = min(N, r0 * 2)
                c = min(N, c0 * 2)
            else:
                r, c = r0, c0
            i = (i + int(rng.integers(-1, 2))) % N
            j = (j + int(rng.integers(-1, 2))) % N
            q = RangeQuery(i, j, r, c, N)
            events.append(TraceEvent(clock, tuple(q.buckets())))
    return events
