"""Storage model: disks, sites, systems, load generators, simulator.

This package is the paper's hardware substrate (§II-A, §VI-D/E) in
software.  The scheduler only ever consumes three numbers per disk —
``C_j`` (average per-block retrieval cost), ``D_j`` (network delay to the
disk's site) and ``X_j`` (time until the disk is idle) — exactly the
reduction Table I makes; the event-driven simulator
(:mod:`repro.storage.simulator`) closes the loop by re-deriving response
times from per-block service events, and :mod:`repro.storage.replay`
evolves ``X_j`` across a query stream the way a live array would.
"""

from repro.storage.disk import (
    DISK_CATALOG,
    DISK_GROUPS,
    Disk,
    DiskSpec,
)
from repro.storage.diskmodel import HddModel, SsdModel, fit_seek_time
from repro.storage.loadgen import RandomStepDistribution, parse_r_notation
from repro.storage.replay import OnlineReplay, ReplayRecord
from repro.storage.simulator import DiskEvent, SimulationResult, simulate_schedule
from repro.storage.site import Site
from repro.storage.system import StorageSystem
from repro.storage.trace import TraceEvent, poisson_trace, session_trace

__all__ = [
    "DISK_CATALOG",
    "DISK_GROUPS",
    "Disk",
    "DiskSpec",
    "HddModel",
    "SsdModel",
    "fit_seek_time",
    "RandomStepDistribution",
    "parse_r_notation",
    "OnlineReplay",
    "ReplayRecord",
    "DiskEvent",
    "SimulationResult",
    "simulate_schedule",
    "Site",
    "StorageSystem",
    "TraceEvent",
    "poisson_trace",
    "session_trace",
]
