"""Online workload replay: evolving initial loads across a query stream.

The paper notes that "initial loads of the disks from the previous queries
can also be calculated easily since it is based on how the previous
queries are scheduled" (§II-A).  :class:`OnlineReplay` operationalizes
that: queries arrive over time; before each is scheduled, every disk's
``X_j`` is recomputed from its outstanding work; after scheduling, the
chosen disks' busy horizons advance by their assigned buckets.

The scheduler itself is injected as a callable so this module stays
independent of :mod:`repro.core` (which imports storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping

from repro.errors import StorageConfigError
from repro.storage.system import StorageSystem

__all__ = ["ReplayRecord", "OnlineReplay"]

#: scheduler signature: (system, buckets) -> assignment {bucket: disk_id}
Scheduler = Callable[[StorageSystem, list], Mapping[Hashable, int]]


@dataclass(frozen=True)
class ReplayRecord:
    """Outcome of one query in the stream."""

    arrival_ms: float
    num_buckets: int
    response_time_ms: float
    assignment: Mapping[Hashable, int]
    loads_before: tuple[float, ...]


class OnlineReplay:
    """Drive a scheduler through a timed stream of queries.

    Parameters
    ----------
    system:
        The storage system; its disks' ``initial_load_ms`` are mutated as
        the replay progresses (take a copy if you need the original).
    scheduler:
        Callable mapping ``(system, buckets)`` to a bucket→disk assignment.
        Typically a thin wrapper over :func:`repro.core.solve`.
    """

    def __init__(self, system: StorageSystem, scheduler: Scheduler) -> None:
        self.system = system
        self.scheduler = scheduler
        #: absolute time at which each disk becomes idle
        self._busy_until = [0.0] * system.num_disks
        self.records: list[ReplayRecord] = []
        self._clock = 0.0

    @property
    def clock_ms(self) -> float:
        return self._clock

    def submit(self, arrival_ms: float, buckets: list) -> ReplayRecord:
        """Schedule one query arriving at ``arrival_ms``.

        Arrivals must be non-decreasing.  Disk loads are refreshed to
        ``max(0, busy_until - arrival)`` before scheduling (Table I's
        ``X_j`` definition), and the assigned disks' busy horizons advance
        by ``k_j * C_j`` afterwards.
        """
        if arrival_ms < self._clock:
            raise StorageConfigError(
                f"arrivals must be non-decreasing: {arrival_ms} < {self._clock}"
            )
        self._clock = arrival_ms
        loads = tuple(
            max(0.0, until - arrival_ms) for until in self._busy_until
        )
        self.system.set_loads(loads)

        assignment = self.scheduler(self.system, buckets)
        missing = [b for b in buckets if b not in assignment]
        if missing:
            raise StorageConfigError(
                f"scheduler left {len(missing)} bucket(s) unassigned"
            )

        counts = [0] * self.system.num_disks
        for disk_id in assignment.values():
            counts[disk_id] += 1
        response = 0.0
        for disk_id, k in enumerate(counts):
            if k == 0:
                continue
            finish = self.system.finish_time(disk_id, k)
            response = max(response, finish)
            # disk-local occupancy: backlog + new service (network transit
            # does not hold the disk)
            disk = self.system.disk(disk_id)
            self._busy_until[disk_id] = (
                arrival_ms + loads[disk_id] + k * disk.block_time_ms
            )

        record = ReplayRecord(
            arrival_ms, len(buckets), response, dict(assignment), loads
        )
        self.records.append(record)
        return record

    def run(self, stream: Iterable) -> list[ReplayRecord]:
        """Submit an arrival stream in order.

        Accepts ``(arrival_ms, buckets)`` pairs or
        :class:`~repro.storage.trace.TraceEvent` objects — the latter is
        what :func:`~repro.storage.trace.poisson_trace` /
        :func:`~repro.storage.trace.session_trace` and
        :meth:`~repro.workloads.mixed.WorkloadMix.stream` produce, so
        any trace source drives a replay (or the online scheduler)
        unmodified.
        """
        records = []
        for item in stream:
            if hasattr(item, "arrival_ms"):
                records.append(self.submit(item.arrival_ms, list(item.buckets)))
            else:
                arrival, buckets = item
                records.append(self.submit(arrival, buckets))
        return records

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    def mean_response_ms(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.response_time_ms for r in self.records) / len(self.records)

    def max_response_ms(self) -> float:
        return max((r.response_time_ms for r in self.records), default=0.0)
