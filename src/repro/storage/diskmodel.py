"""Component-level disk access-time model.

Table III defines the scheduler's ``C_j`` as the *average access time to
read a block*: "the summation of spin-up time, seek time, rotational
latency and transfer time for HDDs; just transfer time for SSDs."  This
module implements that decomposition so users can model disks that are
not in the catalogue (the paper's motivating deployments keep buying new
arrays), and so tests can sanity-check the catalogue numbers against
physics.

The model (standard first-order disk arithmetic):

* rotational latency  = half a revolution = ``30000 / rpm`` ms;
* seek time           = supplied average seek (track-to-track weighted);
* transfer time       = ``block_kb / sequential_mb_s`` scaled to ms;
* spin-up amortized   = optional per-access share for drives that park.

``fit_block_time`` inverts the model: given a measured block time (e.g. a
Table III row) and the mechanical parameters, it returns the implied
average seek — a consistency check used in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageConfigError
from repro.storage.disk import DiskSpec

__all__ = ["HddModel", "SsdModel", "fit_seek_time"]


@dataclass(frozen=True)
class HddModel:
    """Mechanical disk parameters → average block access time."""

    rpm: int
    avg_seek_ms: float
    sequential_mb_s: float
    block_kb: float = 64.0
    spinup_share_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise StorageConfigError(f"rpm must be positive, got {self.rpm}")
        if self.avg_seek_ms < 0:
            raise StorageConfigError("seek time must be >= 0")
        if self.sequential_mb_s <= 0:
            raise StorageConfigError("transfer rate must be positive")
        if self.block_kb <= 0:
            raise StorageConfigError("block size must be positive")

    @property
    def rotational_latency_ms(self) -> float:
        """Half a revolution: ``(60_000 / rpm) / 2``."""
        return 30000.0 / self.rpm

    @property
    def transfer_ms(self) -> float:
        return self.block_kb / 1024.0 / self.sequential_mb_s * 1000.0

    @property
    def block_time_ms(self) -> float:
        """Table III's "Time (ms)": spin-up + seek + rotation + transfer."""
        return (
            self.spinup_share_ms
            + self.avg_seek_ms
            + self.rotational_latency_ms
            + self.transfer_ms
        )

    def to_spec(self, name: str, producer: str = "custom", model: str = "custom") -> DiskSpec:
        """Materialize a catalogue entry from the model."""
        return DiskSpec(name, producer, model, "HDD", self.rpm, round(self.block_time_ms, 3))


@dataclass(frozen=True)
class SsdModel:
    """Flash parameters → average block access time (transfer only)."""

    sequential_mb_s: float
    block_kb: float = 64.0
    controller_overhead_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.sequential_mb_s <= 0:
            raise StorageConfigError("transfer rate must be positive")
        if self.block_kb <= 0:
            raise StorageConfigError("block size must be positive")
        if self.controller_overhead_ms < 0:
            raise StorageConfigError("controller overhead must be >= 0")

    @property
    def block_time_ms(self) -> float:
        """Table III's SSD rule: "just transfer time"."""
        return (
            self.controller_overhead_ms
            + self.block_kb / 1024.0 / self.sequential_mb_s * 1000.0
        )

    def to_spec(self, name: str, producer: str = "custom", model: str = "custom") -> DiskSpec:
        return DiskSpec(name, producer, model, "SSD", None, round(self.block_time_ms, 3))


def fit_seek_time(
    measured_block_ms: float,
    rpm: int,
    sequential_mb_s: float,
    *,
    block_kb: float = 64.0,
    spinup_share_ms: float = 0.0,
) -> float:
    """The average seek implied by a measured block time.

    Inverts :class:`HddModel`; raises if the measurement is below the
    mechanical floor (rotation + transfer), which would mean the rpm or
    transfer-rate assumptions are wrong.
    """
    probe = HddModel(rpm, 0.0, sequential_mb_s, block_kb, spinup_share_ms)
    floor = probe.block_time_ms
    if measured_block_ms < floor - 1e-9:
        raise StorageConfigError(
            f"measured {measured_block_ms} ms below mechanical floor "
            f"{floor:.3f} ms (rotation + transfer at {rpm} rpm)"
        )
    return measured_block_ms - floor
