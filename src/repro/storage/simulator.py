"""Event-driven retrieval simulator.

The retrieval core *predicts* a query's response time analytically as
``max_j (D_j + X_j + k_j * C_j)``.  This module re-derives it by actually
playing the schedule out: each disk receives its requests after the site's
network delay, drains its pre-existing backlog (``X_j``), then serves its
assigned buckets back to back at ``C_j`` per bucket.  Tests assert the
simulated response time equals the analytic one bucket-for-bucket — the
model-validation loop the paper's authors get implicitly from measuring
real arrays.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.errors import InfeasibleScheduleError
from repro.storage.system import StorageSystem

__all__ = ["DiskEvent", "SimulationResult", "simulate_schedule"]


@dataclass(frozen=True)
class DiskEvent:
    """One bucket retrieval on one disk."""

    disk_id: int
    bucket: Hashable
    start_ms: float
    end_ms: float

    @property
    def service_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class SimulationResult:
    """Timeline produced by :func:`simulate_schedule`."""

    response_time_ms: float
    events: list[DiskEvent] = field(default_factory=list)
    finish_by_disk: dict[int, float] = field(default_factory=dict)

    @property
    def buckets_by_disk(self) -> dict[int, int]:
        counts: dict[int, int] = defaultdict(int)
        for ev in self.events:
            counts[ev.disk_id] += 1
        return dict(counts)

    def bottleneck_disk(self) -> int | None:
        """Disk whose finish time determines the response time."""
        if not self.finish_by_disk:
            return None
        return max(self.finish_by_disk, key=self.finish_by_disk.__getitem__)

    def utilization(self, disk_id: int) -> float:
        """Fraction of the response window the disk spent serving buckets."""
        if self.response_time_ms <= 0:
            return 0.0
        busy = sum(ev.service_ms for ev in self.events if ev.disk_id == disk_id)
        return busy / self.response_time_ms


def simulate_schedule(
    system: StorageSystem, assignment: Mapping[Hashable, int]
) -> SimulationResult:
    """Play out ``assignment`` (bucket → disk id) on ``system``.

    Per disk: the request batch lands after the site delay ``D_j``, queues
    behind the initial load ``X_j``, then buckets are served sequentially
    at ``C_j`` each.  Response time is the latest finishing disk.
    """
    by_disk: dict[int, list[Hashable]] = defaultdict(list)
    for bucket, disk_id in assignment.items():
        if not 0 <= disk_id < system.num_disks:
            raise InfeasibleScheduleError(
                f"bucket {bucket!r} assigned to unknown disk {disk_id}"
            )
        by_disk[disk_id].append(bucket)

    events: list[DiskEvent] = []
    finish_by_disk: dict[int, float] = {}
    for disk_id, buckets in sorted(by_disk.items()):
        disk = system.disk(disk_id)
        site = system.site_of(disk_id)
        clock = site.delay_ms + disk.initial_load_ms
        for bucket in buckets:
            start = clock
            clock += disk.block_time_ms
            events.append(DiskEvent(disk_id, bucket, start, clock))
        finish_by_disk[disk_id] = clock

    response = max(finish_by_disk.values(), default=0.0)
    return SimulationResult(response, events, finish_by_disk)
