"""Sites: groups of disks behind a common network delay.

The paper's model (§II-A) connects geographically distant storage arrays
over a dedicated network whose SLA makes the per-site round-trip delay
``D_j`` predictable (the XO Communications example: 65 ms edge-to-edge
guarantees).  Every disk of a site shares the site's delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageConfigError
from repro.storage.disk import Disk

__all__ = ["Site"]


@dataclass
class Site:
    """A storage array at one network location.

    Attributes
    ----------
    site_id:
        Index of the site within the system.
    delay_ms:
        ``D_j`` for every disk at the site (network round-trip estimate).
    disks:
        The site's disks, with globally unique ids.
    """

    site_id: int
    delay_ms: float
    disks: list[Disk] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.site_id < 0:
            raise StorageConfigError(f"site id must be >= 0, got {self.site_id}")
        if self.delay_ms < 0:
            raise StorageConfigError(f"delay must be >= 0, got {self.delay_ms}")

    @property
    def num_disks(self) -> int:
        return len(self.disks)

    def disk_ids(self) -> list[int]:
        return [d.disk_id for d in self.disks]
