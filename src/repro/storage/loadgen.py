"""Random parameter generators — the paper's ``R(lo, hi, step)`` notation.

Table IV writes delays and initial loads as ``R(2,10,2)``: "a number among
the set 2, 4, 6, 8, and 10 is chosen randomly" (§VI-E).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageConfigError

__all__ = ["RandomStepDistribution", "parse_r_notation"]


@dataclass(frozen=True)
class RandomStepDistribution:
    """Uniform choice from ``{lo, lo+step, ..., hi}``."""

    lo: float
    hi: float
    step: float

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise StorageConfigError(f"step must be positive, got {self.step}")
        if self.hi < self.lo:
            raise StorageConfigError(f"hi {self.hi} < lo {self.lo}")

    @property
    def support(self) -> np.ndarray:
        """The value set, inclusive of both ends."""
        count = int(round((self.hi - self.lo) / self.step)) + 1
        return self.lo + self.step * np.arange(count)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one value (``size=None``) or an array of ``size`` values."""
        values = self.support
        idx = rng.integers(0, len(values), size=size)
        return values[idx]

    def __str__(self) -> str:
        def fmt(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else str(x)

        if self.lo == self.hi:
            return fmt(self.lo)  # Table IV prints constants bare ("0")
        return f"R({fmt(self.lo)},{fmt(self.hi)},{fmt(self.step)})"


_R_PATTERN = re.compile(
    r"^\s*R\(\s*([0-9.]+)\s*,\s*([0-9.]+)\s*,\s*([0-9.]+)\s*\)\s*$"
)


def parse_r_notation(text: str) -> RandomStepDistribution:
    """Parse ``"R(2,10,2)"`` into a :class:`RandomStepDistribution`.

    A bare number parses as the degenerate distribution at that value, so
    Table IV's ``0`` entries go through the same code path.
    """
    m = _R_PATTERN.match(text)
    if m:
        lo, hi, step = (float(g) for g in m.groups())
        return RandomStepDistribution(lo, hi, step)
    try:
        value = float(text)
    except ValueError:
        raise StorageConfigError(f"cannot parse R-notation {text!r}") from None
    return RandomStepDistribution(value, value, 1.0)
