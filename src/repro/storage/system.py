"""The storage system: sites + disks, exposing the scheduler's (C, D, X).

:class:`StorageSystem` is the single object the retrieval core consumes.
It validates that global disk ids are dense and unique, and exposes the
three per-disk parameter vectors of Table I as NumPy arrays:

* ``costs()``   → ``C_j``: average per-bucket retrieval cost,
* ``delays()``  → ``D_j``: network delay of the disk's site,
* ``loads()``   → ``X_j``: time until the disk is idle.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import StorageConfigError
from repro.storage.disk import DISK_CATALOG, Disk, DiskSpec, pick_disks
from repro.storage.site import Site

__all__ = ["StorageSystem"]


class StorageSystem:
    """A multi-site collection of disks with scheduling parameters.

    Parameters
    ----------
    sites:
        Sites whose disks, concatenated, carry global ids ``0..N_total-1``
        in site order.  (The paper's "disks 0-6 at site 1, 7-13 at
        site 2" convention.)
    """

    def __init__(self, sites: Sequence[Site]) -> None:
        if not sites:
            raise StorageConfigError("a storage system needs at least one site")
        self.sites = list(sites)
        self._disks: list[Disk] = []
        self._site_of: list[int] = []
        expected = 0
        for site in self.sites:
            for disk in site.disks:
                if disk.disk_id != expected:
                    raise StorageConfigError(
                        f"disk ids must be dense in site order: expected "
                        f"{expected}, got {disk.disk_id} at site {site.site_id}"
                    )
                self._disks.append(disk)
                self._site_of.append(site.site_id)
                expected += 1
        if expected == 0:
            raise StorageConfigError("a storage system needs at least one disk")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        num_disks: int,
        spec: DiskSpec | str = "cheetah",
        *,
        num_sites: int = 1,
        delay_ms: float | Sequence[float] = 0.0,
    ) -> "StorageSystem":
        """Identical disks split evenly across ``num_sites`` sites."""
        if isinstance(spec, str):
            spec = DISK_CATALOG[spec]
        if num_disks % max(num_sites, 1) != 0:
            raise StorageConfigError(
                f"{num_disks} disks do not split evenly over {num_sites} sites"
            )
        per_site = num_disks // num_sites
        delays = (
            [float(delay_ms)] * num_sites
            if isinstance(delay_ms, (int, float))
            else [float(d) for d in delay_ms]
        )
        if len(delays) != num_sites:
            raise StorageConfigError(
                f"need {num_sites} delays, got {len(delays)}"
            )
        sites = []
        next_id = 0
        for k in range(num_sites):
            disks = [Disk(next_id + i, spec) for i in range(per_site)]
            next_id += per_site
            sites.append(Site(k, delays[k], disks))
        return cls(sites)

    @classmethod
    def from_groups(
        cls,
        site_groups: Sequence[str],
        disks_per_site: int,
        *,
        delays_ms: Sequence[float] | None = None,
        rng: np.random.Generator | None = None,
    ) -> "StorageSystem":
        """Build a system from Table IV disk-group names, one per site."""
        delays = list(delays_ms) if delays_ms is not None else [0.0] * len(site_groups)
        if len(delays) != len(site_groups):
            raise StorageConfigError("one delay per site required")
        sites = []
        next_id = 0
        for k, group in enumerate(site_groups):
            specs = pick_disks(group, disks_per_site, rng)
            disks = [Disk(next_id + i, specs[i]) for i in range(disks_per_site)]
            next_id += disks_per_site
            sites.append(Site(k, delays[k], disks))
        return cls(sites)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_disks(self) -> int:
        return len(self._disks)

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def disks(self) -> list[Disk]:
        return self._disks

    def disk(self, disk_id: int) -> Disk:
        if not 0 <= disk_id < len(self._disks):
            raise StorageConfigError(
                f"disk {disk_id} out of range [0, {self.num_disks})"
            )
        return self._disks[disk_id]

    def site_of(self, disk_id: int) -> Site:
        """The site owning ``disk_id``."""
        self.disk(disk_id)
        return self.sites[self._site_of[disk_id]]

    def costs(self) -> np.ndarray:
        """``C_j`` vector (ms per bucket)."""
        return np.array([d.block_time_ms for d in self._disks], dtype=float)

    def delays(self) -> np.ndarray:
        """``D_j`` vector (ms), one entry per disk (its site's delay)."""
        return np.array(
            [self.sites[self._site_of[i]].delay_ms for i in range(self.num_disks)],
            dtype=float,
        )

    def loads(self) -> np.ndarray:
        """``X_j`` vector (ms)."""
        return np.array([d.initial_load_ms for d in self._disks], dtype=float)

    def set_loads(self, loads: Iterable[float]) -> None:
        """Overwrite every disk's ``X_j`` (validated non-negative)."""
        values = [float(x) for x in loads]
        if len(values) != self.num_disks:
            raise StorageConfigError(
                f"need {self.num_disks} loads, got {len(values)}"
            )
        for disk, x in zip(self._disks, values):
            if x < 0:
                raise StorageConfigError(f"negative load {x} for disk {disk.disk_id}")
            disk.initial_load_ms = x

    def finish_time(self, disk_id: int, buckets: int) -> float:
        """``D_j + X_j + k * C_j`` — when disk ``j`` finishes ``k`` buckets."""
        if buckets < 0:
            raise StorageConfigError(f"bucket count must be >= 0, got {buckets}")
        if buckets == 0:
            return 0.0
        d = self.disk(disk_id)
        site = self.sites[self._site_of[disk_id]]
        return site.delay_ms + d.initial_load_ms + buckets * d.block_time_ms

    def capacity_at(self, disk_id: int, deadline_ms: float) -> int:
        """Buckets disk ``j`` can serve by ``deadline``:
        ``floor((t - D_j - X_j) / C_j)``, clamped at 0 (Algorithm 6 line 15).

        This is the single float→int boundary of the flow stack, and it is
        exact *by construction*: instead of an epsilon fudge on the float
        division, the initial guess is corrected against
        :meth:`finish_time` until ``finish_time(j, k) <= t <
        finish_time(j, k+1)``.  That makes ``capacity_at`` the exact
        inverse of ``finish_time`` — a deadline landing precisely on
        ``D_j + X_j + k*C_j`` admits exactly ``k`` buckets, never ``k-1``
        or ``k+1`` through rounding drift.
        """
        d = self.disk(disk_id)
        site = self.sites[self._site_of[disk_id]]
        budget = deadline_ms - site.delay_ms - d.initial_load_ms
        if budget <= 0:
            return 0
        k = int(budget // d.block_time_ms)
        # fixups are O(1): float division is off by at most one ulp-step
        while self.finish_time(disk_id, k + 1) <= deadline_ms:
            k += 1
        while k > 0 and self.finish_time(disk_id, k) > deadline_ms:
            k -= 1
        return k

    def capacities_at(self, deadline_ms: float) -> list[int]:
        """All disks' :meth:`capacity_at` in one pass.

        The batch form of the per-probe rescale: one call produces the
        full disk→sink capacity vector that
        :meth:`~repro.core.network.RetrievalNetwork.set_deadline_capacities`
        writes with a single strided slice assignment.  Bit-identical to
        ``[capacity_at(j, t) for j in range(num_disks)]`` — the
        arithmetic below repeats :meth:`capacity_at` and
        :meth:`finish_time` expression-for-expression so float evaluation
        order (and therefore the exact-inverse guarantee) is unchanged —
        but without the per-disk bounds checks and method dispatch.
        """
        sites = self.sites
        site_of = self._site_of
        out: list[int] = []
        for j, d in enumerate(self._disks):
            delay = sites[site_of[j]].delay_ms
            load = d.initial_load_ms
            budget = deadline_ms - delay - load
            if budget <= 0:
                out.append(0)
                continue
            c = d.block_time_ms
            k = int(budget // c)
            # same O(1) fixups as capacity_at, against the same
            # finish_time expression (delay + load + k * c)
            while delay + load + (k + 1) * c <= deadline_ms:
                k += 1
            while k > 0 and delay + load + k * c > deadline_ms:
                k -= 1
            out.append(k)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageSystem({self.num_sites} sites, {self.num_disks} disks)"
        )
