"""Stateful scheduling services over the paper's solvers.

``repro.service`` was a single module in PR 1; it is now a package, but
the public import surface is unchanged and extended::

    from repro.service import (
        SchedulerService,          # as before
        ServiceRecord,             # as before (+ query/cache_hit fields)
        ServiceStats,              # as before (+ p50/p95, cache, batches)
        ServiceConfig,             # scheduling policy as a value
        ShardedSchedulerService,   # N services over disjoint disk groups
        NetworkCache,              # warm-start network cache
    )
"""

from repro.service.batching import BatchAdmission
from repro.service.cache import CacheEntry, NetworkCache
from repro.service.config import ServiceConfig, perf_ms
from repro.service.scheduler import SchedulerService
from repro.service.sharded import ShardedSchedulerService, merged_quantile
from repro.service.stats import ServiceRecord, ServiceStats

__all__ = [
    "BatchAdmission",
    "CacheEntry",
    "NetworkCache",
    "SchedulerService",
    "ServiceConfig",
    "ServiceRecord",
    "ServiceStats",
    "ShardedSchedulerService",
    "merged_quantile",
    "perf_ms",
]
