"""The stateful retrieval-scheduler service (concurrent pipeline).

Everything a storage frontend needs behind one object: hold the system
and placement, accept queries (thread-safely), keep per-disk busy
horizons up to date (Table I's ``X_j``), route around failed disks, and
expose running statistics.  This is the "adoptable" packaging of the
paper's algorithm — the piece a downstream array firmware or volume
manager would embed.

The hot path is a pipeline, not a critical section:

1. **Admission (lock-free).**  Problem construction — coordinate
   normalisation, replica lookup, degraded filtering — runs outside the
   solve lock; only load-refresh, solve and horizon-advance are
   serialized.
2. **Warm-start cache.**  Queries with a previously seen replica-set
   signature reuse the cached :class:`~repro.core.network.RetrievalNetwork`
   topology and the conserved flow of the last solve (clamped to the new
   capacities) — Algorithm 6's flow conservation extended across solves.
3. **Batched admission (optional).**  With ``batch_window_ms > 0``,
   concurrent submits coalesce into one joint ``solve_batch`` schedule
   (see :mod:`repro.service.batching`).

>>> svc = SchedulerService(system, placement, config=ServiceConfig())
>>> record = svc.submit([(0, 0), (0, 1)])       # coords on the grid
>>> record = svc.submit(RangeQuery(0, 0, 2, 2, N))   # or query objects
>>> svc.mark_failed([3])                         # disk 3 died
>>> svc.stats().p95_response_ms
"""

from __future__ import annotations

import threading
import warnings
from typing import Any, Sequence

from repro.core.api import SOLVERS, solve
from repro.core.batch import BatchSchedule, merge_problems
from repro.core.degraded import degrade_problem
from repro.core.network import RetrievalNetwork
from repro.core.problem import RetrievalProblem
from repro.decluster.multisite import MultiSitePlacement
from repro.errors import PredictedOverloadError, StorageConfigError
from repro.obs.registry import MetricsRegistry
from repro.service.batching import BatchAdmission, _PendingQuery
from repro.service.cache import NetworkCache
from repro.service.config import ServiceConfig
from repro.service.stats import ServiceRecord, ServiceStats
from repro.storage.system import StorageSystem
from repro.workloads.queries import ArbitraryQuery, RangeQuery

#: anything submit() accepts: a bucket-coordinate sequence or a query object
QueryLike = Sequence[tuple[int, int]] | RangeQuery | ArbitraryQuery

__all__ = ["SchedulerService"]

_UNSET = object()

#: batch-size histogram edges (queries per admitted batch)
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)

#: module-level "warn once" latch for the legacy-kwarg shim
_legacy_kwargs_warned = False


def _warn_legacy_kwargs() -> None:
    global _legacy_kwargs_warned
    if not _legacy_kwargs_warned:
        _legacy_kwargs_warned = True
        warnings.warn(
            "SchedulerService(..., solver=/time_fn=/registry=/**solver_kwargs)"
            " is deprecated; pass config=ServiceConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )


class SchedulerService:
    """Thread-safe optimal-response-time scheduler over one deployment.

    Parameters
    ----------
    system, placement:
        The hardware and the replicated allocation it hosts.
    config:
        A :class:`~repro.service.ServiceConfig` value holding the
        scheduling policy (solver, clock, metrics sink, batching window,
        cache size).  Omitted → defaults.

    The pre-config keyword arguments (``solver=``, ``time_fn=``,
    ``registry=``, plus ``**solver_kwargs``) still work as a deprecation
    shim — they are folded into a config and a ``DeprecationWarning`` is
    issued once per process.  Passing both ``config`` and a legacy
    keyword is an error.

    With ``config.mode == "online"`` construction dispatches to the
    continuous-time :class:`~repro.online.OnlineScheduler` subclass, so
    every existing wiring (sharded, net server, CLI serve) gains the
    online mode by configuration alone.
    """

    def __new__(cls, *args: Any, **kwargs: Any) -> "SchedulerService":
        # subclasses (including OnlineScheduler itself) construct
        # directly; only the base class dispatches on the config's mode
        if cls is SchedulerService:
            config = kwargs.get("config")
            if config is None and len(args) >= 3:
                config = args[2]
            if isinstance(config, ServiceConfig) and config.mode == "online":
                from repro.online.scheduler import OnlineScheduler

                return object.__new__(OnlineScheduler)
        return object.__new__(cls)

    def __init__(
        self,
        system: StorageSystem,
        placement: MultiSitePlacement,
        config: ServiceConfig | None = None,
        *,
        solver: Any = _UNSET,
        time_fn: Any = _UNSET,
        registry: Any = _UNSET,
        **solver_kwargs: Any,
    ) -> None:
        legacy = (
            solver is not _UNSET
            or time_fn is not _UNSET
            or registry is not _UNSET
            or bool(solver_kwargs)
        )
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass either config=ServiceConfig(...) or the legacy "
                    "solver/time_fn/registry keywords, not both"
                )
            _warn_legacy_kwargs()
            config = ServiceConfig(
                solver="pr-binary" if solver is _UNSET else solver,
                solver_kwargs=dict(solver_kwargs),
                time_fn=None if time_fn is _UNSET else time_fn,
                registry=None if registry is _UNSET else registry,
            )
        elif config is None:
            config = ServiceConfig()

        if placement.total_disks != system.num_disks:
            raise StorageConfigError(
                f"placement has {placement.total_disks} disks, system "
                f"{system.num_disks}"
            )
        self.system = system
        self.placement = placement
        self.config = config
        self.solver = config.solver
        self.solver_kwargs = dict(config.solver_kwargs)
        self._now = config.resolved_time_fn()
        self._lock = threading.Lock()
        self._busy_until = [0.0] * system.num_disks
        self._failed: set[int] = set()
        self._last_arrival = 0.0
        self._stats = ServiceStats(per_disk_buckets=[0] * system.num_disks)
        self.history: list[ServiceRecord] = []

        solver_cls = SOLVERS.get(config.solver)
        self._warmable = bool(
            getattr(solver_cls, "supports_warm_start", False)
        )

        # solve backend: "thread" keeps the historical in-process path;
        # "process" routes every solve into a SolveFleet worker (the GIL
        # escape).  Imported lazily so the service layer has no hard
        # dependency on the fleet machinery for thread-backed configs.
        backend_name = config.resolved_solve_backend()
        if backend_name == "process":
            from repro.fleet.backends import make_backend

            self._backend = make_backend(
                "process",
                solver=config.solver,
                solver_kwargs=dict(config.solver_kwargs),
                fleet=config.fleet,
                fleet_workers=config.fleet_workers,
                cache_size=config.cache_size,
            )
        else:
            self._backend = None
        self.solve_backend = backend_name

        self.registry = (
            config.registry if config.registry is not None else MetricsRegistry()
        )
        self._m_queries = self.registry.counter(
            "repro_service_queries_total", "Queries scheduled."
        )
        self._m_degraded = self.registry.counter(
            "repro_service_degraded_total", "Queries routed around failures."
        )
        self._m_buckets = self.registry.counter(
            "repro_service_buckets_total", "Buckets retrieved."
        )
        self._m_decision = self.registry.histogram(
            "repro_service_decision_ms", "Scheduling decision latency (ms)."
        )
        self._m_response = self.registry.histogram(
            "repro_service_response_ms", "Scheduled query response time (ms)."
        )
        self._m_depth = [
            self.registry.gauge(
                "repro_service_queue_depth_ms",
                "Per-disk busy horizon X_j after the last decision (ms).",
                labels={"disk": str(j)},
            )
            for j in range(system.num_disks)
        ]
        self._m_batches = self.registry.counter(
            "repro_service_batches_total", "Jointly scheduled admissions."
        )
        self._m_batch_size = self.registry.histogram(
            "repro_service_batch_size",
            "Queries coalesced per admitted batch.",
            buckets=_BATCH_SIZE_BUCKETS,
        )

        # with a process backend the warm cache lives in the workers
        # (lane affinity keeps it hot); a service-side copy would only
        # go stale, so it is disabled
        self._cache = (
            NetworkCache(config.cache_size, self.registry)
            if config.cache_size > 0 and self._warmable and self._backend is None
            else None
        )
        self._batcher = (
            BatchAdmission(self, config.batch_window_ms)
            if config.batch_window_ms > 0
            else None
        )

    # ------------------------------------------------------------------
    # failure management
    # ------------------------------------------------------------------
    def mark_failed(self, disks: Sequence[int]) -> None:
        """Take disks out of scheduling (e.g. SMART pre-fail, dead path)."""
        with self._lock:
            for d in disks:
                self.system.disk(d)  # validates the id
                self._failed.add(d)

    def mark_repaired(self, disks: Sequence[int]) -> None:
        """Return repaired disks to service (their backlog restarts at 0)."""
        with self._lock:
            for d in disks:
                self.system.disk(d)  # validates the id
                self._failed.discard(d)
                self._busy_until[d] = 0.0
                self._m_depth[d].set(0.0)

    @property
    def failed_disks(self) -> frozenset[int]:
        with self._lock:
            return frozenset(self._failed)

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def submit(
        self,
        query: QueryLike,
        arrival_ms: float | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> ServiceRecord:
        """Schedule one query; updates loads; returns the decision.

        ``query`` is a coordinate sequence, a
        :class:`~repro.workloads.RangeQuery` or an
        :class:`~repro.workloads.ArbitraryQuery`.  ``arrival_ms`` defaults
        to the injected clock and must be non-decreasing across calls.
        ``deadline_ms``, when given, is an admission target: if the
        proven lower bound on the query's response time already exceeds
        it, the query is shed with
        :class:`~repro.errors.PredictedOverloadError` before any solve
        runs (not supported with batched admission).

        Problem construction (replica lookup, degraded filtering) runs
        *before* the solve lock is taken; only load-refresh, solve and
        horizon-advance are serialized.
        """
        coords, query_obj = self._normalize_query(query)
        base = RetrievalProblem.from_query(self.system, self.placement, coords)
        failed = self.failed_disks
        problem, degraded = self._apply_failures(base, failed)

        if self._batcher is not None:
            if deadline_ms is not None:
                raise StorageConfigError(
                    "deadline_ms admission is not supported with batched "
                    "admission (batch_window_ms > 0)"
                )
            request = _PendingQuery(
                base, problem, query_obj, degraded, failed, arrival_ms
            )
            return self._batcher.submit(request)
        return self._solve_single(
            base, problem, query_obj, degraded, failed, arrival_ms,
            deadline_ms=deadline_ms,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_query(query: QueryLike) -> tuple[list[Any], Any]:
        if isinstance(query, (RangeQuery, ArbitraryQuery)):
            return query.buckets(), query
        return list(query), query

    @staticmethod
    def _apply_failures(
        base: RetrievalProblem, failed: frozenset[int]
    ) -> tuple[RetrievalProblem, bool]:
        if failed:
            return degrade_problem(base, failed), True
        return base, False

    def _admit_locked(self, arrival_ms: float | None) -> tuple[float, list]:
        """Monotonic-arrival check + load refresh; returns (now, loads)."""
        now = self._now() if arrival_ms is None else float(arrival_ms)
        if now < self._last_arrival:
            raise StorageConfigError(
                f"arrivals must be non-decreasing "
                f"({now} < {self._last_arrival})"
            )
        self._last_arrival = now
        loads = [max(0.0, u - now) for u in self._busy_until]
        self.system.set_loads(loads)
        return now, loads

    def _response_lower_bound_locked(self, problem: RetrievalProblem) -> float:
        """A proven lower bound on the problem's optimal response time.

        Any schedule uses only the query's replica disks; by pigeonhole
        some used disk serves at least ``ceil(|Q| / m)`` buckets (``m``
        replica disks), finishing no earlier than the best such disk
        could.  Exact against the current loads (``_admit_locked`` must
        have refreshed them), so predictive shedding never rejects a
        query the solver could have satisfied.
        """
        disks = sorted(problem.replica_disks())
        per_disk = -(-problem.num_buckets // len(disks))  # ceil
        return min(self.system.finish_time(j, per_disk) for j in disks)

    def _solve_locked(
        self, problem: RetrievalProblem
    ) -> "tuple[Any, bool]":
        """Solve one problem under the lock, via the warm-start cache."""
        if self._backend is not None:
            return self._backend.solve(problem)
        if self._cache is None:
            return solve(problem, solver=self.solver, **self.solver_kwargs), False
        signature = problem.replicas
        entry = self._cache.get(signature)
        if entry is not None:
            network = entry.network
            network.rebind(problem)
            if entry.flow is not None:
                network.graph.restore_flow(entry.flow)
            else:
                network.graph.reset_flow()
            cache_hit = True
        else:
            network = RetrievalNetwork(problem)
            cache_hit = False
        schedule = solve(
            problem, solver=self.solver, network=network, **self.solver_kwargs
        )
        self._cache.put(signature, network, network.graph.save_flow())
        return schedule, cache_hit

    def _advance_horizons_locked(self, now: float, loads: list, counts: list) -> None:
        for j, k in enumerate(counts):
            if k:
                disk = self.system.disk(j)
                self._busy_until[j] = now + loads[j] + k * disk.block_time_ms
                self._stats.per_disk_buckets[j] += k

    def _record_one_locked(self, record: ServiceRecord) -> None:
        """Append one decision to history, stats and metrics (locked)."""
        self.history.append(record)
        st = self._stats
        st.queries += 1
        st.buckets += record.num_buckets
        st.total_response_ms += record.response_time_ms
        st.max_response_ms = max(st.max_response_ms, record.response_time_ms)
        st.total_decision_ms += record.decision_time_ms
        if record.degraded:
            st.degraded_queries += 1
            self._m_degraded.inc()
        if record.cache_hit:
            st.cache_hits += 1
        self._m_queries.inc()
        self._m_buckets.inc(record.num_buckets)
        self._m_decision.observe(record.decision_time_ms)
        self._m_response.observe(record.response_time_ms)

    def _update_depth_gauges_locked(self, now: float) -> None:
        for j, gauge in enumerate(self._m_depth):
            gauge.set(max(0.0, self._busy_until[j] - now))

    # ------------------------------------------------------------------
    def _solve_single(
        self,
        base: RetrievalProblem,
        problem: RetrievalProblem,
        query_obj: Any,
        degraded: bool,
        failed: frozenset[int],
        arrival_ms: float | None,
        deadline_ms: float | None = None,
    ) -> ServiceRecord:
        with self._lock:
            now, loads = self._admit_locked(arrival_ms)
            if self._failed != failed:
                # failure set changed since the lock-free preparation:
                # redo the (cheap) degraded filtering under the lock so
                # the decision reflects the current survivors.
                problem, degraded = self._apply_failures(
                    base, frozenset(self._failed)
                )
            if deadline_ms is not None:
                bound = self._response_lower_bound_locked(problem)
                if bound > deadline_ms:
                    raise PredictedOverloadError(
                        f"predicted response {bound:.3f} ms exceeds "
                        f"deadline {deadline_ms:.3f} ms",
                        predicted_ms=bound,
                        target_ms=deadline_ms,
                        retry_after_ms=max(0.0, bound - deadline_ms),
                    )
            schedule, cache_hit = self._solve_locked(problem)
            counts = schedule.counts_per_disk()
            self._advance_horizons_locked(now, loads, counts)
            record = ServiceRecord(
                arrival_ms=now,
                num_buckets=problem.num_buckets,
                response_time_ms=schedule.response_time_ms,
                assignment=schedule.as_bucket_map(),
                degraded=degraded,
                decision_time_ms=schedule.stats.wall_time_s * 1000.0,
                query=query_obj,
                cache_hit=cache_hit,
                batch_size=1,
            )
            self._record_one_locked(record)
            self._update_depth_gauges_locked(now)
            return record

    # ------------------------------------------------------------------
    def _admit_batch(self, requests: list[_PendingQuery]) -> None:
        """Jointly schedule one sealed batch (called by the leader)."""
        with self._lock:
            explicit = [
                r.arrival_ms for r in requests if r.arrival_ms is not None
            ]
            if len(explicit) == len(requests):
                now = max(explicit)
            elif explicit:
                now = max(self._now(), max(explicit))
            else:
                now = None  # _admit_locked reads the clock
            now, loads = self._admit_locked(now)

            current_failed = frozenset(self._failed)
            for req in requests:
                if req.failed != current_failed:
                    req.problem, req.degraded = self._apply_failures(
                        req.base, current_failed
                    )

            merged, owner = merge_problems([r.problem for r in requests])
            # batched admission solves in-process regardless of backend:
            # merged problems have one-off replica signatures, so worker
            # cache affinity buys nothing and the shipping cost is pure
            # overhead on the coalesced (already amortized) path
            schedule = solve(merged, solver=self.solver, **self.solver_kwargs)
            joint = BatchSchedule(schedule, owner, len(requests))
            decision_ms = schedule.stats.wall_time_s * 1000.0

            counts = schedule.counts_per_disk()
            self._advance_horizons_locked(now, loads, counts)
            finishes = joint.per_query_finish_ms()
            per_assign = joint.per_query_assignments()

            for q, req in enumerate(requests):
                assignment = {
                    req.problem.label_of(i): d
                    for i, d in per_assign[q].items()
                }
                record = ServiceRecord(
                    arrival_ms=now,
                    num_buckets=req.problem.num_buckets,
                    response_time_ms=finishes[q],
                    assignment=assignment,
                    degraded=req.degraded,
                    decision_time_ms=decision_ms,
                    query=req.query_obj,
                    cache_hit=False,
                    batch_size=len(requests),
                )
                req.record = record
                self._record_one_locked(record)

            self._stats.batches += 1
            self._m_batches.inc()
            self._m_batch_size.observe(float(len(requests)))
            self._update_depth_gauges_locked(now)

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A snapshot of the running aggregates (with registry quantiles)."""
        with self._lock:
            return ServiceStats(
                queries=self._stats.queries,
                buckets=self._stats.buckets,
                total_response_ms=self._stats.total_response_ms,
                max_response_ms=self._stats.max_response_ms,
                total_decision_ms=self._stats.total_decision_ms,
                degraded_queries=self._stats.degraded_queries,
                per_disk_buckets=list(self._stats.per_disk_buckets),
                p50_response_ms=self._m_response.quantile(0.50),
                p95_response_ms=self._m_response.quantile(0.95),
                cache_hits=self._stats.cache_hits,
                batches=self._stats.batches,
            )

    # ------------------------------------------------------------------
    @property
    def cache(self) -> NetworkCache | None:
        """The warm-start network cache (``None`` when disabled).

        Under the ``process`` backend this is ``None``: the warm caches
        live inside the fleet's worker processes.
        """
        return self._cache

    def close(self) -> None:
        """Release the solve backend (worker processes); idempotent.

        Thread-backed services hold nothing worth releasing, so calling
        this is only *required* for ``solve_backend="process"`` — but it
        is always safe.  Taking the service lock serialises close()
        against any in-flight ``_solve_locked`` backend call, so the
        backend can never be torn down mid-solve.
        """
        with self._lock:
            if self._backend is not None:
                self._backend.close()
