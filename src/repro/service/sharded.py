"""Sharded scheduling: N independent services over disjoint disk groups.

A single :class:`~repro.service.SchedulerService` serializes solves
because the busy horizons ``X_j`` are shared mutable state.  When a
deployment's disks partition into independent groups (separate arrays,
separate sites), nothing couples their schedules — each group can run
its own service, its own lock, its own cache, and submits against
different shards proceed fully in parallel.

``ShardedSchedulerService`` packages that: construct it from ready-made
services or from ``(system, placement)`` pairs, route queries with a
stable hash (or an explicit ``shard=``), manage failures per shard or
fleet-wide (``mark_failed_all``/``mark_repaired_all``), and read merged
statistics —
counters sum, ``per_disk_buckets`` concatenates in shard order, and the
response-time percentiles are recomputed from the shards' combined
histogram buckets (quantiles do not add).
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.registry import MetricsRegistry

from repro.errors import StorageConfigError
from repro.obs.registry import Histogram
from repro.service.config import ServiceConfig
from repro.service.scheduler import QueryLike, SchedulerService
from repro.service.stats import ServiceRecord, ServiceStats
from repro.workloads.queries import ArbitraryQuery, RangeQuery

__all__ = ["ShardedSchedulerService", "merged_quantile"]


def merged_quantile(histograms: Sequence[Histogram], q: float) -> float:
    """The ``q``-quantile of several histograms' pooled observations.

    Decumulates each histogram's ``bucket_counts()`` into shared per-bucket
    counts (the bucket bounds must match, which holds for every service's
    ``repro_service_response_ms``), then interpolates exactly like
    :meth:`~repro.obs.registry.Histogram.quantile`.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    live = [h for h in histograms if h is not None and h.count]
    if not live:
        return 0.0
    bounds = live[0].bounds
    for h in live[1:]:
        if h.bounds != bounds:
            raise ValueError("cannot merge histograms with different buckets")
    counts = [0] * (len(bounds) + 1)
    total = 0
    observed_max = 0.0
    for h in live:
        cum_prev = 0
        for i, (_ub, cum) in enumerate(h.bucket_counts()):
            counts[i] += cum - cum_prev
            cum_prev = cum
        s = h.summary()
        total += s.count
        observed_max = max(observed_max, s.max)
    rank = q * total
    cum = 0.0
    lower = 0.0
    for ub, c in zip(bounds, counts):
        if c and cum + c >= rank:
            frac = max(0.0, rank - cum) / c
            return lower + frac * (ub - lower)
        cum += c
        lower = ub
    return observed_max


class ShardedSchedulerService:
    """N independent scheduler services with stable routing + merged stats.

    Parameters
    ----------
    shards:
        Either ready-built :class:`~repro.service.SchedulerService`
        instances, or ``(system, placement)`` pairs to build one service
        each from ``config``.
    config:
        Template policy for pair-built shards.  Each shard gets its own
        private metrics registry (``registry=None``) so per-disk gauges
        from different shards cannot collide; read them via
        :attr:`registries`.
    """

    def __init__(
        self,
        shards: Sequence[SchedulerService | tuple],
        config: ServiceConfig | None = None,
    ) -> None:
        if config is None:
            config = ServiceConfig()
        # one fleet for the whole deployment: with a process backend,
        # per-shard fleets would multiply worker processes N_shards-fold
        # and defeat signature→lane cache affinity (the same signature
        # must hit the same worker no matter which shard routed it)
        self._fleet = None
        if (
            config.resolved_solve_backend() == "process"
            and config.fleet is None
        ):
            from repro.fleet.pool import SolveFleet

            self._fleet = SolveFleet(
                config.fleet_workers,
                solver=config.solver,
                solver_kwargs=dict(config.solver_kwargs),
                cache_size=config.cache_size,
            )
            config = config.with_changes(fleet=self._fleet)
        services: list[SchedulerService] = []
        for shard in shards:
            if isinstance(shard, SchedulerService):
                services.append(shard)
            else:
                system, placement = shard
                services.append(
                    SchedulerService(
                        system,
                        placement,
                        config=config.with_changes(registry=None),
                    )
                )
        if not services:
            raise StorageConfigError("sharded service needs at least one shard")
        self.services = services

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.services)

    @property
    def registries(self) -> list[MetricsRegistry]:
        """Each shard's metrics registry, in shard order."""
        return [svc.registry for svc in self.services]

    # ------------------------------------------------------------------
    def shard_of(self, query: QueryLike) -> int:
        """The stable home shard for a query (hash of its sorted coords)."""
        if isinstance(query, (RangeQuery, ArbitraryQuery)):
            coords = query.buckets()
        else:
            coords = list(query)
        key = tuple(sorted(tuple(c) for c in coords))
        # hash() over int tuples is deterministic (PYTHONHASHSEED only
        # perturbs str/bytes), so routing is stable across processes.
        return hash(key) % len(self.services)

    def submit(
        self,
        query: QueryLike,
        shard: int | None = None,
        arrival_ms: float | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> ServiceRecord:
        """Route the query to its shard (or ``shard=``) and schedule it."""
        svc = (
            self.services[self.shard_of(query)]
            if shard is None
            else self._shard(shard)
        )
        return svc.submit(query, arrival_ms=arrival_ms, deadline_ms=deadline_ms)

    # ------------------------------------------------------------------
    def _shard(self, shard: int) -> SchedulerService:
        """Validated shard lookup (explicit error, not ``IndexError``)."""
        if not isinstance(shard, int) or isinstance(shard, bool):
            raise ValueError(f"shard id must be an int, got {shard!r}")
        if not 0 <= shard < len(self.services):
            raise ValueError(
                f"shard {shard} out of range [0, {len(self.services)})"
            )
        return self.services[shard]

    def mark_failed(self, shard: int, disks: Sequence[int]) -> None:
        self._shard(shard).mark_failed(disks)

    def mark_repaired(self, shard: int, disks: Sequence[int]) -> None:
        self._shard(shard).mark_repaired(disks)

    def mark_failed_all(self, disks: Sequence[int]) -> None:
        """Broadcast a failure to every shard (shared cabling, site loss).

        Disk ids are local to each shard's deployment; every shard must
        know them, or its service raises before any state changes there.
        """
        for svc in self.services:
            svc.mark_failed(disks)

    def mark_repaired_all(self, disks: Sequence[int]) -> None:
        """Broadcast a repair to every shard (inverse of mark_failed_all)."""
        for svc in self.services:
            svc.mark_repaired(disks)

    # ------------------------------------------------------------------
    def shard_stats(self) -> list[ServiceStats]:
        return [svc.stats() for svc in self.services]

    def stats(self) -> ServiceStats:
        """The fleet-wide roll-up (percentiles from pooled histograms)."""
        merged = ServiceStats(per_disk_buckets=[])
        for snap in self.shard_stats():
            merged = merged.merge(snap)
        hists = [
            svc.registry.get("repro_service_response_ms")
            for svc in self.services
        ]
        merged.p50_response_ms = merged_quantile(hists, 0.50)
        merged.p95_response_ms = merged_quantile(hists, 0.95)
        return merged

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every shard and the shared solve fleet (idempotent)."""
        for svc in self.services:
            svc.close()
        if self._fleet is not None:
            self._fleet.close()
