"""Sharded scheduling: N independent services over disjoint disk groups.

A single :class:`~repro.service.SchedulerService` serializes solves
because the busy horizons ``X_j`` are shared mutable state.  When a
deployment's disks partition into independent groups (separate arrays,
separate sites), nothing couples their schedules — each group can run
its own service, its own lock, its own cache, and submits against
different shards proceed fully in parallel.

``ShardedSchedulerService`` packages that: construct it from ready-made
services or from ``(system, placement)`` pairs, route queries with a
stable hash (or an explicit ``shard=``), manage failures per shard or
fleet-wide (``mark_failed_all``/``mark_repaired_all``), and read merged
statistics —
counters sum, ``per_disk_buckets`` concatenates in shard order, and the
response-time percentiles are recomputed from the shards' combined
histogram buckets (quantiles do not add).
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.obs.registry import MetricsRegistry

from repro.errors import StorageConfigError
from repro.service.config import ServiceConfig
from repro.service.scheduler import QueryLike, SchedulerService
from repro.service.signature import stable_signature_hash
from repro.service.stats import ServiceRecord, ServiceStats, merged_quantile

__all__ = ["ShardedSchedulerService", "merged_quantile"]


class ShardedSchedulerService:
    """N independent scheduler services with stable routing + merged stats.

    Parameters
    ----------
    shards:
        Either ready-built :class:`~repro.service.SchedulerService`
        instances, or ``(system, placement)`` pairs to build one service
        each from ``config``.
    config:
        Template policy for pair-built shards.  Each shard gets its own
        private metrics registry (``registry=None``) so per-disk gauges
        from different shards cannot collide; read them via
        :attr:`registries`.
    """

    def __init__(
        self,
        shards: Sequence[SchedulerService | tuple],
        config: ServiceConfig | None = None,
    ) -> None:
        if config is None:
            config = ServiceConfig()
        # one fleet for the whole deployment: with a process backend,
        # per-shard fleets would multiply worker processes N_shards-fold
        # and defeat signature→lane cache affinity (the same signature
        # must hit the same worker no matter which shard routed it)
        self._fleet = None
        if (
            config.resolved_solve_backend() == "process"
            and config.fleet is None
        ):
            from repro.fleet.pool import SolveFleet

            self._fleet = SolveFleet(
                config.fleet_workers,
                solver=config.solver,
                solver_kwargs=dict(config.solver_kwargs),
                cache_size=config.cache_size,
            )
            config = config.with_changes(fleet=self._fleet)
        services: list[SchedulerService] = []
        for shard in shards:
            if isinstance(shard, SchedulerService):
                services.append(shard)
            else:
                system, placement = shard
                services.append(
                    SchedulerService(
                        system,
                        placement,
                        config=config.with_changes(registry=None),
                    )
                )
        if not services:
            raise StorageConfigError("sharded service needs at least one shard")
        self.services = services
        # serializes mark_failed_all/mark_repaired_all so interleaved
        # broadcasts cannot leave shards disagreeing about a disk
        self._broadcast_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.services)

    @property
    def registries(self) -> list[MetricsRegistry]:
        """Each shard's metrics registry, in shard order."""
        return [svc.registry for svc in self.services]

    # ------------------------------------------------------------------
    def shard_of(self, query: QueryLike) -> int:
        """The stable home shard for a query (hash of its sorted coords).

        Uses the shared SHA-256 signature hash from
        :mod:`repro.service.signature`, so in-process sharding and
        ``repro.cluster`` routing agree on where a signature lives.
        (Before 1.4.0 this was ``hash()`` over the coordinate tuple —
        deterministic for int tuples since ``PYTHONHASHSEED`` only
        perturbs str/bytes, but a CPython implementation detail with no
        byte-level definition; see the compat note in
        ``repro/service/signature.py``.)
        """
        return stable_signature_hash(query) % len(self.services)

    def submit(
        self,
        query: QueryLike,
        shard: int | None = None,
        arrival_ms: float | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> ServiceRecord:
        """Route the query to its shard (or ``shard=``) and schedule it."""
        svc = (
            self.services[self.shard_of(query)]
            if shard is None
            else self._shard(shard)
        )
        return svc.submit(query, arrival_ms=arrival_ms, deadline_ms=deadline_ms)

    # ------------------------------------------------------------------
    def _shard(self, shard: int) -> SchedulerService:
        """Validated shard lookup (explicit error, not ``IndexError``)."""
        if not isinstance(shard, int) or isinstance(shard, bool):
            raise ValueError(f"shard id must be an int, got {shard!r}")
        if not 0 <= shard < len(self.services):
            raise ValueError(
                f"shard {shard} out of range [0, {len(self.services)})"
            )
        return self.services[shard]

    def mark_failed(self, shard: int, disks: Sequence[int]) -> None:
        self._shard(shard).mark_failed(disks)

    def mark_repaired(self, shard: int, disks: Sequence[int]) -> None:
        self._shard(shard).mark_repaired(disks)

    def mark_failed_all(self, disks: Sequence[int]) -> None:
        """Broadcast a failure to every shard (shared cabling, site loss).

        Fleet-wide snapshot guarantee: disk ids are validated against
        *every* shard's deployment before any shard changes state, so an
        unknown id raises with no partial application; and broadcasts
        are serialized on a fleet-wide mutex, so two racing broadcasts
        (e.g. ``mark_failed_all`` vs ``mark_repaired_all`` for the same
        disk) apply in the same order on every shard — after both
        return, all shards agree on the disk's state.  Submits racing a
        broadcast still serialize per shard on each service's own lock.
        """
        self._broadcast(disks, "mark_failed")

    def mark_repaired_all(self, disks: Sequence[int]) -> None:
        """Broadcast a repair to every shard (inverse of mark_failed_all).

        Same fleet-wide snapshot guarantee as :meth:`mark_failed_all`.
        """
        self._broadcast(disks, "mark_repaired")

    def _broadcast(self, disks: Sequence[int], op: str) -> None:
        ids = list(disks)
        with self._broadcast_lock:
            # phase 1 — validate everywhere (read-only): any shard that
            # does not know an id raises before any shard has changed
            for svc in self.services:
                for d in ids:
                    svc.system.disk(d)
            # phase 2 — apply in shard order under the mutex
            for svc in self.services:
                if op == "mark_failed":
                    svc.mark_failed(ids)
                else:
                    svc.mark_repaired(ids)

    # ------------------------------------------------------------------
    def shard_stats(self) -> list[ServiceStats]:
        return [svc.stats() for svc in self.services]

    def stats(self) -> ServiceStats:
        """The fleet-wide roll-up (percentiles from pooled histograms)."""
        merged = ServiceStats(per_disk_buckets=[])
        for snap in self.shard_stats():
            merged = merged.merge(snap)
        hists = [
            svc.registry.get("repro_service_response_ms")
            for svc in self.services
        ]
        merged.p50_response_ms = merged_quantile(hists, 0.50)
        merged.p95_response_ms = merged_quantile(hists, 0.95)
        return merged

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every shard and the shared solve fleet (idempotent)."""
        for svc in self.services:
            svc.close()
        if self._fleet is not None:
            self._fleet.close()
