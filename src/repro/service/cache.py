"""Warm-start network cache keyed by replica-set signature.

Repeated and overlapping queries — the hot case of any real frontend —
resolve to the *same* replica signature ``problem.replicas``, and the
paper's flow networks are a pure function of that signature.  Caching the
built :class:`~repro.core.network.RetrievalNetwork` (plus the final flow
of the last solve, via the existing ``save_flow``/``restore_flow``
machinery) lets the integrated solvers skip topology construction
entirely and start each probe from a conserved, clamped preflow — the
same flow-conservation idea Algorithm 6 applies *within* a solve,
extended *across* solves.

Since the CSR refactor the entry implicitly carries a third asset: the
network's **compiled flat-array layout**.  ``graph.compiled()`` memoizes
the :class:`~repro.graph.csr.CompiledNetwork` on the builder, and
neither :meth:`~repro.core.network.RetrievalNetwork.rebind` nor
:meth:`~repro.core.network.RetrievalNetwork.clamp_flow_to_sink_caps`
touches topology — so a cache hit under the ``pr-csr`` solver reuses the
same compiled buffers *and* its ``kernel_scratch`` (height/excess/queue
working state keyed per source/sink), skipping compilation and scratch
allocation along with topology construction.

The cache is deliberately not thread-safe on its own: the scheduler
service mutates cached networks while solving, so every access happens
under the service's solve lock anyway.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.network import RetrievalNetwork
from repro.obs.registry import MetricsRegistry

__all__ = ["CacheEntry", "NetworkCache"]

Signature = tuple[tuple[int, ...], ...]

#: a saved flow: the builder's plain-list snapshot or a compiled
#: ``array('q')`` snapshot — ``restore_flow`` on either representation
#: accepts both
FlowSnapshot = Sequence[int]


@dataclass
class CacheEntry:
    """One cached topology and the flow it last carried.

    ``flow`` holds either representation's snapshot —
    ``FlowNetwork.save_flow``'s plain list or
    ``CompiledNetwork.save_flow``'s ``array('q')`` (compact: 8 bytes per
    arc slot, no boxed ints); both restore into both.
    """

    network: RetrievalNetwork
    flow: list[int] | array | None = None
    hits: int = 0

    extra: dict = field(default_factory=dict)


class NetworkCache:
    """LRU cache of retrieval networks with hit/miss/eviction counters.

    Parameters
    ----------
    size:
        Maximum number of entries; ``0`` makes every lookup a miss and
        every store a no-op (caching disabled, counters still live).
    registry:
        Metrics sink for ``repro_service_cache_{hits,misses,evictions}_total``
        counters and the ``repro_service_cache_entries`` gauge.
    """

    def __init__(self, size: int, registry: MetricsRegistry) -> None:
        if size < 0:
            raise ValueError(f"cache size must be >= 0, got {size}")
        self.size = size
        self._entries: OrderedDict[Signature, CacheEntry] = OrderedDict()
        self._m_hits = registry.counter(
            "repro_service_cache_hits_total",
            "Warm-start network cache hits.",
        )
        self._m_misses = registry.counter(
            "repro_service_cache_misses_total",
            "Warm-start network cache misses.",
        )
        self._m_evictions = registry.counter(
            "repro_service_cache_evictions_total",
            "Warm-start network cache LRU evictions.",
        )
        self._m_entries = registry.gauge(
            "repro_service_cache_entries",
            "Warm-start network cache resident entries.",
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def misses(self) -> int:
        return int(self._m_misses.value)

    @property
    def evictions(self) -> int:
        return int(self._m_evictions.value)

    # ------------------------------------------------------------------
    def peek(self, signature: Signature) -> CacheEntry | None:
        """Look up without LRU-touching or counting a hit/miss.

        The online scheduler's decremental repair path uses this: a
        drain mutating a cached network is maintenance, not a lookup,
        and must not distort the hit-rate metrics or recency order.
        """
        return self._entries.get(signature)

    def get(self, signature: Signature) -> CacheEntry | None:
        """Look up (and LRU-touch) the entry; counts a hit or a miss."""
        entry = self._entries.get(signature)
        if entry is None:
            self._m_misses.inc()
            return None
        self._entries.move_to_end(signature)
        entry.hits += 1
        self._m_hits.inc()
        return entry

    def put(
        self,
        signature: Signature,
        network: RetrievalNetwork,
        flow: list[int] | array | None,
    ) -> None:
        """Insert or refresh an entry; evicts the LRU tail on overflow."""
        if self.size == 0:
            return
        entry = self._entries.get(signature)
        if entry is None:
            self._entries[signature] = CacheEntry(network, flow)
        else:
            entry.network = network
            entry.flow = flow
            self._entries.move_to_end(signature)
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)
            self._m_evictions.inc()
        self._m_entries.set(len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self._m_entries.set(0)
