"""Batched admission: coalesce concurrent submits into one joint solve.

The paper schedules queries one at a time; ``repro.core.batch`` shows
that a *burst* of queries scheduled jointly can only improve the batch
makespan (the cost-of-isolation argument).  This module supplies the
missing admission mechanism: the first submit to arrive opens a batch
and becomes its **leader**; submits landing within the configured window
join as **followers**; after the window closes the leader takes the
service's solve lock once, solves the merged problem with
:func:`repro.core.batch.solve_batch` semantics, and distributes
per-query records.  Followers block on an event, not on the solve lock,
so admission contention scales with the window rather than with solver
latency.

The window is *real* wall-clock time (``time.sleep``), independent of the
service's injectable ``time_fn`` — a fake test clock controls recorded
arrival timestamps, not how long the leader physically waits.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.core.problem import RetrievalProblem

if TYPE_CHECKING:
    from repro.service.scheduler import SchedulerService
    from repro.service.stats import ServiceRecord

__all__ = ["BatchAdmission"]


class _PendingQuery:
    """One submit waiting for its batch to be scheduled."""

    __slots__ = (
        "base",
        "problem",
        "query_obj",
        "degraded",
        "failed",
        "arrival_ms",
        "record",
        "error",
    )

    def __init__(
        self,
        base: RetrievalProblem,
        problem: RetrievalProblem,
        query_obj: object,
        degraded: bool,
        failed: frozenset[int],
        arrival_ms: float | None,
    ) -> None:
        self.base = base
        self.problem = problem
        self.query_obj = query_obj
        self.degraded = degraded
        self.failed = failed
        self.arrival_ms = arrival_ms
        self.record = None
        self.error: BaseException | None = None


class _Batch:
    __slots__ = ("requests", "done")

    def __init__(self) -> None:
        self.requests: list[_PendingQuery] = []
        self.done = threading.Event()


class BatchAdmission:
    """The admission window in front of a scheduler service."""

    def __init__(self, service: SchedulerService, window_ms: float) -> None:
        self._service = service
        self._window_s = float(window_ms) / 1000.0
        self._mutex = threading.Lock()
        self._open: _Batch | None = None

    # ------------------------------------------------------------------
    def submit(self, request: _PendingQuery) -> ServiceRecord:
        """Join (or open) the current batch; return this query's record."""
        with self._mutex:
            batch = self._open
            if batch is None:
                batch = _Batch()
                self._open = batch
                leader = True
            else:
                leader = False
            batch.requests.append(request)

        if leader:
            if self._window_s > 0:
                time.sleep(self._window_s)
            with self._mutex:
                # seal: later submits open a fresh batch
                if self._open is batch:
                    self._open = None
            try:
                self._service._admit_batch(batch.requests)
            except BaseException as exc:  # propagate to every member
                for req in batch.requests:
                    if req.record is None and req.error is None:
                        req.error = exc
            finally:
                batch.done.set()
        else:
            batch.done.wait()

        if request.error is not None:
            raise request.error
        assert request.record is not None, "batch solved without a record"
        return request.record
