"""Service outcome records and lifetime aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceRecord", "ServiceStats"]


@dataclass(frozen=True)
class ServiceRecord:
    """Outcome of one submitted query.

    Attributes
    ----------
    arrival_ms, num_buckets, response_time_ms, assignment, degraded,
    decision_time_ms:
        As in PR 1: the admission timestamp, query size, scheduled
        response time, bucket→disk map (keyed by the query's labels),
        whether failed disks were routed around, and the solve latency.
    query:
        The object originally submitted — a
        :class:`~repro.workloads.RangeQuery`, an
        :class:`~repro.workloads.ArbitraryQuery`, or the raw coordinate
        list.
    cache_hit:
        Whether the decision warm-started from the network cache.
    batch_size:
        Number of queries jointly scheduled with this one (1 when the
        service runs in per-query mode).
    """

    arrival_ms: float
    num_buckets: int
    response_time_ms: float
    assignment: dict
    degraded: bool
    decision_time_ms: float
    query: object = None
    cache_hit: bool = False
    batch_size: int = 1


@dataclass
class ServiceStats:
    """Aggregates over the service's lifetime.

    ``p50_response_ms`` / ``p95_response_ms`` are interpolated from the
    always-on registry histograms at snapshot time (not running fields);
    they are 0.0 until the first query.
    """

    queries: int = 0
    buckets: int = 0
    total_response_ms: float = 0.0
    max_response_ms: float = 0.0
    total_decision_ms: float = 0.0
    degraded_queries: int = 0
    per_disk_buckets: list[int] = field(default_factory=list)
    p50_response_ms: float = 0.0
    p95_response_ms: float = 0.0
    cache_hits: int = 0
    batches: int = 0

    @property
    def mean_response_ms(self) -> float:
        return self.total_response_ms / self.queries if self.queries else 0.0

    @property
    def mean_decision_ms(self) -> float:
        return self.total_decision_ms / self.queries if self.queries else 0.0

    # ------------------------------------------------------------------
    def merge(self, other: "ServiceStats") -> "ServiceStats":
        """Elementwise sum/max with another snapshot (sharded roll-up).

        Percentile fields are *not* merged here — quantiles do not add;
        :class:`~repro.service.ShardedSchedulerService` recomputes them
        from the shards' combined histogram buckets.
        """
        return ServiceStats(
            queries=self.queries + other.queries,
            buckets=self.buckets + other.buckets,
            total_response_ms=self.total_response_ms + other.total_response_ms,
            max_response_ms=max(self.max_response_ms, other.max_response_ms),
            total_decision_ms=self.total_decision_ms + other.total_decision_ms,
            degraded_queries=self.degraded_queries + other.degraded_queries,
            per_disk_buckets=list(self.per_disk_buckets)
            + list(other.per_disk_buckets),
            cache_hits=self.cache_hits + other.cache_hits,
            batches=self.batches + other.batches,
        )
