"""Service outcome records, lifetime aggregates, and quantile merging.

Besides the per-query :class:`ServiceRecord` and the rolling
:class:`ServiceStats`, this module owns the math for combining
response-time distributions across independent services:
:func:`merged_quantile` pools histogram buckets (quantiles do not add),
and :class:`WireHistogram` / :func:`histogram_to_wire` carry those
buckets over the RPC protocol so a cluster router can merge backend
distributions without access to the backends' registries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

__all__ = [
    "ServiceRecord",
    "ServiceStats",
    "merged_quantile",
    "histogram_to_wire",
    "WireHistogram",
]


class HistogramLike(Protocol):
    """The slice of :class:`repro.obs.registry.Histogram` merging needs."""

    bounds: tuple[float, ...]

    @property
    def count(self) -> int: ...

    def bucket_counts(self) -> list[tuple[float, int]]: ...

    def summary(self) -> Any: ...  # needs .count and .max


def merged_quantile(
    histograms: Sequence[HistogramLike | None], q: float
) -> float:
    """The ``q``-quantile of several histograms' pooled observations.

    Decumulates each histogram's ``bucket_counts()`` into shared per-bucket
    counts (the bucket bounds must match, which holds for every service's
    ``repro_service_response_ms``), then interpolates exactly like
    :meth:`~repro.obs.registry.Histogram.quantile`.  Accepts real
    :class:`~repro.obs.registry.Histogram` objects and
    :class:`WireHistogram` snapshots interchangeably.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    live = [h for h in histograms if h is not None and h.count]
    if not live:
        return 0.0
    bounds = live[0].bounds
    for h in live[1:]:
        if h.bounds != bounds:
            raise ValueError("cannot merge histograms with different buckets")
    counts = [0] * (len(bounds) + 1)
    total = 0
    observed_max = 0.0
    for h in live:
        cum_prev = 0
        for i, (_ub, cum) in enumerate(h.bucket_counts()):
            counts[i] += cum - cum_prev
            cum_prev = cum
        s = h.summary()
        total += s.count
        observed_max = max(observed_max, s.max)
    rank = q * total
    cum = 0.0
    lower = 0.0
    for ub, c in zip(bounds, counts):
        if c and cum + c >= rank:
            frac = max(0.0, rank - cum) / c
            return lower + frac * (ub - lower)
        cum += c
        lower = ub
    return observed_max


def histogram_to_wire(
    histograms: Sequence[HistogramLike | None],
) -> dict[str, Any]:
    """Pool one or more histograms into a JSON-safe bucket snapshot.

    The payload carries finite bucket bounds, non-cumulative per-bucket
    counts (the trailing entry is the ``+Inf`` overflow bucket), and the
    pooled count/max — everything :class:`WireHistogram` needs to take
    part in :func:`merged_quantile` on the far side of an RPC.
    """
    live = [h for h in histograms if h is not None and h.count]
    if not live:
        return {"bounds": [], "counts": [], "count": 0, "max": 0.0}
    bounds = live[0].bounds
    counts = [0] * (len(bounds) + 1)
    total = 0
    observed_max = 0.0
    for h in live:
        if h.bounds != bounds:
            raise ValueError("cannot pool histograms with different buckets")
        cum_prev = 0
        for i, (_ub, cum) in enumerate(h.bucket_counts()):
            counts[i] += cum - cum_prev
            cum_prev = cum
        s = h.summary()
        total += s.count
        observed_max = max(observed_max, s.max)
    return {
        "bounds": list(bounds),
        "counts": counts,
        "count": total,
        "max": observed_max,
    }


@dataclass(frozen=True)
class _WireSummary:
    count: int
    max: float


class WireHistogram:
    """A histogram snapshot reconstructed from a wire stats payload.

    Implements exactly the protocol :func:`merged_quantile` consumes, so
    a router can pool per-backend ``response_histogram`` payloads and
    interpolate fleet-wide percentiles without importing the metrics
    registry or holding any backend lock.
    """

    def __init__(
        self, bounds: Sequence[float], counts: Sequence[int],
        count: int, max_value: float,
    ) -> None:
        if len(counts) != len(bounds) + 1:
            raise ValueError(
                f"expected {len(bounds) + 1} bucket counts, got {len(counts)}"
            )
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [int(c) for c in counts]
        self._count = int(count)
        self._max = float(max_value)

    @classmethod
    def from_wire(cls, payload: Any) -> "WireHistogram | None":
        """Parse a ``response_histogram`` payload; ``None`` if absent/empty."""
        if not isinstance(payload, dict):
            return None
        bounds = payload.get("bounds")
        counts = payload.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            return None
        if not bounds or len(counts) != len(bounds) + 1:
            return None
        return cls(
            bounds,
            counts,
            int(payload.get("count", 0)),
            float(payload.get("max", 0.0)),
        )

    @property
    def count(self) -> int:
        return self._count

    def bucket_counts(self) -> list[tuple[float, int]]:
        out: list[tuple[float, int]] = []
        cum = 0
        for ub, c in zip(self.bounds, self._counts):
            cum += c
            out.append((ub, cum))
        out.append((math.inf, cum + (self._counts[-1] if self._counts else 0)))
        return out

    def summary(self) -> _WireSummary:
        return _WireSummary(count=self._count, max=self._max)


@dataclass(frozen=True)
class ServiceRecord:
    """Outcome of one submitted query.

    Attributes
    ----------
    arrival_ms, num_buckets, response_time_ms, assignment, degraded,
    decision_time_ms:
        As in PR 1: the admission timestamp, query size, scheduled
        response time, bucket→disk map (keyed by the query's labels),
        whether failed disks were routed around, and the solve latency.
    query:
        The object originally submitted — a
        :class:`~repro.workloads.RangeQuery`, an
        :class:`~repro.workloads.ArbitraryQuery`, or the raw coordinate
        list.
    cache_hit:
        Whether the decision warm-started from the network cache.
    batch_size:
        Number of queries jointly scheduled with this one (1 when the
        service runs in per-query mode).
    """

    arrival_ms: float
    num_buckets: int
    response_time_ms: float
    assignment: dict
    degraded: bool
    decision_time_ms: float
    query: object = None
    cache_hit: bool = False
    batch_size: int = 1


@dataclass
class ServiceStats:
    """Aggregates over the service's lifetime.

    ``p50_response_ms`` / ``p95_response_ms`` are interpolated from the
    always-on registry histograms at snapshot time (not running fields);
    they are 0.0 until the first query.
    """

    queries: int = 0
    buckets: int = 0
    total_response_ms: float = 0.0
    max_response_ms: float = 0.0
    total_decision_ms: float = 0.0
    degraded_queries: int = 0
    per_disk_buckets: list[int] = field(default_factory=list)
    p50_response_ms: float = 0.0
    p95_response_ms: float = 0.0
    cache_hits: int = 0
    batches: int = 0

    @property
    def mean_response_ms(self) -> float:
        return self.total_response_ms / self.queries if self.queries else 0.0

    @property
    def mean_decision_ms(self) -> float:
        return self.total_decision_ms / self.queries if self.queries else 0.0

    # ------------------------------------------------------------------
    def merge(self, other: "ServiceStats") -> "ServiceStats":
        """Elementwise sum/max with another snapshot (sharded roll-up).

        Percentile fields are *not* merged here — quantiles do not add;
        :class:`~repro.service.ShardedSchedulerService` recomputes them
        from the shards' combined histogram buckets.
        """
        return ServiceStats(
            queries=self.queries + other.queries,
            buckets=self.buckets + other.buckets,
            total_response_ms=self.total_response_ms + other.total_response_ms,
            max_response_ms=max(self.max_response_ms, other.max_response_ms),
            total_decision_ms=self.total_decision_ms + other.total_decision_ms,
            degraded_queries=self.degraded_queries + other.degraded_queries,
            per_disk_buckets=list(self.per_disk_buckets)
            + list(other.per_disk_buckets),
            cache_hits=self.cache_hits + other.cache_hits,
            batches=self.batches + other.batches,
        )
