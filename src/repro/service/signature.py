"""Cross-process-stable replica-set signature hashing.

Both routing layers key on the same thing: the *signature* of a query —
its sorted bucket coordinates, which determine the replica sets and
therefore which warm :class:`~repro.service.cache.NetworkCache` entries
and :class:`~repro.fleet.pool.SolveFleet` lanes can serve it.
``ShardedSchedulerService`` routes signatures to in-process shards;
``repro.cluster``'s :class:`~repro.cluster.router.RoutingProxy` routes
them to backend servers.  For the two layers to agree on placement —
and for placement to survive a process restart — the hash must be a
function of the *bytes* of the signature, not of interpreter state.

This module is that shared definition: a canonical byte encoding of the
sorted coordinates, SHA-256 over it, and a rendezvous
(highest-random-weight) score for cluster membership.

Compatibility note: before 1.4.0, ``ShardedSchedulerService.shard_of``
used the builtin ``hash()`` over the coordinate tuple.  That *is*
deterministic across processes for int tuples (``PYTHONHASHSEED`` only
perturbs str/bytes), but it is an implementation detail of CPython's
tuple hash, differs across Python versions and implementations, and has
no byte-level definition a non-Python router could reproduce.  1.4.0
switched both layers to the SHA-256 hash below, which changes which
shard a given signature lands on — harmless (any shard serves any
query; only cache warmth moves) but visible in tests that pinned shard
ids.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.workloads.queries import ArbitraryQuery, RangeQuery

__all__ = [
    "Signature",
    "signature_of",
    "signature_bytes",
    "stable_signature_hash",
    "rendezvous_score",
    "rendezvous_choice",
]

#: a query's signature: its bucket coordinates, sorted and tupled
Signature = tuple[tuple[int, int], ...]

QueryLike = Sequence[tuple[int, int]] | RangeQuery | ArbitraryQuery


def signature_of(query: QueryLike) -> Signature:
    """The canonical signature of a query: sorted coordinate tuples."""
    if isinstance(query, (RangeQuery, ArbitraryQuery)):
        coords: Iterable[Sequence[int]] = query.buckets()
    else:
        coords = query
    return tuple(sorted((int(c[0]), int(c[1])) for c in coords))


def signature_bytes(signature: Signature) -> bytes:
    """A canonical byte encoding: ``b"i,j;i,j;..."`` in sorted order.

    Decimal ASCII with explicit separators is unambiguous (no coordinate
    pair can collide with another's encoding) and trivially reproducible
    from any language.
    """
    return ";".join(f"{i},{j}" for i, j in signature).encode("ascii")


def stable_signature_hash(query: QueryLike) -> int:
    """A 64-bit hash of the query's signature, stable across processes.

    The first 8 bytes of SHA-256 over :func:`signature_bytes`.  Use it
    modulo the shard/lane count for placement; equal signatures hash
    equal in every process, on every platform, in every Python version.
    """
    digest = hashlib.sha256(signature_bytes(signature_of(query))).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_score(key: bytes, member_id: str) -> int:
    """Highest-random-weight score of ``member_id`` for routing ``key``.

    SHA-256 over ``key || 0x00 || member_id``: each (key, member) pair
    gets an independent uniform score, so routing a key to the live
    member with the highest score moves only the keys owned by a member
    when that member joins or leaves — every other key keeps its
    placement (and its warm caches).
    """
    digest = hashlib.sha256(key + b"\x00" + member_id.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def rendezvous_choice(key: bytes, member_ids: Iterable[str]) -> str:
    """The member with the highest rendezvous score for ``key``.

    Ties (cryptographically negligible) break toward the smaller id so
    the choice is total. Raises ``ValueError`` on an empty member set.
    """
    best: str | None = None
    best_score = -1
    for member_id in member_ids:
        score = rendezvous_score(key, member_id)
        if score > best_score or (score == best_score and (
            best is None or member_id < best
        )):
            best, best_score = member_id, score
    if best is None:
        raise ValueError("rendezvous over an empty member set")
    return best
