"""Service configuration: one object for every scheduler knob.

``ServiceConfig`` consolidates what used to be loose keyword arguments
(``solver``, ``solver_kwargs``, ``time_fn``, ``registry``) and adds the
concurrent-pipeline knobs (``batch_window_ms``, ``cache_size``) in one
place, so a deployment's scheduling policy can be constructed, logged and
passed around as a value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Mapping

from repro.obs.registry import MetricsRegistry
from repro.online.config import OnlineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.pool import SolveFleet

__all__ = ["ServiceConfig", "perf_ms"]

#: admissible scheduling modes
_MODES = ("offline", "online")


def perf_ms() -> float:
    """The default service clock: ``time.perf_counter()`` in milliseconds."""
    return time.perf_counter() * 1000.0


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduling policy for a :class:`~repro.service.SchedulerService`.

    Attributes
    ----------
    solver:
        Registry solver used per decision (default: the paper's
        integrated Algorithm 6, ``pr-binary``).
    solver_kwargs:
        Forwarded to the solver constructor on every solve.
    time_fn:
        Injectable clock returning milliseconds (tests pass a fake);
        ``None`` selects :func:`perf_ms`.
    registry:
        Metrics sink; ``None`` gives the service a private
        :class:`~repro.obs.MetricsRegistry`.
    batch_window_ms:
        When positive, concurrently arriving submits are coalesced for
        this many *real* milliseconds into one joint ``solve_batch``
        schedule (batched admission).  ``0`` (default) schedules every
        query individually.
    cache_size:
        Capacity of the warm-start network cache (entries keyed by the
        query's replica-set signature).  ``0`` disables caching.  Only
        solvers that support warm starts use the cache; others fall back
        to cold solves transparently.  Under the ``process`` backend the
        cache lives *inside* each worker (signature-affine lanes keep it
        warm); this knob sizes those worker caches instead.
    solve_backend:
        Where solves execute: ``"thread"`` (in the calling thread — the
        historical behaviour) or ``"process"`` (a
        :class:`~repro.fleet.SolveFleet` worker, escaping the GIL).
        ``None`` defers to the ``REPRO_SOLVE_BACKEND`` environment
        variable, defaulting to ``"thread"`` — which is how CI matrixes
        the whole fast suite over both backends with zero code changes.
    fleet_workers:
        Lane count for a ``process`` backend built by this config
        (ignored when ``fleet`` is provided or the backend is
        ``thread``).
    fleet:
        A pre-built :class:`~repro.fleet.SolveFleet` to share (the
        sharded service hands every shard the same fleet).  The service
        does not take ownership — whoever built the fleet closes it.
    mode:
        ``"offline"`` (default): the historical behaviour — every query
        is scheduled against a static busy horizon and never departs.
        ``"online"``: continuous-time scheduling — constructing a
        :class:`~repro.service.SchedulerService` with this mode yields
        an :class:`~repro.online.OnlineScheduler` (arrivals, drains,
        decremental flow repair, predictive admission).  Incompatible
        with ``batch_window_ms > 0``.
    online:
        Online-mode policy, grouped in one nested
        :class:`~repro.online.OnlineConfig` value instead of more
        top-level kwargs.  ``None`` → defaults; only meaningful with
        ``mode="online"`` (setting it in offline mode is an error).
    """

    solver: str = "pr-binary"
    solver_kwargs: Mapping[str, object] = field(default_factory=dict)
    time_fn: Callable[[], float] | None = None
    registry: MetricsRegistry | None = None
    batch_window_ms: float = 0.0
    cache_size: int = 64
    solve_backend: str | None = None
    fleet_workers: int = 1
    fleet: "SolveFleet | None" = None
    mode: str = "offline"
    online: OnlineConfig | None = None

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.fleet_workers < 1:
            raise ValueError(
                f"fleet_workers must be >= 1, got {self.fleet_workers}"
            )
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.mode == "online" and self.batch_window_ms > 0:
            raise ValueError(
                "mode='online' is incompatible with batched admission "
                f"(batch_window_ms={self.batch_window_ms}): arrivals are "
                "already coalesced by the event clock"
            )
        if self.online is not None and self.mode != "online":
            raise ValueError(
                "online=OnlineConfig(...) requires mode='online'"
            )

    # ------------------------------------------------------------------
    def resolved_time_fn(self) -> Callable[[], float]:
        return self.time_fn if self.time_fn is not None else perf_ms

    def resolved_online(self) -> OnlineConfig:
        """The effective online policy (explicit value or defaults)."""
        return self.online if self.online is not None else OnlineConfig()

    def resolved_solve_backend(self) -> str:
        """The effective backend name (explicit > env > ``thread``)."""
        from repro.fleet.backends import resolve_backend_name

        return resolve_backend_name(self.solve_backend)

    def with_changes(self, **changes: object) -> "ServiceConfig":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)
