"""Service configuration: one object for every scheduler knob.

``ServiceConfig`` consolidates what used to be loose keyword arguments
(``solver``, ``solver_kwargs``, ``time_fn``, ``registry``) and adds the
concurrent-pipeline knobs (``batch_window_ms``, ``cache_size``) in one
place, so a deployment's scheduling policy can be constructed, logged and
passed around as a value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.obs.registry import MetricsRegistry

__all__ = ["ServiceConfig", "perf_ms"]


def perf_ms() -> float:
    """The default service clock: ``time.perf_counter()`` in milliseconds."""
    return time.perf_counter() * 1000.0


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduling policy for a :class:`~repro.service.SchedulerService`.

    Attributes
    ----------
    solver:
        Registry solver used per decision (default: the paper's
        integrated Algorithm 6, ``pr-binary``).
    solver_kwargs:
        Forwarded to the solver constructor on every solve.
    time_fn:
        Injectable clock returning milliseconds (tests pass a fake);
        ``None`` selects :func:`perf_ms`.
    registry:
        Metrics sink; ``None`` gives the service a private
        :class:`~repro.obs.MetricsRegistry`.
    batch_window_ms:
        When positive, concurrently arriving submits are coalesced for
        this many *real* milliseconds into one joint ``solve_batch``
        schedule (batched admission).  ``0`` (default) schedules every
        query individually.
    cache_size:
        Capacity of the warm-start network cache (entries keyed by the
        query's replica-set signature).  ``0`` disables caching.  Only
        solvers that support warm starts use the cache; others fall back
        to cold solves transparently.
    """

    solver: str = "pr-binary"
    solver_kwargs: Mapping[str, object] = field(default_factory=dict)
    time_fn: Callable[[], float] | None = None
    registry: MetricsRegistry | None = None
    batch_window_ms: float = 0.0
    cache_size: int = 64

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")

    # ------------------------------------------------------------------
    def resolved_time_fn(self) -> Callable[[], float]:
        return self.time_fn if self.time_fn is not None else perf_ms

    def with_changes(self, **changes: object) -> "ServiceConfig":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)
