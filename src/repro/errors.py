"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by this library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while letting genuine bugs (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidArcError",
    "InvalidVertexError",
    "FlowValidationError",
    "DeclusteringError",
    "StorageConfigError",
    "InfeasibleScheduleError",
    "PredictedOverloadError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for flow-network structural errors."""


class InvalidVertexError(GraphError):
    """A vertex id is out of range or otherwise unusable."""


class InvalidArcError(GraphError):
    """An arc id is out of range, or an arc operation is illegal."""


class FlowValidationError(GraphError):
    """A flow/preflow assignment violates capacity or conservation."""


class DeclusteringError(ReproError):
    """An allocation scheme was asked for parameters it cannot satisfy."""


class StorageConfigError(ReproError):
    """A storage system description is inconsistent or incomplete."""


class InfeasibleScheduleError(ReproError):
    """No retrieval schedule exists (e.g. a bucket has no replica)."""


class WorkloadError(ReproError):
    """A query/load generator was configured with invalid parameters."""


class PredictedOverloadError(ReproError):
    """Admission control shed a query on its *predicted* response time.

    Raised by the online scheduler when the lower bound on the query's
    achievable response time (current busy horizons + candidate
    makespan) already exceeds the admission target — before any solve
    runs.  Carries enough context for a frontend to answer with a
    retry hint (:mod:`repro.net` maps it onto the ``OVERLOADED`` /
    ``retry_after_ms`` wire path).

    Attributes
    ----------
    predicted_ms:
        The proven lower bound on the response time the query would see.
    target_ms:
        The admission target it violated (config bound or per-call
        deadline, whichever is tighter).
    retry_after_ms:
        Suggested client backoff: how long until the bound could drop
        below the target, plus configured slack.
    """

    def __init__(
        self,
        message: str,
        *,
        predicted_ms: float,
        target_ms: float,
        retry_after_ms: float,
    ) -> None:
        super().__init__(message)
        self.predicted_ms = predicted_ms
        self.target_ms = target_ms
        self.retry_after_ms = retry_after_ms
