"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by this library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while letting genuine bugs (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidArcError",
    "InvalidVertexError",
    "FlowValidationError",
    "DeclusteringError",
    "StorageConfigError",
    "InfeasibleScheduleError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for flow-network structural errors."""


class InvalidVertexError(GraphError):
    """A vertex id is out of range or otherwise unusable."""


class InvalidArcError(GraphError):
    """An arc id is out of range, or an arc operation is illegal."""


class FlowValidationError(GraphError):
    """A flow/preflow assignment violates capacity or conservation."""


class DeclusteringError(ReproError):
    """An allocation scheme was asked for parameters it cannot satisfy."""


class StorageConfigError(ReproError):
    """A storage system description is inconsistent or incomplete."""


class InfeasibleScheduleError(ReproError):
    """No retrieval schedule exists (e.g. a bucket has no replica)."""


class WorkloadError(ReproError):
    """A query/load generator was configured with invalid parameters."""
