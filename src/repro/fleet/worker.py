"""Code that runs *inside* fleet worker processes.

Everything here is a module-level function so the stdlib executor can
pickle references to it under any multiprocessing start method ("fork"
or "spawn").  Worker-side state is process-global by design:

``_CACHES``
    One :class:`~repro.service.cache.NetworkCache` per fleet namespace.
    Because a :class:`~repro.fleet.pool.SolveFleet` routes every replica
    signature to a fixed lane (and each lane is a single-process pool),
    a worker's cache sees exactly the signatures hashed to it — the
    per-worker warm-cache affinity that keeps the service-layer hit rate
    intact across the process boundary.

The solve path mirrors ``SchedulerService._solve_locked`` exactly: cold
signature → fresh network; warm signature → rebind + restore conserved
flow; then one registry solve.  With ``cache_size=0`` the worker is a
pure function of its payload, which is what the cross-process
differential suite leans on for bit-for-bit ``SolverStats`` equality.
"""

from __future__ import annotations

import json
import os
import signal
from typing import Any

from repro.core.api import SOLVERS, solve
from repro.core.network import RetrievalNetwork
from repro.fleet.codec import (
    FLAT_PAYLOAD_VERSION,
    PAYLOAD_VERSION,
    decode_problem,
    encode_schedule,
)
from repro.graph.io import from_json, to_json
from repro.maxflow.push_relabel import push_relabel
from repro.obs.registry import MetricsRegistry
from repro.service.cache import NetworkCache

__all__ = [
    "worker_codec_version",
    "worker_solve",
    "worker_maxflow",
    "worker_pid",
    "worker_die",
]

#: per-process warm caches, keyed by fleet namespace
_CACHES: dict[str, NetworkCache] = {}


def _cache_for(namespace: str, size: int) -> NetworkCache | None:
    if size <= 0:
        return None
    cache = _CACHES.get(namespace)
    if cache is None:
        cache = NetworkCache(size, MetricsRegistry())
        _CACHES[namespace] = cache
    return cache


def worker_codec_version() -> int:
    """The newest fleet payload version this worker can decode.

    Coordinators call this once per lane (at warmup and after a lane
    rebuild) and encode with ``min(coordinator, worker)`` — the
    negotiation that lets a new coordinator drive an old worker (and
    vice versa) at v1 instead of failing.
    """
    return FLAT_PAYLOAD_VERSION


def worker_solve(payload: dict[str, Any]) -> dict[str, Any]:
    """One scheduling solve in this worker process.

    Payload keys: ``problem`` (codec payload), ``solver``,
    ``solver_kwargs``, ``cache_ns``, ``cache_size``.  Returns
    ``{"schedule": ..., "cache_hit": ..., "pid": ...}`` with the
    schedule encoded in the *same* codec version the problem arrived
    in, so a v1 coordinator never sees a v2 reply.
    """
    problem_payload = payload["problem"]
    reply_version = PAYLOAD_VERSION
    if isinstance(problem_payload, dict):
        v = problem_payload.get("version", PAYLOAD_VERSION)
        if isinstance(v, int) and not isinstance(v, bool):
            reply_version = v
    problem = decode_problem(problem_payload)
    solver = str(payload.get("solver", "pr-binary"))
    solver_kwargs = dict(payload.get("solver_kwargs") or {})
    solver_cls = SOLVERS.get(solver)
    warmable = bool(getattr(solver_cls, "supports_warm_start", False))
    cache = (
        _cache_for(str(payload.get("cache_ns", "")), int(payload.get("cache_size", 0)))
        if warmable
        else None
    )

    cache_hit = False
    if cache is None:
        schedule = solve(problem, solver=solver, **solver_kwargs)
    else:
        signature = problem.replicas
        entry = cache.get(signature)
        if entry is not None:
            network = entry.network
            network.rebind(problem)
            if entry.flow is not None:
                network.graph.restore_flow(entry.flow)
            else:
                network.graph.reset_flow()
            cache_hit = True
        else:
            network = RetrievalNetwork(problem)
        schedule = solve(
            problem, solver=solver, network=network, **solver_kwargs
        )
        cache.put(signature, network, network.graph.save_flow())
    return {
        "schedule": encode_schedule(schedule, version=reply_version),
        "cache_hit": cache_hit,
        "pid": os.getpid(),
    }


def worker_maxflow(payload_json: str) -> str:
    """Solve one max-flow sub-instance shipped as graph-io JSON.

    The partitioned push–relabel variant sends each worker a capacity
    slice of the full retrieval network; the worker runs the sequential
    integer engine and returns a JSON envelope holding the solved
    network (flows included, same graph-io format) plus exact operation
    counts for the coordinator to aggregate.
    """
    g, s, t = from_json(payload_json)
    result = push_relabel(g, s, t)
    return json.dumps(
        {
            "network": to_json(g, s, t),
            "value": result.value,
            "pushes": result.pushes,
            "relabels": result.relabels,
        },
        separators=(",", ":"),
    )


def worker_pid() -> int:
    """Identify this worker (warmup + affinity tests)."""
    return os.getpid()


def worker_die(sig: int = signal.SIGKILL) -> None:
    """Kill this worker from the inside — fault-injection hook.

    Sending SIGKILL to ourselves models a worker dying mid-solve (OOM
    kill, segfault); the parent sees ``BrokenProcessPool`` on the
    in-flight future.
    """
    os.kill(os.getpid(), sig)
