"""Multi-process partitioned push–relabel with an explicit merge step.

The threaded Hong & He engine (:mod:`repro.maxflow.parallel_push_relabel`)
reproduces the paper's parallel *schedule* but cannot exceed 1x CPU-bound
speedup under the GIL.  This variant escapes to processes by exploiting
the retrieval network's structure (Figure 4): the bucket vertex range is
split into ``K`` contiguous slices, and each worker process solves an
independent capacity slice of the full network —

* source→bucket arcs outside the worker's slice are capped at 0, so a
  worker routes only its own buckets;
* every disk→sink capacity is split into ``K`` integer shares (floor
  plus round-robin remainder, offset by disk id so no lane collects all
  the remainders) that sum exactly to the original capacity.

Sub-instances travel as :mod:`repro.graph.io` integer JSON — the same
codec both directions, so arc ids line up and the **merge step** is
arc-wise flow summation.  The merged assignment is a valid flow of the
original network by construction: each source arc carries flow in
exactly one slice, bucket→disk arcs are reachable from exactly one
slice, and the sink shares sum to the original capacities.  It is not
necessarily *maximum* (a unified sink capacity can route what rigid
shares strand), so a warm-started sequential push–relabel finishes the
job — flow conservation means it only adds, never redoes, work.  The
result is the exact integer max flow, ``==``-comparable against any
sequential engine.
"""

from __future__ import annotations

import json
from concurrent.futures import Executor, ProcessPoolExecutor

from repro.core.network import RetrievalNetwork
from repro.errors import GraphError
from repro.fleet.pool import default_mp_context
from repro.fleet.worker import worker_maxflow
from repro.graph.io import from_json, to_json
from repro.maxflow.base import MaxFlowResult
from repro.maxflow.push_relabel import push_relabel

__all__ = ["partitioned_push_relabel", "bucket_slices", "split_sink_caps"]


def bucket_slices(num_buckets: int, num_workers: int) -> list[range]:
    """Split ``range(num_buckets)`` into ``num_workers`` contiguous runs."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    base, rem = divmod(num_buckets, num_workers)
    slices = []
    start = 0
    for k in range(num_workers):
        size = base + (1 if k < rem else 0)
        slices.append(range(start, start + size))
        start += size
    return slices


def split_sink_caps(caps: list[int], num_workers: int) -> list[list[int]]:
    """Integer shares per worker, summing exactly to each capacity.

    ``shares[k][j] = caps[j] // K`` plus one unit of the remainder when
    ``(k + j) % K < caps[j] % K`` — the disk-id offset rotates which
    lanes receive remainders so the extra capacity spreads evenly.
    """
    shares = [[0] * len(caps) for _ in range(num_workers)]
    for j, cap in enumerate(caps):
        base, rem = divmod(cap, num_workers)
        for k in range(num_workers):
            shares[k][j] = base + (1 if (k + j) % num_workers < rem else 0)
    return shares


def _slice_payload(
    network: RetrievalNetwork, buckets: range, sink_share: list[int]
) -> str:
    """One worker's sub-instance: full topology, sliced capacities."""
    g = network.graph.copy()
    g.reset_flow()
    allowed = set(buckets)
    for i, a in enumerate(network.source_arcs):
        if i not in allowed:
            g.set_capacity(a, 0)
    for j, a in enumerate(network.sink_arcs):
        g.set_capacity(a, sink_share[j])
    return to_json(g, network.source, network.sink)


def partitioned_push_relabel(
    network: RetrievalNetwork,
    *,
    num_workers: int = 2,
    executor: Executor | None = None,
) -> MaxFlowResult:
    """Max flow of ``network`` at its current capacities, across processes.

    Parameters
    ----------
    network:
        A retrieval network with disk→sink capacities already set (e.g.
        via :meth:`~repro.core.network.RetrievalNetwork.set_deadline_capacities`).
        Its flow is overwritten with the computed maximum flow, exactly
        like the sequential engines.
    num_workers:
        Bucket slices / worker processes.
    executor:
        An existing executor to run workers on (tests reuse one pool
        across instances); ``None`` creates a private process pool for
        this call and tears it down afterwards.

    Returns a :class:`~repro.maxflow.MaxFlowResult` whose ``value`` is
    the exact integer max flow; ``extra["partition"]`` records the merge
    accounting (per-slice values, merged pre-finish value, finish work).
    """
    problem = network.problem
    slices = bucket_slices(problem.num_buckets, num_workers)
    shares = split_sink_caps(network.sink_caps(), num_workers)
    payloads = [
        _slice_payload(network, slc, shares[k])
        for k, slc in enumerate(slices)
    ]

    own_pool = executor is None
    pool: Executor = (
        ProcessPoolExecutor(max_workers=num_workers, mp_context=default_mp_context())
        if own_pool
        else executor
    )
    try:
        futures = [pool.submit(worker_maxflow, p) for p in payloads]
        replies = [json.loads(f.result()) for f in futures]
    finally:
        if own_pool:
            pool.shutdown(wait=True)

    # merge: arc-wise sum of the per-slice flows onto the original graph
    g = network.graph
    merged = [0] * g.num_arc_slots
    slice_values = []
    pushes = relabels = 0
    for reply in replies:
        sub, _s, _t = from_json(reply["network"])
        if sub.num_arc_slots != g.num_arc_slots:
            raise GraphError(
                f"worker returned {sub.num_arc_slots} arc slots, "
                f"expected {g.num_arc_slots}"
            )
        for a in range(g.num_arc_slots):
            merged[a] += sub.flow[a]
        slice_values.append(int(reply["value"]))
        pushes += int(reply["pushes"])
        relabels += int(reply["relabels"])
    for a in range(0, g.num_arc_slots, 2):
        if merged[a] > g.cap[a]:
            raise GraphError(
                f"merged flow {merged[a]} exceeds capacity {g.cap[a]} on "
                f"arc {a} — bucket slices were not disjoint"
            )
    # per-slice flows are each antisymmetric, so their sum is a valid
    # snapshot for restore_flow (which also re-checks the invariant)
    g.restore_flow(merged)
    merged_value = network.flow_value()

    # finish: warm-started sequential push-relabel tops the merged flow
    # up to the true maximum under the *unified* sink capacities
    finish = push_relabel(g, network.source, network.sink, warm_start=True)
    return MaxFlowResult(
        value=finish.value,
        pushes=pushes + finish.pushes,
        relabels=relabels + finish.relabels,
        extra={
            "partition": {
                "num_workers": num_workers,
                "bucket_slices": [[r.start, r.stop] for r in slices],
                "slice_values": slice_values,
                "merged_value": merged_value,
                "finish_pushes": finish.pushes,
                "finish_relabels": finish.relabels,
            }
        },
    )
