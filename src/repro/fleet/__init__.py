"""repro.fleet — multi-process solve execution (breaking the GIL).

The paper's parallel push–relabel claims (Figure 10) assume threads that
actually run concurrently; CPython's are serialized by the GIL.  This
package is the reproduction's escape hatch, with three layers:

* :mod:`repro.fleet.codec` — problems and schedules as exact payloads
  that cross process boundaries without drift: JSON-safe dicts (v1)
  or flat ``array('q')``-bytes columns (v2), negotiated per worker;
* :mod:`repro.fleet.pool` — :class:`SolveFleet`, signature-affine lanes
  of worker processes with warm per-worker caches and crash recovery;
* :mod:`repro.fleet.backends` — the ``thread``/``process`` backend
  registry the service layer and CI matrix select from;
* :mod:`repro.fleet.parallel` — a true multi-process
  ``parallel_push_relabel`` variant: partition by bucket vertex range,
  solve slices in workers, merge arc-wise, finish warm.
"""

from repro.fleet.backends import (
    BACKENDS,
    SOLVE_BACKEND_ENV,
    ProcessSolveBackend,
    SolveBackend,
    ThreadSolveBackend,
    make_backend,
    resolve_backend_name,
)
from repro.fleet.codec import (
    FLAT_PAYLOAD_VERSION,
    PAYLOAD_VERSION,
    SUPPORTED_PAYLOAD_VERSIONS,
    CodecError,
    decode_problem,
    decode_schedule,
    encode_problem,
    encode_schedule,
    problem_from_json,
    problem_to_json,
)
from repro.fleet.parallel import partitioned_push_relabel
from repro.fleet.pool import SolveFleet, WorkerCrashedError

__all__ = [
    "BACKENDS",
    "SOLVE_BACKEND_ENV",
    "CodecError",
    "FLAT_PAYLOAD_VERSION",
    "PAYLOAD_VERSION",
    "SUPPORTED_PAYLOAD_VERSIONS",
    "ProcessSolveBackend",
    "SolveBackend",
    "SolveFleet",
    "ThreadSolveBackend",
    "WorkerCrashedError",
    "decode_problem",
    "decode_schedule",
    "encode_problem",
    "encode_schedule",
    "make_backend",
    "partitioned_push_relabel",
    "problem_from_json",
    "problem_to_json",
    "resolve_backend_name",
]
