"""The solve fleet: signature-affine lanes of worker processes.

CPython threads cannot exceed ~1x CPU-bound speedup (DESIGN.md §2), so
the fleet escapes the GIL the way PyMOSO's ``par_runs`` harness does —
``concurrent.futures`` process pools — but with one twist: instead of a
single K-worker pool, it keeps **K single-worker lanes** and routes each
solve to ``hash(replica signature) % K``.

Why lanes, not one pool?  The service-layer warm-start cache is keyed by
replica signature; a shared pool would scatter repeat signatures across
workers and shred the ~0.94 hit rate the benchmarks rely on.  With
lanes, a signature always lands in the same process, whose module-level
:class:`~repro.service.cache.NetworkCache` stays warm — per-worker cache
affinity across the process boundary.

Fault containment: a worker that dies mid-solve (OOM-kill, segfault)
surfaces as :class:`WorkerCrashedError` on that one solve.  The lane's
executor is rebuilt on the spot (cold cache, fresh process) so the next
solve routed there succeeds.  The error deliberately does **not** extend
:class:`~repro.errors.ReproError`: the net server maps ``ReproError`` to
``INVALID_QUERY`` (a client bug), while a crashed worker is server-side
``INTERNAL`` — non-transient on the wire, so a client's
:class:`~repro.net.RetryPolicy` will not re-submit and at-most-once
submit semantics hold.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Mapping

import multiprocessing

from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule
from repro.fleet.codec import (
    FLAT_PAYLOAD_VERSION,
    PAYLOAD_VERSION,
    SUPPORTED_PAYLOAD_VERSIONS,
    decode_schedule,
    encode_problem,
)
from repro.fleet.worker import worker_codec_version, worker_pid, worker_solve

__all__ = ["WorkerCrashedError", "SolveFleet", "default_mp_context"]

#: environment override for the multiprocessing start method
MP_CONTEXT_ENV = "REPRO_FLEET_MP_CONTEXT"

#: environment override pinning the fleet codec version (e.g. ``1`` to
#: force the legacy JSON-dict payloads fleet-wide, skipping negotiation)
CODEC_ENV = "REPRO_FLEET_CODEC"


def _forced_codec_version() -> int | None:
    """The :data:`CODEC_ENV` override, validated, or ``None``."""
    raw = os.environ.get(CODEC_ENV)
    if not raw:
        return None
    try:
        version = int(raw)
    except ValueError:
        raise ValueError(
            f"{CODEC_ENV} must be an integer payload version, got {raw!r}"
        ) from None
    if version not in SUPPORTED_PAYLOAD_VERSIONS:
        raise ValueError(
            f"{CODEC_ENV}={version} unsupported "
            f"(supported: {SUPPORTED_PAYLOAD_VERSIONS})"
        )
    return version


class WorkerCrashedError(RuntimeError):
    """A fleet worker process died while a solve was in flight.

    Deliberately *not* a :class:`~repro.errors.ReproError` — the query
    was valid; the infrastructure failed.  Carries the lane index so
    operators can correlate with per-lane stats.
    """

    def __init__(self, lane: int, message: str) -> None:
        super().__init__(message)
        self.lane = lane


def default_mp_context() -> multiprocessing.context.BaseContext:
    """The start method the fleet uses unless told otherwise.

    ``fork`` where available (fast startup, shares the imported
    interpreter image); ``spawn`` elsewhere.  Override with the
    ``REPRO_FLEET_MP_CONTEXT`` environment variable.  Forked workers are
    started eagerly at fleet construction — before the caller spins up
    server threads — which sidesteps the fork-with-threads hazards.
    """
    name = os.environ.get(MP_CONTEXT_ENV)
    if not name:
        name = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(name)


class SolveFleet:
    """``num_workers`` single-worker process lanes with stable routing.

    Parameters
    ----------
    num_workers:
        Lane count.  Throughput scales with it only on multi-core
        machines (see docs/API.md, "Process fleet").
    solver, solver_kwargs:
        Registry solver every worker runs (matches ``ServiceConfig``).
    cache_size:
        Per-worker warm-cache capacity; ``0`` makes every worker solve
        a pure function of its payload (the differential suite's mode).
    mp_context:
        A multiprocessing context; ``None`` → :func:`default_mp_context`.
    warmup:
        Start every worker process eagerly and verify it answers a ping.
        Keep the default unless a test needs lazy lanes.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        solver: str = "pr-binary",
        solver_kwargs: Mapping[str, object] | None = None,
        cache_size: int = 64,
        mp_context: multiprocessing.context.BaseContext | None = None,
        warmup: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.num_workers = num_workers
        self.solver = solver
        self.solver_kwargs = dict(solver_kwargs or {})
        self.cache_size = cache_size
        self._ctx = mp_context if mp_context is not None else default_mp_context()
        self._lock = threading.Lock()
        self._closed = False
        #: namespace for the workers' module-level caches: distinct
        #: fleets sharing a worker process (possible under "fork" only
        #: via inheritance, but cheap to guard) must not mix entries
        self._ns = f"fleet-{id(self):x}"
        self._forced_codec = _forced_codec_version()
        #: per-lane negotiated payload version; ``None`` = not yet asked
        #: (resolved lazily at first use, re-asked after a lane rebuild)
        self._lane_codec: list[int | None] = [None] * num_workers
        self._lanes: list[ProcessPoolExecutor] = [
            self._new_lane() for _ in range(num_workers)
        ]
        self.solves_per_lane = [0] * num_workers
        self.crashes = 0
        if warmup:
            self.worker_pids()

    # ------------------------------------------------------------------
    def _new_lane(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=1, mp_context=self._ctx)

    def lane_of(self, signature: tuple[tuple[int, ...], ...]) -> int:
        """The stable home lane for a replica signature.

        ``hash()`` over int tuples is deterministic (PYTHONHASHSEED only
        perturbs str/bytes), so routing is stable across processes —
        the same property the sharded service relies on.
        """
        return hash(signature) % self.num_workers

    def worker_pids(self) -> list[int]:
        """Ping every lane; returns the worker pids in lane order."""
        futures = [self.submit_fn(k, worker_pid) for k in range(self.num_workers)]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    def submit_fn(
        self, lane: int, fn: Callable[..., Any], *args: Any
    ) -> Future[Any]:
        """Submit a raw callable to one lane (tests, warmup, pings)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("fleet is closed")
            executor = self._lanes[lane]
        try:
            return executor.submit(fn, *args)
        except BrokenProcessPool as exc:
            self._rebuild_lane(lane, executor)
            raise WorkerCrashedError(
                lane, f"lane {lane} worker was already dead: {exc}"
            ) from exc

    def _rebuild_lane(self, lane: int, broken: ProcessPoolExecutor) -> None:
        """Replace a lane's executor after its worker died (idempotent)."""
        with self._lock:
            self.crashes += 1
            if self._closed or self._lanes[lane] is not broken:
                return  # another thread already swapped it
            self._lanes[lane] = self._new_lane()
            # fresh process: its codec version must be re-negotiated
            self._lane_codec[lane] = None
        broken.shutdown(wait=False)

    def lane_codec_version(self, lane: int) -> int:
        """The payload version lane ``lane`` speaks (negotiated, cached).

        ``min(ours, theirs)`` so either side being older degrades the
        pair to the common version; the :data:`CODEC_ENV` override pins
        it without a round-trip.  Falls back to v1 — always decodable —
        if the worker predates :func:`worker_codec_version`.
        """
        if self._forced_codec is not None:
            return self._forced_codec
        cached = self._lane_codec[lane]
        if cached is not None:
            return cached
        try:
            theirs = int(self.submit_fn(lane, worker_codec_version).result())
        except WorkerCrashedError:
            raise
        except Exception:  # pragma: no cover - legacy worker images only
            theirs = PAYLOAD_VERSION
        version = min(FLAT_PAYLOAD_VERSION, theirs)
        if version not in SUPPORTED_PAYLOAD_VERSIONS:
            version = PAYLOAD_VERSION
        with self._lock:
            self._lane_codec[lane] = version
        return version

    # ------------------------------------------------------------------
    def solve(
        self, problem: RetrievalProblem, *, lane: int | None = None
    ) -> tuple[RetrievalSchedule, bool]:
        """Solve in the problem's home lane; returns (schedule, cache_hit).

        Raises :class:`WorkerCrashedError` if the worker dies mid-solve;
        the lane is rebuilt before the error propagates, so retrying the
        solve (the *caller's* decision) would succeed.
        """
        if lane is None:
            lane = self.lane_of(problem.replicas)
        payload = {
            "problem": encode_problem(
                problem, version=self.lane_codec_version(lane)
            ),
            "solver": self.solver,
            "solver_kwargs": self.solver_kwargs,
            "cache_ns": self._ns,
            "cache_size": self.cache_size,
        }
        with self._lock:
            if self._closed:
                raise RuntimeError("fleet is closed")
            executor = self._lanes[lane]
        try:
            future = executor.submit(worker_solve, payload)
            result = future.result()
        except BrokenProcessPool as exc:
            self._rebuild_lane(lane, executor)
            raise WorkerCrashedError(
                lane, f"lane {lane} worker died mid-solve: {exc}"
            ) from exc
        with self._lock:
            self.solves_per_lane[lane] += 1
        schedule = decode_schedule(result["schedule"], problem)
        return schedule, bool(result["cache_hit"])

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down every lane (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes)
        for executor in lanes:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SolveFleet":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveFleet({self.num_workers} lanes, solver={self.solver!r}, "
            f"cache_size={self.cache_size})"
        )
