"""Cross-process codec: problems and schedules as fleet payloads.

A :class:`~repro.core.RetrievalProblem` closes over live
:class:`~repro.storage.StorageSystem` objects (mutable disks, NumPy
views); pickling those wholesale would ship object graphs whose identity
semantics do not survive a process boundary.  Instead the fleet ships
*values* in one of two wire forms, negotiated per worker:

* **v1** (:data:`PAYLOAD_VERSION`) — plain dicts of JSON scalars, in
  the spirit of :mod:`repro.graph.io`'s integer JSON round-trip.  Every
  v1 payload is also valid JSON text (:func:`problem_to_json` /
  :func:`problem_from_json`), which keeps it the debugging and
  interchange form.
* **v2** (:data:`FLAT_PAYLOAD_VERSION`) — flat-array payloads: the
  numeric columns travel as ``array('q')``/``array('d')`` **bytes**
  plus explicit shape headers (per-site disk counts, replica offsets),
  so a process lane ships a handful of contiguous buffers instead of a
  tree of per-disk dicts.  ``array('q').tobytes()`` is a C-level copy
  on both ends, and ``array('d')`` round-trips every float
  bit-for-bit.  Decoders still reject malformed values loudly —
  fractional ints cannot even be represented, and shape mismatches
  raise :class:`CodecError`.

Exactness contract (both versions)
----------------------------------
* replica disk ids, bucket counts, stats counters: native ints, and the
  decoder rejects fractional values with :class:`CodecError` (a
  :class:`~repro.errors.GraphError`) instead of rounding;
* ``C_j``/``D_j``/``X_j``/response times: Python floats, round-tripped
  bit-for-bit (``repr``-based JSON in v1, IEEE-754 bytes in v2), so the
  worker's ``finish_time``/``capacity_at`` arithmetic is performed on
  the *same* floats the coordinator holds and the returned makespan
  compares ``==`` against an in-process solve.

Version negotiation: a coordinator asks each worker its
:func:`~repro.fleet.worker.worker_codec_version` and encodes with
``min(ours, theirs)``; a worker always replies in the version the
request arrived in, so a v1-only peer on either side degrades the pair
to v1, never to an error.
"""

from __future__ import annotations

import json
from array import array
from typing import Any

from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.errors import GraphError
from repro.storage.disk import Disk, DiskSpec
from repro.storage.site import Site
from repro.storage.system import StorageSystem

__all__ = [
    "CodecError",
    "PAYLOAD_VERSION",
    "FLAT_PAYLOAD_VERSION",
    "SUPPORTED_PAYLOAD_VERSIONS",
    "encode_problem",
    "decode_problem",
    "encode_schedule",
    "decode_schedule",
    "problem_to_json",
    "problem_from_json",
]

#: the JSON-dict payload schema (v1) — the debugging/interchange form
PAYLOAD_VERSION = 1

#: the flat-array payload schema (v2) — array bytes + shape headers
FLAT_PAYLOAD_VERSION = 2

#: every version this build can decode (and encode on request)
SUPPORTED_PAYLOAD_VERSIONS = (PAYLOAD_VERSION, FLAT_PAYLOAD_VERSION)


class CodecError(GraphError):
    """A fleet payload failed to encode or decode exactly."""


def _exact_int(value: Any, what: str) -> int:
    """Coerce a payload number to an int, rejecting non-integral values."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"{what} must be a number, got {value!r}")
    as_int = int(value)
    if as_int != value:
        raise CodecError(f"{what} must be integral, got {value!r}")
    return as_int


def _float(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"{what} must be a number, got {value!r}")
    return float(value)


def _int_column(payload: dict[str, Any], key: str, count: int | None = None) -> list[int]:
    """Decode an ``array('q')`` bytes column, validating its shape."""
    value = payload.get(key)
    if not isinstance(value, (bytes, bytearray)):
        raise CodecError(
            f"{key!r} must be array('q') bytes, got {type(value).__name__}"
        )
    arr = array("q")
    if len(value) % arr.itemsize:
        raise CodecError(
            f"{key!r} has {len(value)} bytes, not a multiple of "
            f"{arr.itemsize}"
        )
    arr.frombytes(bytes(value))
    if count is not None and len(arr) != count:
        raise CodecError(f"{key!r} has {len(arr)} entries, expected {count}")
    return arr.tolist()


def _float_column(payload: dict[str, Any], key: str, count: int) -> list[float]:
    """Decode an ``array('d')`` bytes column (bit-exact IEEE-754)."""
    value = payload.get(key)
    if not isinstance(value, (bytes, bytearray)):
        raise CodecError(
            f"{key!r} must be array('d') bytes, got {type(value).__name__}"
        )
    arr = array("d")
    if len(value) % arr.itemsize:
        raise CodecError(
            f"{key!r} has {len(value)} bytes, not a multiple of "
            f"{arr.itemsize}"
        )
    arr.frombytes(bytes(value))
    if len(arr) != count:
        raise CodecError(f"{key!r} has {len(arr)} entries, expected {count}")
    return arr.tolist()


def _q_bytes(values: list[int], what: str) -> bytes:
    try:
        return array("q", values).tobytes()
    except OverflowError as exc:
        raise CodecError(f"{what} outside int64 wire range") from exc


def _jsonable_label(label: Any) -> Any:
    """Tuples nest to lists for JSON; everything else passes through."""
    if isinstance(label, tuple):
        return [_jsonable_label(x) for x in label]
    return label


def _label_from_wire(label: Any) -> Any:
    """Inverse of :func:`_jsonable_label` (lists come back as tuples)."""
    if isinstance(label, list):
        return tuple(_label_from_wire(x) for x in label)
    return label


# ----------------------------------------------------------------------
# problems
# ----------------------------------------------------------------------
def encode_problem(
    problem: RetrievalProblem, *, version: int = PAYLOAD_VERSION
) -> dict[str, Any]:
    """The problem — system state included — as a wire payload.

    ``version`` selects the schema: v1 is the JSON-safe dict tree, v2
    the flat-array form (see module docstring).  Coordinators pass the
    per-worker negotiated version; the default stays v1 so the JSON
    text interchange (:func:`problem_to_json`) is unchanged.
    """
    if version not in SUPPORTED_PAYLOAD_VERSIONS:
        raise CodecError(
            f"cannot encode fleet payload version {version!r} "
            f"(supported: {SUPPORTED_PAYLOAD_VERSIONS})"
        )
    sys_ = problem.system
    if version == FLAT_PAYLOAD_VERSION:
        all_disks = [d for site in sys_.sites for d in site.disks]
        spec_rows: list[list[Any]] = []
        spec_of: dict[tuple, int] = {}
        spec_idx: list[int] = []
        for d in all_disks:
            s = d.spec
            key = (s.name, s.producer, s.model, s.kind, s.rpm, s.block_time_ms)
            idx = spec_of.get(key)
            if idx is None:
                idx = len(spec_rows)
                spec_of[key] = idx
                spec_rows.append(list(key))
            spec_idx.append(idx)
        offsets = [0]
        flat: list[int] = []
        for reps in problem.replicas:
            flat.extend(reps)
            offsets.append(len(flat))
        return {
            "version": FLAT_PAYLOAD_VERSION,
            "site_ids": _q_bytes(
                [site.site_id for site in sys_.sites], "site ids"
            ),
            "site_delay_ms": array(
                "d", (site.delay_ms for site in sys_.sites)
            ).tobytes(),
            # shape header: how many of the disk columns' rows each site owns
            "site_disk_counts": _q_bytes(
                [len(site.disks) for site in sys_.sites], "site disk counts"
            ),
            "disk_ids": _q_bytes([d.disk_id for d in all_disks], "disk ids"),
            # specs dedup into a table + index column: fleets built from
            # homogeneous groups repeat a handful of specs across many
            # disks, so the strings travel once
            "disk_specs": spec_rows,
            "disk_spec_idx": _q_bytes(spec_idx, "disk spec indices"),
            "disk_initial_load_ms": array(
                "d", (d.initial_load_ms for d in all_disks)
            ).tobytes(),
            "replica_flat": _q_bytes(flat, "replica disk ids"),
            # shape header: bucket i's replicas are flat[off[i]:off[i+1]]
            "replica_offsets": _q_bytes(offsets, "replica offsets"),
            "labels": [_jsonable_label(x) for x in problem.labels],
        }
    sites = []
    for site in sys_.sites:
        disks = [
            {
                "disk_id": d.disk_id,
                "name": d.spec.name,
                "producer": d.spec.producer,
                "model": d.spec.model,
                "kind": d.spec.kind,
                "rpm": d.spec.rpm,
                "block_time_ms": d.spec.block_time_ms,
                "initial_load_ms": d.initial_load_ms,
            }
            for d in site.disks
        ]
        sites.append(
            {"site_id": site.site_id, "delay_ms": site.delay_ms, "disks": disks}
        )
    return {
        "version": PAYLOAD_VERSION,
        "sites": sites,
        "replicas": [list(reps) for reps in problem.replicas],
        "labels": [_jsonable_label(x) for x in problem.labels],
    }


def decode_problem(payload: dict[str, Any]) -> RetrievalProblem:
    """Reconstruct the exact problem a coordinator encoded (v1 or v2)."""
    if not isinstance(payload, dict):
        raise CodecError(
            f"problem payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("version", PAYLOAD_VERSION)
    if version not in SUPPORTED_PAYLOAD_VERSIONS:
        raise CodecError(
            f"unsupported fleet payload version {version!r} "
            f"(supported: {SUPPORTED_PAYLOAD_VERSIONS})"
        )
    if version == FLAT_PAYLOAD_VERSION:
        site_ids = _int_column(payload, "site_ids")
        num_sites = len(site_ids)
        if num_sites == 0:
            raise CodecError("'site_ids' must be a non-empty column")
        site_delays = _float_column(payload, "site_delay_ms", num_sites)
        disk_counts = _int_column(payload, "site_disk_counts", num_sites)
        if any(c < 0 for c in disk_counts):
            raise CodecError("'site_disk_counts' entries must be >= 0")
        num_disks = sum(disk_counts)
        disk_ids = _int_column(payload, "disk_ids", num_disks)
        spec_idx = _int_column(payload, "disk_spec_idx", num_disks)
        loads = _float_column(payload, "disk_initial_load_ms", num_disks)
        raw_specs = payload.get("disk_specs")
        if not isinstance(raw_specs, list):
            raise CodecError("'disk_specs' must be a list of spec rows")
        specs: list[DiskSpec] = []
        for k, row in enumerate(raw_specs):
            if not isinstance(row, list) or len(row) != 6:
                raise CodecError(
                    f"disk_specs[{k}] must be [name, producer, model, kind, "
                    f"rpm, block_time_ms], got {row!r}"
                )
            rpm = row[4]
            specs.append(
                DiskSpec(
                    name=str(row[0]),
                    producer=str(row[1]),
                    model=str(row[2]),
                    kind=str(row[3]),
                    rpm=None
                    if rpm is None
                    else _exact_int(rpm, f"disk_specs[{k}] rpm"),
                    block_time_ms=_float(
                        row[5], f"disk_specs[{k}] block_time_ms"
                    ),
                )
            )
        flat_disks: list[Disk] = []
        for k in range(num_disks):
            idx = spec_idx[k]
            if not 0 <= idx < len(specs):
                raise CodecError(
                    f"disk_spec_idx[{k}] = {idx} out of range "
                    f"[0, {len(specs)})"
                )
            flat_disks.append(
                Disk(
                    disk_id=disk_ids[k],
                    spec=specs[idx],
                    initial_load_ms=loads[k],
                )
            )
        flat_sites: list[Site] = []
        pos = 0
        for idx in range(num_sites):
            count = disk_counts[idx]
            flat_sites.append(
                Site(
                    site_id=site_ids[idx],
                    delay_ms=site_delays[idx],
                    disks=flat_disks[pos : pos + count],
                )
            )
            pos += count
        offsets = _int_column(payload, "replica_offsets")
        flat_reps = _int_column(payload, "replica_flat")
        if len(offsets) < 2 or offsets[0] != 0 or offsets[-1] != len(flat_reps):
            raise CodecError(
                "'replica_offsets' must be a non-empty shape header "
                "starting at 0 and ending at len(replica_flat)"
            )
        flat_replicas: list[tuple[int, ...]] = []
        for i in range(len(offsets) - 1):
            lo, hi = offsets[i], offsets[i + 1]
            if hi < lo:
                raise CodecError(f"replica_offsets[{i + 1}] decreases")
            flat_replicas.append(tuple(flat_reps[lo:hi]))
        flat_labels_raw = payload.get("labels", [])
        if not isinstance(flat_labels_raw, list):
            raise CodecError("'labels' must be a list")
        return RetrievalProblem(
            StorageSystem(flat_sites),
            tuple(flat_replicas),
            labels=tuple(_label_from_wire(x) for x in flat_labels_raw),
        )
    raw_sites = payload.get("sites")
    if not isinstance(raw_sites, list) or not raw_sites:
        raise CodecError("'sites' must be a non-empty list")
    sites: list[Site] = []
    for s in raw_sites:
        if not isinstance(s, dict):
            raise CodecError(f"site entry must be a dict, got {s!r}")
        raw_disks = s.get("disks")
        if not isinstance(raw_disks, list):
            raise CodecError("site 'disks' must be a list")
        disks = []
        for d in raw_disks:
            if not isinstance(d, dict):
                raise CodecError(f"disk entry must be a dict, got {d!r}")
            rpm = d.get("rpm")
            spec = DiskSpec(
                name=str(d.get("name")),
                producer=str(d.get("producer")),
                model=str(d.get("model")),
                kind=str(d.get("kind")),
                rpm=None if rpm is None else _exact_int(rpm, "disk 'rpm'"),
                block_time_ms=_float(
                    d.get("block_time_ms"), "disk 'block_time_ms'"
                ),
            )
            disks.append(
                Disk(
                    disk_id=_exact_int(d.get("disk_id"), "disk 'disk_id'"),
                    spec=spec,
                    initial_load_ms=_float(
                        d.get("initial_load_ms"), "disk 'initial_load_ms'"
                    ),
                )
            )
        sites.append(
            Site(
                site_id=_exact_int(s.get("site_id"), "site 'site_id'"),
                delay_ms=_float(s.get("delay_ms"), "site 'delay_ms'"),
                disks=disks,
            )
        )
    system = StorageSystem(sites)

    raw_reps = payload.get("replicas")
    if not isinstance(raw_reps, list) or not raw_reps:
        raise CodecError("'replicas' must be a non-empty list of disk-id lists")
    replicas = []
    for i, reps in enumerate(raw_reps):
        if not isinstance(reps, list):
            raise CodecError(f"replicas[{i}] must be a list, got {reps!r}")
        replicas.append(
            tuple(_exact_int(d, f"replicas[{i}] disk id") for d in reps)
        )
    raw_labels = payload.get("labels", [])
    if not isinstance(raw_labels, list):
        raise CodecError("'labels' must be a list")
    labels = tuple(_label_from_wire(x) for x in raw_labels)
    return RetrievalProblem(system, tuple(replicas), labels=labels)


def problem_to_json(problem: RetrievalProblem) -> str:
    """JSON text form of :func:`encode_problem` (sorted keys, compact)."""
    return json.dumps(
        encode_problem(problem), separators=(",", ":"), sort_keys=True
    )


def problem_from_json(text: str) -> RetrievalProblem:
    """Decode :func:`problem_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"not valid JSON: {exc}") from exc
    return decode_problem(payload)


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
#: SolverStats counter fields shipped across the boundary, in order
_STATS_COUNTERS = ("probes", "increments", "pushes", "relabels", "augmentations")


def encode_schedule(
    schedule: RetrievalSchedule, *, version: int = PAYLOAD_VERSION
) -> dict[str, Any]:
    """The solver's answer as a wire payload (no problem attached).

    ``extra`` is filtered to JSON scalars — rich objects like probe
    traces stay in the worker; the deterministic counters all travel.
    In v2 the assignment ships as one interleaved ``array('q')``
    (``bucket0, disk0, bucket1, disk1, ...``); the stats counters stay
    a plain dict in both versions because exact op counts may exceed
    int64 (the wire contract the huge-counter test pins).
    """
    if version not in SUPPORTED_PAYLOAD_VERSIONS:
        raise CodecError(
            f"cannot encode fleet payload version {version!r} "
            f"(supported: {SUPPORTED_PAYLOAD_VERSIONS})"
        )
    stats = schedule.stats
    if version == FLAT_PAYLOAD_VERSION:
        interleaved: list[int] = []
        for i, d in sorted(schedule.assignment.items()):
            interleaved.append(i)
            interleaved.append(d)
        return {
            "version": FLAT_PAYLOAD_VERSION,
            "solver": schedule.solver,
            "response_time_ms": schedule.response_time_ms,
            "assignment_flat": _q_bytes(interleaved, "assignment pairs"),
            "stats": {name: getattr(stats, name) for name in _STATS_COUNTERS},
            "wall_time_s": stats.wall_time_s,
            "extra": {
                k: v
                for k, v in stats.extra.items()
                if isinstance(v, (bool, int, float, str)) or v is None
            },
        }
    return {
        "version": PAYLOAD_VERSION,
        "solver": schedule.solver,
        "response_time_ms": schedule.response_time_ms,
        "assignment": [[i, d] for i, d in sorted(schedule.assignment.items())],
        "stats": {name: getattr(stats, name) for name in _STATS_COUNTERS},
        "wall_time_s": stats.wall_time_s,
        "extra": {
            k: v
            for k, v in stats.extra.items()
            if isinstance(v, (bool, int, float, str)) or v is None
        },
    }


def decode_schedule(
    payload: dict[str, Any], problem: RetrievalProblem
) -> RetrievalSchedule:
    """Rebuild the schedule against the coordinator's own ``problem``.

    Validation runs in ``RetrievalSchedule.__post_init__`` — a corrupted
    assignment (bucket routed off its replica set) raises rather than
    being accepted.
    """
    if not isinstance(payload, dict):
        raise CodecError(
            f"schedule payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("version", PAYLOAD_VERSION)
    if version not in SUPPORTED_PAYLOAD_VERSIONS:
        raise CodecError(
            f"unsupported fleet payload version {version!r} "
            f"(supported: {SUPPORTED_PAYLOAD_VERSIONS})"
        )
    assignment: dict[int, int] = {}
    if version == FLAT_PAYLOAD_VERSION:
        pairs = _int_column(payload, "assignment_flat")
        if len(pairs) % 2:
            raise CodecError(
                f"'assignment_flat' has {len(pairs)} entries, expected "
                "interleaved [bucket, disk] pairs"
            )
        for k in range(0, len(pairs), 2):
            assignment[pairs[k]] = pairs[k + 1]
    else:
        raw_assign = payload.get("assignment")
        if not isinstance(raw_assign, list):
            raise CodecError(
                "'assignment' must be a list of [bucket, disk] pairs"
            )
        for row in raw_assign:
            if not isinstance(row, list) or len(row) != 2:
                raise CodecError(
                    f"assignment row must be [bucket, disk]: {row!r}"
                )
            assignment[_exact_int(row[0], "assignment bucket")] = _exact_int(
                row[1], "assignment disk"
            )
    raw_stats = payload.get("stats")
    if not isinstance(raw_stats, dict):
        raise CodecError("'stats' must be a dict of counters")
    counters = {
        name: _exact_int(raw_stats.get(name, 0), f"stats counter {name!r}")
        for name in _STATS_COUNTERS
    }
    raw_extra = payload.get("extra", {})
    if not isinstance(raw_extra, dict):
        raise CodecError("'extra' must be a dict")
    stats = SolverStats(
        wall_time_s=_float(payload.get("wall_time_s", 0.0), "'wall_time_s'"),
        extra=dict(raw_extra),
        **counters,
    )
    return RetrievalSchedule(
        problem=problem,
        assignment=assignment,
        response_time_ms=_float(
            payload.get("response_time_ms"), "'response_time_ms'"
        ),
        stats=stats,
        solver=str(payload.get("solver", "?")),
    )
