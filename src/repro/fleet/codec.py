"""Cross-process codec: problems and schedules as JSON-safe payloads.

A :class:`~repro.core.RetrievalProblem` closes over live
:class:`~repro.storage.StorageSystem` objects (mutable disks, NumPy
views); pickling those wholesale would ship object graphs whose identity
semantics do not survive a process boundary.  Instead the fleet ships
*values*: plain dicts of JSON scalars that reconstruct the problem
exactly on the far side, in the spirit of :mod:`repro.graph.io`'s
integer JSON round-trip.

Exactness contract
------------------
* replica disk ids, bucket counts, stats counters: native ints, and the
  decoder rejects fractional values with :class:`CodecError` (a
  :class:`~repro.errors.GraphError`) instead of rounding;
* ``C_j``/``D_j``/``X_j``/response times: Python floats, which JSON
  round-trips bit-for-bit (``repr``-based encoding), so the worker's
  ``finish_time``/``capacity_at`` arithmetic is performed on the *same*
  floats the coordinator holds and the returned makespan compares
  ``==`` against an in-process solve.

Every payload is also valid JSON text: :func:`problem_to_json` /
:func:`problem_from_json` round-trip through ``json.dumps`` for tests
and debugging, while the executor transport pickles the dicts directly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule, SolverStats
from repro.errors import GraphError
from repro.storage.disk import Disk, DiskSpec
from repro.storage.site import Site
from repro.storage.system import StorageSystem

__all__ = [
    "CodecError",
    "PAYLOAD_VERSION",
    "encode_problem",
    "decode_problem",
    "encode_schedule",
    "decode_schedule",
    "problem_to_json",
    "problem_from_json",
]

#: schema version of the fleet payloads; bumped on incompatible changes
PAYLOAD_VERSION = 1


class CodecError(GraphError):
    """A fleet payload failed to encode or decode exactly."""


def _exact_int(value: Any, what: str) -> int:
    """Coerce a payload number to an int, rejecting non-integral values."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"{what} must be a number, got {value!r}")
    as_int = int(value)
    if as_int != value:
        raise CodecError(f"{what} must be integral, got {value!r}")
    return as_int


def _float(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"{what} must be a number, got {value!r}")
    return float(value)


def _jsonable_label(label: Any) -> Any:
    """Tuples nest to lists for JSON; everything else passes through."""
    if isinstance(label, tuple):
        return [_jsonable_label(x) for x in label]
    return label


def _label_from_wire(label: Any) -> Any:
    """Inverse of :func:`_jsonable_label` (lists come back as tuples)."""
    if isinstance(label, list):
        return tuple(_label_from_wire(x) for x in label)
    return label


# ----------------------------------------------------------------------
# problems
# ----------------------------------------------------------------------
def encode_problem(problem: RetrievalProblem) -> dict[str, Any]:
    """The problem — system state included — as a JSON-safe dict."""
    sys_ = problem.system
    sites = []
    for site in sys_.sites:
        disks = [
            {
                "disk_id": d.disk_id,
                "name": d.spec.name,
                "producer": d.spec.producer,
                "model": d.spec.model,
                "kind": d.spec.kind,
                "rpm": d.spec.rpm,
                "block_time_ms": d.spec.block_time_ms,
                "initial_load_ms": d.initial_load_ms,
            }
            for d in site.disks
        ]
        sites.append(
            {"site_id": site.site_id, "delay_ms": site.delay_ms, "disks": disks}
        )
    return {
        "version": PAYLOAD_VERSION,
        "sites": sites,
        "replicas": [list(reps) for reps in problem.replicas],
        "labels": [_jsonable_label(x) for x in problem.labels],
    }


def decode_problem(payload: dict[str, Any]) -> RetrievalProblem:
    """Reconstruct the exact problem a coordinator encoded."""
    if not isinstance(payload, dict):
        raise CodecError(
            f"problem payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("version", PAYLOAD_VERSION)
    if version != PAYLOAD_VERSION:
        raise CodecError(
            f"unsupported fleet payload version {version!r} "
            f"(expected {PAYLOAD_VERSION})"
        )
    raw_sites = payload.get("sites")
    if not isinstance(raw_sites, list) or not raw_sites:
        raise CodecError("'sites' must be a non-empty list")
    sites: list[Site] = []
    for s in raw_sites:
        if not isinstance(s, dict):
            raise CodecError(f"site entry must be a dict, got {s!r}")
        raw_disks = s.get("disks")
        if not isinstance(raw_disks, list):
            raise CodecError("site 'disks' must be a list")
        disks = []
        for d in raw_disks:
            if not isinstance(d, dict):
                raise CodecError(f"disk entry must be a dict, got {d!r}")
            rpm = d.get("rpm")
            spec = DiskSpec(
                name=str(d.get("name")),
                producer=str(d.get("producer")),
                model=str(d.get("model")),
                kind=str(d.get("kind")),
                rpm=None if rpm is None else _exact_int(rpm, "disk 'rpm'"),
                block_time_ms=_float(
                    d.get("block_time_ms"), "disk 'block_time_ms'"
                ),
            )
            disks.append(
                Disk(
                    disk_id=_exact_int(d.get("disk_id"), "disk 'disk_id'"),
                    spec=spec,
                    initial_load_ms=_float(
                        d.get("initial_load_ms"), "disk 'initial_load_ms'"
                    ),
                )
            )
        sites.append(
            Site(
                site_id=_exact_int(s.get("site_id"), "site 'site_id'"),
                delay_ms=_float(s.get("delay_ms"), "site 'delay_ms'"),
                disks=disks,
            )
        )
    system = StorageSystem(sites)

    raw_reps = payload.get("replicas")
    if not isinstance(raw_reps, list) or not raw_reps:
        raise CodecError("'replicas' must be a non-empty list of disk-id lists")
    replicas = []
    for i, reps in enumerate(raw_reps):
        if not isinstance(reps, list):
            raise CodecError(f"replicas[{i}] must be a list, got {reps!r}")
        replicas.append(
            tuple(_exact_int(d, f"replicas[{i}] disk id") for d in reps)
        )
    raw_labels = payload.get("labels", [])
    if not isinstance(raw_labels, list):
        raise CodecError("'labels' must be a list")
    labels = tuple(_label_from_wire(x) for x in raw_labels)
    return RetrievalProblem(system, tuple(replicas), labels=labels)


def problem_to_json(problem: RetrievalProblem) -> str:
    """JSON text form of :func:`encode_problem` (sorted keys, compact)."""
    return json.dumps(
        encode_problem(problem), separators=(",", ":"), sort_keys=True
    )


def problem_from_json(text: str) -> RetrievalProblem:
    """Decode :func:`problem_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"not valid JSON: {exc}") from exc
    return decode_problem(payload)


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
#: SolverStats counter fields shipped across the boundary, in order
_STATS_COUNTERS = ("probes", "increments", "pushes", "relabels", "augmentations")


def encode_schedule(schedule: RetrievalSchedule) -> dict[str, Any]:
    """The solver's answer as a JSON-safe dict (no problem attached).

    ``extra`` is filtered to JSON scalars — rich objects like probe
    traces stay in the worker; the deterministic counters all travel.
    """
    stats = schedule.stats
    return {
        "version": PAYLOAD_VERSION,
        "solver": schedule.solver,
        "response_time_ms": schedule.response_time_ms,
        "assignment": [[i, d] for i, d in sorted(schedule.assignment.items())],
        "stats": {name: getattr(stats, name) for name in _STATS_COUNTERS},
        "wall_time_s": stats.wall_time_s,
        "extra": {
            k: v
            for k, v in stats.extra.items()
            if isinstance(v, (bool, int, float, str)) or v is None
        },
    }


def decode_schedule(
    payload: dict[str, Any], problem: RetrievalProblem
) -> RetrievalSchedule:
    """Rebuild the schedule against the coordinator's own ``problem``.

    Validation runs in ``RetrievalSchedule.__post_init__`` — a corrupted
    assignment (bucket routed off its replica set) raises rather than
    being accepted.
    """
    if not isinstance(payload, dict):
        raise CodecError(
            f"schedule payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("version", PAYLOAD_VERSION)
    if version != PAYLOAD_VERSION:
        raise CodecError(
            f"unsupported fleet payload version {version!r} "
            f"(expected {PAYLOAD_VERSION})"
        )
    raw_assign = payload.get("assignment")
    if not isinstance(raw_assign, list):
        raise CodecError("'assignment' must be a list of [bucket, disk] pairs")
    assignment: dict[int, int] = {}
    for row in raw_assign:
        if not isinstance(row, list) or len(row) != 2:
            raise CodecError(f"assignment row must be [bucket, disk]: {row!r}")
        assignment[_exact_int(row[0], "assignment bucket")] = _exact_int(
            row[1], "assignment disk"
        )
    raw_stats = payload.get("stats")
    if not isinstance(raw_stats, dict):
        raise CodecError("'stats' must be a dict of counters")
    counters = {
        name: _exact_int(raw_stats.get(name, 0), f"stats counter {name!r}")
        for name in _STATS_COUNTERS
    }
    raw_extra = payload.get("extra", {})
    if not isinstance(raw_extra, dict):
        raise CodecError("'extra' must be a dict")
    stats = SolverStats(
        wall_time_s=_float(payload.get("wall_time_s", 0.0), "'wall_time_s'"),
        extra=dict(raw_extra),
        **counters,
    )
    return RetrievalSchedule(
        problem=problem,
        assignment=assignment,
        response_time_ms=_float(
            payload.get("response_time_ms"), "'response_time_ms'"
        ),
        stats=stats,
        solver=str(payload.get("solver", "?")),
    )
