"""Solve backends: where a service's solves actually execute.

``thread``
    In the calling thread (the historical behaviour).  The service's
    own warm-start cache applies; scheduling throughput is bounded by
    one core under CPython's GIL.
``process``
    In a :class:`~repro.fleet.pool.SolveFleet` worker process routed by
    replica signature.  Solves leave the GIL entirely; the warm cache
    lives in the worker.

The registry is a plain dict literal so ``repro lint``'s
registry-completeness rule can statically verify that every concrete
``*Backend`` class in this package is registered and that every
registered name is exercised by at least one test.

Backend selection flows through :func:`resolve_backend_name` so a CI
matrix can flip the whole fast suite with ``REPRO_SOLVE_BACKEND=process``
and zero code changes.
"""

from __future__ import annotations

import abc
import os

from repro.core.problem import RetrievalProblem
from repro.core.schedule import RetrievalSchedule
from repro.fleet.pool import SolveFleet

__all__ = [
    "BACKENDS",
    "SOLVE_BACKEND_ENV",
    "SolveBackend",
    "ThreadSolveBackend",
    "ProcessSolveBackend",
    "make_backend",
    "resolve_backend_name",
]

#: environment variable consulted when a config leaves the backend unset
SOLVE_BACKEND_ENV = "REPRO_SOLVE_BACKEND"


class SolveBackend(abc.ABC):
    """Strategy object deciding where one service's solves run."""

    #: registry name, overridden by subclasses
    name: str = "abstract"

    @abc.abstractmethod
    def solve(
        self, problem: RetrievalProblem
    ) -> tuple[RetrievalSchedule, bool]:
        """Solve one problem; returns ``(schedule, cache_hit)``."""

    def close(self) -> None:
        """Release backend resources (idempotent; default: nothing)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name})>"


class ThreadSolveBackend(SolveBackend):
    """Solve in the calling thread via :func:`repro.core.solve`.

    Stateless on purpose: the scheduler service keeps its own
    warm-start cache for the thread backend, so this object only
    encapsulates the solver choice for standalone callers.
    """

    name = "thread"

    def __init__(
        self, *, solver: str = "pr-binary", solver_kwargs: dict | None = None
    ) -> None:
        self.solver = solver
        self.solver_kwargs = dict(solver_kwargs or {})

    def solve(
        self, problem: RetrievalProblem
    ) -> tuple[RetrievalSchedule, bool]:
        from repro.core.api import solve as core_solve

        return (
            core_solve(problem, solver=self.solver, **self.solver_kwargs),
            False,
        )


class ProcessSolveBackend(SolveBackend):
    """Solve in a :class:`~repro.fleet.pool.SolveFleet` worker process.

    Parameters
    ----------
    fleet:
        The lanes to route into.  With ``owns_fleet=True`` (default),
        :meth:`close` shuts the fleet down; pass ``False`` when several
        services share one fleet (the sharded service does this).
    """

    name = "process"

    def __init__(self, fleet: SolveFleet, *, owns_fleet: bool = True) -> None:
        self.fleet = fleet
        self._owns_fleet = owns_fleet

    def solve(
        self, problem: RetrievalProblem
    ) -> tuple[RetrievalSchedule, bool]:
        return self.fleet.solve(problem)

    def close(self) -> None:
        if self._owns_fleet:
            self.fleet.close()


#: registry name → backend class (kept a dict literal for the lint rule)
BACKENDS = {
    "thread": ThreadSolveBackend,
    "process": ProcessSolveBackend,
}


def resolve_backend_name(name: str | None) -> str:
    """An explicit name, else ``$REPRO_SOLVE_BACKEND``, else ``thread``."""
    resolved = name or os.environ.get(SOLVE_BACKEND_ENV) or "thread"
    if resolved not in BACKENDS:
        raise ValueError(
            f"unknown solve backend {resolved!r}; choose from {sorted(BACKENDS)}"
        )
    return resolved


def make_backend(
    name: str | None,
    *,
    solver: str = "pr-binary",
    solver_kwargs: dict | None = None,
    fleet: SolveFleet | None = None,
    fleet_workers: int = 1,
    cache_size: int = 64,
) -> SolveBackend:
    """Build a backend by registry name (``None`` → env → ``thread``).

    For ``process``: an existing ``fleet`` is adopted without ownership
    (shared-fleet mode); otherwise a fresh ``fleet_workers``-lane fleet
    is created and owned by the returned backend.
    """
    resolved = resolve_backend_name(name)
    if resolved == "thread":
        return ThreadSolveBackend(solver=solver, solver_kwargs=solver_kwargs)
    if fleet is not None:
        return ProcessSolveBackend(fleet, owns_fleet=False)
    return ProcessSolveBackend(
        SolveFleet(
            fleet_workers,
            solver=solver,
            solver_kwargs=solver_kwargs,
            cache_size=cache_size,
        ),
        owns_fleet=True,
    )
