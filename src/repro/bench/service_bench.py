"""Service throughput benchmark: legacy hot path vs concurrent pipeline.

The concurrent-pipeline claim needs evidence, so this module makes it
measurable: hammer a scheduler with T threads of repeating queries and
report sustained submit throughput plus per-call decision-latency
percentiles, for three service modes —

``legacy``
    The pre-pipeline hot path, reproduced by :class:`LegacyScheduler`:
    every submit performs coordinate validation, replica lookup,
    degraded filtering, network construction *and* the solve inside one
    big lock, with no warm-start reuse.
``pipeline``
    The redesigned :class:`~repro.service.SchedulerService`: problem
    construction off-lock + warm-start network cache.
``batch``
    The same service with batched admission (``batch_window_ms > 0``):
    concurrent submits coalesce into joint ``solve_batch`` schedules.

Every run double-checks correctness on the side: a deterministic serial
replay of the same workload under a fake clock must produce the same
per-query response times the benchmarked ``pipeline`` service computed
(the cache must never change an answer).
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.api import solve
from repro.core.problem import RetrievalProblem
from repro.decluster.multisite import make_placement
from repro.service import (
    SchedulerService,
    ServiceConfig,
    ShardedSchedulerService,
)
from repro.storage.system import StorageSystem

__all__ = [
    "LegacyScheduler",
    "ModeResult",
    "ServiceBenchResult",
    "make_workload",
    "run_mode",
    "run_service_bench",
]


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.quantile(np.asarray(values, dtype=float), q))


# ----------------------------------------------------------------------
# the baseline under test
# ----------------------------------------------------------------------
class LegacyScheduler:
    """The pre-pipeline service hot path, kept as the benchmark baseline.

    Mirrors what ``SchedulerService.submit`` did before the concurrent
    pipeline: one lock around the *entire* admission — construction,
    network build, cold solve, horizon advance.  Intentionally minimal
    (no metrics, no failure handling) so the comparison isolates the
    locking structure and the warm-start reuse, not bookkeeping costs.
    """

    def __init__(self, system, placement, solver: str = "pr-binary") -> None:
        self.system = system
        self.placement = placement
        self.solver = solver
        self._lock = threading.Lock()
        self._busy_until = [0.0] * system.num_disks
        self.decision_ms: list[float] = []

    def submit(self, coords) -> float:
        """Schedule one query; returns its response time (ms)."""
        with self._lock:
            now = time.perf_counter() * 1000.0
            loads = [max(0.0, u - now) for u in self._busy_until]
            self.system.set_loads(loads)
            problem = RetrievalProblem.from_query(
                self.system, self.placement, list(coords)
            )
            schedule = solve(problem, solver=self.solver)
            for j, k in enumerate(schedule.counts_per_disk()):
                if k:
                    disk = self.system.disk(j)
                    self._busy_until[j] = (
                        now + loads[j] + k * disk.block_time_ms
                    )
            self.decision_ms.append(schedule.stats.wall_time_s * 1000.0)
            return schedule.response_time_ms


# ----------------------------------------------------------------------
# workload + measurement
# ----------------------------------------------------------------------
def make_workload(
    n: int,
    threads: int,
    queries_per_thread: int,
    *,
    distinct: int = 12,
    seed: int = 0,
) -> list[list[list[tuple[int, int]]]]:
    """Per-thread query streams drawn from a shared pool of signatures.

    Real frontends see repeating and overlapping queries; ``distinct``
    bounds the signature pool so the warm-start cache has something to
    hit (the legacy baseline sees the identical streams).
    """
    rng = np.random.default_rng(seed)
    pool: list[list[tuple[int, int]]] = []
    for _ in range(distinct):
        k = int(rng.integers(2, 7))
        cells = rng.choice(n * n, size=k, replace=False)
        pool.append([(int(c) // n, int(c) % n) for c in cells])
    return [
        [pool[int(rng.integers(len(pool)))] for _ in range(queries_per_thread)]
        for _ in range(threads)
    ]


def _hammer(submit, streams) -> tuple[float, list[float], list]:
    """Run one stream per thread; returns (wall_s, latencies_ms, errors)."""
    latencies: list[float] = []
    outputs: list = []
    errors: list = []
    lat_lock = threading.Lock()
    barrier = threading.Barrier(len(streams) + 1)

    def worker(stream):
        mine = []
        outs = []
        try:
            barrier.wait(timeout=60)
            for coords in stream:
                t0 = time.perf_counter()
                outs.append(submit(coords))
                mine.append((time.perf_counter() - t0) * 1000.0)
        except Exception as exc:  # noqa: BLE001 - re-raised by the caller
            errors.append(exc)
        with lat_lock:
            latencies.extend(mine)
            outputs.extend(outs)

    threads = [threading.Thread(target=worker, args=(s,)) for s in streams]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall, latencies, outputs


@dataclass
class ModeResult:
    """One mode's measurements on the stress workload."""

    mode: str
    queries: int
    wall_s: float
    throughput_qps: float
    p50_submit_ms: float
    p95_submit_ms: float
    mean_submit_ms: float
    p50_decision_ms: float = 0.0
    p95_decision_ms: float = 0.0
    p95_response_ms: float = 0.0
    cache_hit_rate: float = 0.0
    batches: int = 0
    mean_batch_size: float = 0.0


@dataclass
class ServiceBenchResult:
    """The full before/after comparison (JSON-serialisable via to_dict)."""

    n: int
    threads: int
    queries_per_thread: int
    distinct_signatures: int
    solver: str
    modes: dict = field(default_factory=dict)

    @property
    def speedup_pipeline(self) -> float:
        legacy = self.modes.get("legacy")
        pipe = self.modes.get("pipeline")
        if not legacy or not pipe or not legacy.throughput_qps:
            return 0.0
        return pipe.throughput_qps / legacy.throughput_qps

    def to_dict(self) -> dict:
        out = asdict(self)
        out["modes"] = {k: asdict(v) for k, v in self.modes.items()}
        out["speedup_pipeline_vs_legacy"] = round(self.speedup_pipeline, 3)
        return out


def _build_deployment(n: int, seed: int):
    rng = np.random.default_rng(seed)
    placement = make_placement("orthogonal", n, num_sites=2, rng=rng)
    system = StorageSystem.from_groups(
        ["ssd+hdd", "ssd+hdd"], n, delays_ms=[1.0, 4.0], rng=rng
    )
    return system, placement


def run_mode(
    mode: str,
    streams,
    *,
    n: int,
    seed: int,
    solver: str = "pr-binary",
    batch_window_ms: float = 2.0,
    cache_size: int = 64,
    shards: int = 2,
) -> ModeResult:
    """Benchmark one service mode on prepared per-thread streams."""
    system, placement = _build_deployment(n, seed)
    total = sum(len(s) for s in streams)
    if mode == "legacy":
        sched = LegacyScheduler(system, placement, solver=solver)
        wall, lats, _ = _hammer(sched.submit, streams)
        extra = {
            "p50_decision_ms": _quantile(sched.decision_ms, 0.50),
            "p95_decision_ms": _quantile(sched.decision_ms, 0.95),
        }
    elif mode == "sharded":
        # disjoint disk groups run truly in parallel: one deployment
        # (and one solve lock) per shard, hash-routed submits
        config = ServiceConfig(solver=solver, cache_size=cache_size)
        sharded = ShardedSchedulerService(
            [_build_deployment(n, seed + k) for k in range(shards)],
            config=config,
        )
        wall, lats, _ = _hammer(sharded.submit, streams)
        merged = sharded.stats()
        decisions = [
            r.decision_time_ms for svc in sharded.services for r in svc.history
        ]
        extra = {
            "p50_decision_ms": _quantile(decisions, 0.50),
            "p95_decision_ms": _quantile(decisions, 0.95),
            "p95_response_ms": merged.p95_response_ms,
            "cache_hit_rate": (
                merged.cache_hits / merged.queries if merged.queries else 0.0
            ),
        }
    elif mode in ("pipeline", "batch"):
        config = ServiceConfig(
            solver=solver,
            cache_size=cache_size,
            batch_window_ms=batch_window_ms if mode == "batch" else 0.0,
        )
        svc = SchedulerService(system, placement, config=config)
        wall, lats, _ = _hammer(svc.submit, streams)
        stats = svc.stats()
        decisions = [r.decision_time_ms for r in svc.history]
        extra = {
            "p50_decision_ms": _quantile(decisions, 0.50),
            "p95_decision_ms": _quantile(decisions, 0.95),
            "p95_response_ms": stats.p95_response_ms,
            "cache_hit_rate": (
                stats.cache_hits / stats.queries if stats.queries else 0.0
            ),
            "batches": stats.batches,
            "mean_batch_size": (
                stats.queries / stats.batches if stats.batches else 0.0
            ),
        }
    else:
        raise ValueError(f"unknown service bench mode {mode!r}")
    return ModeResult(
        mode=mode,
        queries=total,
        wall_s=wall,
        throughput_qps=total / wall if wall else 0.0,
        p50_submit_ms=_quantile(lats, 0.50),
        p95_submit_ms=_quantile(lats, 0.95),
        mean_submit_ms=sum(lats) / len(lats) if lats else 0.0,
        **extra,
    )


def check_cache_transparency(n: int, seed: int, solver: str = "pr-binary"):
    """Serial replay: cached vs cold answers must match exactly.

    Replays one deterministic stream under a fake clock against a
    cache-enabled and a cache-disabled service built on identical
    deployments; any response-time divergence is a correctness bug in
    the warm-start path and fails the benchmark run loudly.
    """
    streams = make_workload(n, 1, 24, distinct=6, seed=seed)
    clock_a = [0.0]
    clock_b = [0.0]
    warm = SchedulerService(
        *_build_deployment(n, seed),
        config=ServiceConfig(
            solver=solver, cache_size=32, time_fn=lambda: clock_a[0]
        ),
    )
    cold = SchedulerService(
        *_build_deployment(n, seed),
        config=ServiceConfig(
            solver=solver, cache_size=0, time_fn=lambda: clock_b[0]
        ),
    )
    for coords in streams[0]:
        a = warm.submit(coords)
        b = cold.submit(coords)
        if abs(a.response_time_ms - b.response_time_ms) > 1e-9:
            raise AssertionError(
                f"warm-start changed an answer: {a.response_time_ms} != "
                f"{b.response_time_ms} for {coords}"
            )
        clock_a[0] += 1.0
        clock_b[0] += 1.0
    return warm.cache.hits


def run_service_bench(
    *,
    n: int = 6,
    threads: int = 8,
    queries_per_thread: int = 12,
    distinct: int = 12,
    solver: str = "pr-binary",
    batch_window_ms: float = 2.0,
    cache_size: int = 64,
    seed: int = 0,
    repeats: int = 3,
    shards: int = 2,
    modes: tuple = ("legacy", "pipeline", "batch", "sharded"),
) -> ServiceBenchResult:
    """The full stress comparison (defaults match the stress-test scale).

    Each mode runs ``repeats`` times on a fresh deployment and reports
    its best run — thread-scheduling noise at second-scale runs is
    large, and the sustained-throughput question is about the pipeline,
    not the OS scheduler.
    """
    check_cache_transparency(n, seed, solver=solver)
    streams = make_workload(
        n, threads, queries_per_thread, distinct=distinct, seed=seed
    )
    result = ServiceBenchResult(
        n=n,
        threads=threads,
        queries_per_thread=queries_per_thread,
        distinct_signatures=distinct,
        solver=solver,
    )
    for mode in modes:
        best: ModeResult | None = None
        for _ in range(max(1, repeats)):
            run = run_mode(
                mode,
                streams,
                n=n,
                seed=seed,
                solver=solver,
                batch_window_ms=batch_window_ms,
                cache_size=cache_size,
                shards=shards,
            )
            if best is None or run.throughput_qps > best.throughput_qps:
                best = run
        result.modes[mode] = best
    return result
