"""Regression comparison between two saved figure results.

Benchmarks drift; this module diffs two JSON files produced by
:mod:`repro.bench.persistence` (e.g. before/after an optimization, or two
machines) series-by-series and flags deviations beyond a tolerance — the
CI gate for "did this change slow a figure down".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.figures import FigureResult
from repro.errors import ReproError

__all__ = ["SeriesDelta", "compare_figures", "format_deltas"]


@dataclass(frozen=True)
class SeriesDelta:
    """Change of one series point between two runs."""

    panel: str
    series: str
    x: object
    before: float
    after: float

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 1.0
        return self.after / self.before

    def exceeds(self, tolerance: float) -> bool:
        """True if the relative change is beyond ``tolerance`` (e.g. 0.25)."""
        return abs(self.ratio - 1.0) > tolerance


def compare_figures(
    before: FigureResult, after: FigureResult
) -> list[SeriesDelta]:
    """Pointwise deltas between two runs of the same figure.

    Panels/series are matched by title/name; x grids must agree (the
    scale knobs define them), otherwise the comparison is meaningless and
    raises.
    """
    if before.figure_id != after.figure_id:
        raise ReproError(
            f"different figures: {before.figure_id!r} vs {after.figure_id!r}"
        )
    after_panels = {p.title: p for p in after.panels}
    deltas: list[SeriesDelta] = []
    for panel in before.panels:
        other = after_panels.get(panel.title)
        if other is None:
            continue  # panel removed; nothing to compare
        if list(panel.xs) != list(other.xs):
            raise ReproError(
                f"panel {panel.title!r}: x grids differ "
                f"({panel.xs} vs {other.xs}); rerun at matching scale"
            )
        for name, values in panel.series.items():
            if name not in other.series:
                continue
            for x, b, a in zip(panel.xs, values, other.series[name]):
                deltas.append(SeriesDelta(panel.title, name, x, b, a))
    return deltas


def format_deltas(
    deltas: list[SeriesDelta], *, tolerance: float = 0.25
) -> str:
    """Human summary: flagged regressions first, then the aggregate."""
    flagged = [d for d in deltas if d.exceeds(tolerance)]
    lines = []
    if flagged:
        lines.append(
            f"{len(flagged)}/{len(deltas)} points moved more than "
            f"{tolerance:.0%}:"
        )
        for d in sorted(flagged, key=lambda d: -abs(d.ratio - 1.0))[:20]:
            lines.append(
                f"  {d.panel} / {d.series} @ {d.x}: "
                f"{d.before:.4g} -> {d.after:.4g}  ({d.ratio:.2f}x)"
            )
    else:
        lines.append(
            f"all {len(deltas)} comparable points within {tolerance:.0%}"
        )
    if deltas:
        mean_ratio = sum(d.ratio for d in deltas if d.ratio != float("inf"))
        count = sum(1 for d in deltas if d.ratio != float("inf"))
        if count:
            lines.append(f"mean after/before ratio: {mean_ratio / count:.3f}")
    return "\n".join(lines)
