"""Regression comparison between two saved benchmark results.

Benchmarks drift; this module diffs two JSON files series-by-series and
flags deviations beyond a tolerance — the CI gate for "did this change
slow a figure down".  Two on-disk formats are understood:

* figure JSONs produced by :mod:`repro.bench.persistence`
  (:func:`compare_figures`), matched panel/series/x-point-wise;
* ``pytest-benchmark --benchmark-json`` dumps such as
  ``BENCH_ablation_engines.json`` (:func:`compare_benchmark_json`),
  matched by benchmark ``fullname`` on the ``stats.mean`` time.

``repro bench-diff`` sniffs the format (a top-level ``benchmarks`` key
marks the pytest-benchmark form) and applies the matching comparison;
the CI bench-regression job runs it with ``--fail-on slower`` so only
slowdowns — not speedups — beyond the tolerance break the build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.bench.figures import FigureResult
from repro.errors import ReproError

__all__ = [
    "SeriesDelta",
    "compare_benchmark_json",
    "compare_figures",
    "format_deltas",
    "load_benchmark_json",
]


@dataclass(frozen=True)
class SeriesDelta:
    """Change of one series point between two runs."""

    panel: str
    series: str
    x: object
    before: float
    after: float

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 1.0
        return self.after / self.before

    def exceeds(self, tolerance: float) -> bool:
        """True if the relative change is beyond ``tolerance`` (e.g. 0.25)."""
        return abs(self.ratio - 1.0) > tolerance

    def slower(self, tolerance: float) -> bool:
        """True only for a *slowdown* beyond ``tolerance`` (CI's gate —
        a speedup, however large, is not a regression)."""
        return self.ratio - 1.0 > tolerance


def compare_figures(
    before: FigureResult, after: FigureResult
) -> list[SeriesDelta]:
    """Pointwise deltas between two runs of the same figure.

    Panels/series are matched by title/name; x grids must agree (the
    scale knobs define them), otherwise the comparison is meaningless and
    raises.
    """
    if before.figure_id != after.figure_id:
        raise ReproError(
            f"different figures: {before.figure_id!r} vs {after.figure_id!r}"
        )
    after_panels = {p.title: p for p in after.panels}
    deltas: list[SeriesDelta] = []
    for panel in before.panels:
        other = after_panels.get(panel.title)
        if other is None:
            continue  # panel removed; nothing to compare
        if list(panel.xs) != list(other.xs):
            raise ReproError(
                f"panel {panel.title!r}: x grids differ "
                f"({panel.xs} vs {other.xs}); rerun at matching scale"
            )
        for name, values in panel.series.items():
            if name not in other.series:
                continue
            for x, b, a in zip(panel.xs, values, other.series[name]):
                deltas.append(SeriesDelta(panel.title, name, x, b, a))
    return deltas


def load_benchmark_json(path: str | Path) -> dict:
    """Load a raw benchmark JSON (either on-disk format) as a dict."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load results from {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ReproError(f"{path}: benchmark JSON must be an object")
    return data


def compare_benchmark_json(before: dict, after: dict) -> list[SeriesDelta]:
    """Pointwise mean-time deltas between two pytest-benchmark dumps.

    Benchmarks are matched by ``fullname`` (stable across runs: file,
    test name and parametrization); entries present on only one side are
    skipped — a renamed benchmark is a review concern, not a perf
    regression the gate can price.
    """
    for side, data in (("before", before), ("after", after)):
        if not isinstance(data.get("benchmarks"), list):
            raise ReproError(
                f"{side}: not a pytest-benchmark JSON "
                "(missing 'benchmarks' list)"
            )
    after_by_name = {b["fullname"]: b for b in after["benchmarks"]}
    deltas: list[SeriesDelta] = []
    for bench in before["benchmarks"]:
        other = after_by_name.get(bench["fullname"])
        if other is None:
            continue
        deltas.append(
            SeriesDelta(
                panel=bench.get("group") or "benchmarks",
                series=bench["name"],
                x="mean",
                before=float(bench["stats"]["mean"]),
                after=float(other["stats"]["mean"]),
            )
        )
    return deltas


def format_deltas(
    deltas: list[SeriesDelta],
    *,
    tolerance: float = 0.25,
    fail_on: str = "both",
) -> str:
    """Human summary: flagged regressions first, then the aggregate.

    ``fail_on="slower"`` flags slowdowns only (the CI gate's view);
    ``"both"`` flags any move beyond the tolerance.
    """
    if fail_on == "slower":
        flagged = [d for d in deltas if d.slower(tolerance)]
        verb = f"slowed more than {tolerance:.0%}"
    else:
        flagged = [d for d in deltas if d.exceeds(tolerance)]
        verb = f"moved more than {tolerance:.0%}"
    lines = []
    if flagged:
        lines.append(f"{len(flagged)}/{len(deltas)} points {verb}:")
        for d in sorted(flagged, key=lambda d: -abs(d.ratio - 1.0))[:20]:
            lines.append(
                f"  {d.panel} / {d.series} @ {d.x}: "
                f"{d.before:.4g} -> {d.after:.4g}  ({d.ratio:.2f}x)"
            )
    else:
        lines.append(
            f"all {len(deltas)} comparable points within {tolerance:.0%}"
        )
    if deltas:
        mean_ratio = sum(d.ratio for d in deltas if d.ratio != float("inf"))
        count = sum(1 for d in deltas if d.ratio != float("inf"))
        if count:
            lines.append(f"mean after/before ratio: {mean_ratio / count:.3f}")
    return "\n".join(lines)
