"""Timed sweeps over experiment points.

A *point* is one ``(experiment, scheme, query type, load, N)`` tuple; the
harness samples ``n_queries`` queries at the point, runs every requested
solver on the *same* instances, cross-checks that all solvers report the
same optimal response time (the paper's §VI.F validation, re-run inside
every benchmark), and reports mean per-query runtimes — the paper's
"Avg. Runtime Per Query (msec)" axis.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import get_solver
from repro.core.problem import RetrievalProblem
from repro.decluster.multisite import make_placement
from repro.errors import ReproError
from repro.workloads.experiments import build_problem, build_system

__all__ = [
    "BenchScale",
    "SolverTiming",
    "PointResult",
    "current_scale",
    "run_point",
    "sweep",
]


@dataclass(frozen=True)
class BenchScale:
    """How big the sweeps are; see the package docstring for the knobs."""

    ns: tuple[int, ...]
    queries_per_point: int
    full: bool

    @property
    def label(self) -> str:
        return "paper scale" if self.full else "CI scale"


def current_scale() -> BenchScale:
    """Resolve the sweep scale from the environment."""
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    if full:
        ns: tuple[int, ...] = tuple(range(10, 101, 10))
        queries = 1000
    else:
        ns = (4, 8, 12, 16)
        queries = 8
    env_ns = os.environ.get("REPRO_BENCH_NS")
    if env_ns:
        ns = tuple(int(x) for x in env_ns.split(",") if x.strip())
    env_q = os.environ.get("REPRO_BENCH_QUERIES")
    if env_q:
        queries = int(env_q)
    return BenchScale(ns, queries, full)


@dataclass
class SolverTiming:
    """Aggregated timing of one solver over one point's query batch."""

    solver: str
    total_s: float = 0.0
    n_queries: int = 0
    total_response_ms: float = 0.0
    per_query_s: list[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        """Mean runtime per query in milliseconds (the paper's y-axis)."""
        return 1000.0 * self.total_s / self.n_queries if self.n_queries else 0.0

    @property
    def mean_response_ms(self) -> float:
        return (
            self.total_response_ms / self.n_queries if self.n_queries else 0.0
        )


@dataclass
class PointResult:
    """All solver timings at one sweep point."""

    experiment: int
    scheme: str
    qtype: str
    load: int
    N: int
    timings: dict[str, SolverTiming]

    def ratio(self, numerator: str, denominator: str) -> float:
        """Runtime ratio between two solvers (e.g. blackbox/integrated)."""
        num = self.timings[numerator].total_s
        den = self.timings[denominator].total_s
        if den == 0.0:
            raise ReproError(f"zero denominator timing for {denominator}")
        return num / den


def _make_problems(
    experiment: int,
    scheme: str,
    qtype: str,
    load: int,
    N: int,
    n_queries: int,
    seed: int,
) -> list[RetrievalProblem]:
    rng = np.random.default_rng(seed)
    placement = make_placement(scheme, N, num_sites=2, rng=rng, seed=seed)
    system = build_system(experiment, N, rng)
    return [
        build_problem(
            experiment,
            scheme,
            N,
            qtype,
            load,
            rng,
            placement=placement,
            system=system,
        )
        for _ in range(n_queries)
    ]


def run_point(
    experiment: int,
    scheme: str,
    qtype: str,
    load: int,
    N: int,
    solvers: dict[str, dict] | list[str],
    *,
    n_queries: int = 8,
    seed: int = 0,
    cross_check: bool = True,
) -> PointResult:
    """Time every solver on the same ``n_queries`` instances of a point.

    ``solvers`` maps a display name to ``{"solver": registry_name, ...}``
    kwargs (a plain list of registry names is accepted as shorthand).
    """
    if isinstance(solvers, list):
        solvers = {name: {"solver": name} for name in solvers}
    problems = _make_problems(
        experiment, scheme, qtype, load, N, n_queries, seed
    )
    timings: dict[str, SolverTiming] = {}
    responses: dict[str, list[float]] = {}
    for display, spec in solvers.items():
        spec = dict(spec)
        registry_name = spec.pop("solver", display)
        instance = get_solver(registry_name, **spec)
        timing = SolverTiming(solver=display)
        responses[display] = []
        for problem in problems:
            start = time.perf_counter()
            schedule = instance.solve(problem)
            elapsed = time.perf_counter() - start
            timing.total_s += elapsed
            timing.per_query_s.append(elapsed)
            timing.n_queries += 1
            timing.total_response_ms += schedule.response_time_ms
            responses[display].append(schedule.response_time_ms)
        timings[display] = timing

    if cross_check and len(responses) > 1:
        names = list(responses)
        ref = responses[names[0]]
        for other in names[1:]:
            for q, (a, b) in enumerate(zip(ref, responses[other])):
                if abs(a - b) > 1e-6:
                    raise ReproError(
                        f"solver disagreement at query {q}: "
                        f"{names[0]}={a} vs {other}={b}"
                    )

    return PointResult(experiment, scheme, qtype, load, N, timings)


def sweep(
    experiment: int,
    scheme: str,
    qtype: str,
    load: int,
    ns: tuple[int, ...],
    solvers: dict[str, dict] | list[str],
    *,
    n_queries: int = 8,
    seed: int = 0,
) -> list[PointResult]:
    """Run :func:`run_point` across a range of N values."""
    return [
        run_point(
            experiment,
            scheme,
            qtype,
            load,
            N,
            solvers,
            n_queries=n_queries,
            seed=seed + N,
        )
        for N in ns
    ]
