"""ASCII reporting for the figure drivers.

The paper's figures are line plots; on a terminal we print the underlying
series as aligned columns, one row per x value, one column per series —
enough to read off who wins, by what factor, and where the curves cross.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "banner"]


def banner(title: str, subtitle: str = "") -> str:
    """Section header used by every figure driver."""
    lines = ["=" * 72, title]
    if subtitle:
        lines.append(subtitle)
    lines.append("=" * 72)
    return "\n".join(lines)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = []
    for k, row in enumerate(cells):
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if k == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    unit: str = "",
) -> str:
    """A paper-figure-as-table: x column plus one column per series."""
    headers = [x_label] + [
        f"{name} ({unit})" if unit else name for name in series
    ]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)
