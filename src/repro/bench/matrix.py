"""Full experiment-matrix runner.

The paper evaluates 5 experiments x 3 schemes x 2 query types x 3 loads
(a 90-cell grid per N, thinned to "the results that are interesting").
This runner sweeps any sub-grid and emits a long-form table — the raw
material behind "all the results are available on the project web
page [2]", regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.bench.harness import run_point
from repro.bench.reporting import format_table

__all__ = ["MatrixCell", "MatrixResult", "run_matrix"]

_DEFAULT_SOLVERS = ["pr-binary", "blackbox-binary"]


@dataclass(frozen=True)
class MatrixCell:
    """One grid cell's outcome."""

    experiment: int
    scheme: str
    qtype: str
    load: int
    N: int
    mean_ms: dict[str, float]
    mean_response_ms: float

    def ratio(self, a: str, b: str) -> float:
        return self.mean_ms[a] / self.mean_ms[b] if self.mean_ms[b] else 0.0


@dataclass
class MatrixResult:
    """The swept grid plus tabulation helpers."""

    cells: list[MatrixCell] = field(default_factory=list)

    def filter(self, **criteria) -> list[MatrixCell]:
        """Cells matching every keyword (e.g. ``experiment=5, load=1``)."""
        out = []
        for cell in self.cells:
            if all(getattr(cell, k) == v for k, v in criteria.items()):
                out.append(cell)
        return out

    def to_table(self, solvers: list[str]) -> str:
        headers = ["exp", "scheme", "qtype", "load", "N",
                   *[f"{s} (ms/q)" for s in solvers], "resp (ms)"]
        rows = []
        for c in self.cells:
            rows.append([
                c.experiment, c.scheme, c.qtype, c.load, c.N,
                *[c.mean_ms[s] for s in solvers],
                c.mean_response_ms,
            ])
        return format_table(headers, rows)

    def worst_ratio(self, a: str, b: str) -> MatrixCell | None:
        """The cell where solver ``a`` is slowest relative to ``b``."""
        if not self.cells:
            return None
        return max(self.cells, key=lambda c: c.ratio(a, b))


def run_matrix(
    *,
    experiments: Iterable[int] = (1, 2, 3, 4, 5),
    schemes: Iterable[str] = ("rda", "dependent", "orthogonal"),
    qtypes: Iterable[str] = ("range", "arbitrary"),
    loads: Iterable[int] = (1, 2, 3),
    ns: Iterable[int] = (8,),
    solvers: list[str] | None = None,
    n_queries: int = 5,
    seed: int = 0,
) -> MatrixResult:
    """Sweep the requested sub-grid; every cell cross-checks its optima."""
    solvers = solvers or list(_DEFAULT_SOLVERS)
    result = MatrixResult()
    for experiment in experiments:
        for scheme in schemes:
            for qtype in qtypes:
                for load in loads:
                    for N in ns:
                        point = run_point(
                            experiment, scheme, qtype, load, N, solvers,
                            n_queries=n_queries, seed=seed,
                        )
                        result.cells.append(
                            MatrixCell(
                                experiment, scheme, qtype, load, N,
                                mean_ms={
                                    s: point.timings[s].mean_ms for s in solvers
                                },
                                mean_response_ms=point.timings[
                                    solvers[0]
                                ].mean_response_ms,
                            )
                        )
    return result
