"""Network front-end throughput: RPC over localhost vs direct submit.

Quantifies what the serving edge costs: the same seeded workload is
hammered through

``direct``
    T threads calling :meth:`SchedulerService.submit` in-process — the
    concurrent-pipeline baseline (no serialization, no sockets).
``net``
    The same T threads, each holding a pooled
    :class:`~repro.net.SchedulerClient` against a
    :class:`~repro.net.BackgroundServer` on localhost — framing, JSON
    envelopes, admission control and the event loop all included.
``fleet`` (``workers >= 1``)
    The same wire path, but the server hosts ``workers`` scheduler
    shards over a ``workers``-lane :class:`~repro.fleet.SolveFleet`
    process pool — N solve locks and solves off the GIL.  This is the
    scaling configuration `repro net-bench --workers N` measures;
    near-linear scaling with N requires N free cores (on a single-core
    box the fleet mode only measures the process-shipping overhead).

All modes report sustained requests/sec and p50/p95 submit latency;
``overhead_p50_ms`` is the per-request cost of the wire.  A correctness
cross-check rides along: every record returned over the wire must match
(assignment and response time) the record the server-side service wrote
to its own history — serialization must be transparent.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.bench.service_bench import (
    _build_deployment,
    _hammer,
    _quantile,
    make_workload,
)
from repro.core.api import solve
from repro.core.problem import RetrievalProblem
from repro.fleet.codec import (
    SUPPORTED_PAYLOAD_VERSIONS,
    encode_problem,
    encode_schedule,
)
from repro.net.client import SchedulerClient
from repro.net.run import BackgroundServer
from repro.net.server import ServerConfig
from repro.service import SchedulerService, ServiceConfig
from repro.service.sharded import ShardedSchedulerService
from repro.service.stats import ServiceRecord

__all__ = [
    "NetBenchResult",
    "NetModeResult",
    "format_net_bench",
    "run_net_bench",
]

Stream = list[list[tuple[int, int]]]


@dataclass
class NetModeResult:
    """One transport mode's measurements."""

    mode: str
    queries: int
    wall_s: float
    throughput_qps: float
    p50_submit_ms: float
    p95_submit_ms: float
    mean_submit_ms: float
    shed: int = 0


@dataclass
class NetBenchResult:
    """The wire-vs-direct comparison (JSON-serialisable via to_dict)."""

    n: int
    clients: int
    requests_per_client: int
    distinct_signatures: int
    solver: str
    pool_size: int
    workers: int = 0
    #: cores visible to this run — makes single-core artifacts
    #: self-describing (fleet numbers without free cores only measure
    #: process-shipping overhead, not scaling)
    cpu_count: int = 0
    modes: dict = field(default_factory=dict)
    #: pickled fleet-payload sizes per codec version for one sample
    #: query of this workload: ``{"v1": {"problem": .., "schedule": ..}}``.
    #: Documents what the process fleet actually ships — v2 trades
    #: larger pickles (8-byte ``array('q')`` ints vs pickle's ~2-byte
    #: small ints) for ~2x faster decode.
    codec_bytes: dict = field(default_factory=dict)

    @property
    def overhead_p50_ms(self) -> float:
        direct = self.modes.get("direct")
        net = self.modes.get("net")
        if not direct or not net:
            return 0.0
        return net.p50_submit_ms - direct.p50_submit_ms

    @property
    def slowdown_net(self) -> float:
        direct = self.modes.get("direct")
        net = self.modes.get("net")
        if not direct or not net or not net.throughput_qps:
            return 0.0
        return direct.throughput_qps / net.throughput_qps

    @property
    def speedup_fleet_vs_net(self) -> float:
        """Fleet-mode throughput relative to the single-service net mode."""
        net = self.modes.get("net")
        fleet = self.modes.get("fleet")
        if not net or not fleet or not net.throughput_qps:
            return 0.0
        return fleet.throughput_qps / net.throughput_qps

    def to_dict(self) -> dict:
        out = asdict(self)
        out["modes"] = {k: asdict(v) for k, v in self.modes.items()}
        out["overhead_p50_ms"] = round(self.overhead_p50_ms, 4)
        out["slowdown_net_vs_direct"] = round(self.slowdown_net, 3)
        if "fleet" in self.modes:
            out["speedup_fleet_vs_net"] = round(self.speedup_fleet_vs_net, 3)
        return out


def _codec_footprint(
    system, placement, coords, solver: str
) -> dict[str, dict[str, int]]:
    """Bytes-on-wire per codec version for one sample query.

    Measures what :class:`~repro.fleet.SolveFleet` actually submits to a
    worker: the pickled problem payload (request) and the pickled
    schedule payload (reply), per supported payload version.
    """
    import pickle

    problem = RetrievalProblem.from_query(system, placement, coords)
    schedule = solve(problem, solver=solver)
    out: dict[str, dict[str, int]] = {}
    for version in SUPPORTED_PAYLOAD_VERSIONS:
        out[f"v{version}"] = {
            "problem": len(
                pickle.dumps(
                    encode_problem(problem, version=version), protocol=5
                )
            ),
            "schedule": len(
                pickle.dumps(
                    encode_schedule(schedule, version=version), protocol=5
                )
            ),
        }
    return out


def _check_wire_transparency(
    service: SchedulerService, outputs: list[ServiceRecord]
) -> None:
    """Wire records must match the server-side history exactly."""
    if len(service.history) != len(outputs):
        raise AssertionError(
            f"server recorded {len(service.history)} queries but clients "
            f"hold {len(outputs)} records"
        )
    by_arrival = {r.arrival_ms: r for r in service.history}
    for record in outputs:
        direct = by_arrival.get(record.arrival_ms)
        if direct is None:
            raise AssertionError(
                f"wire record at arrival {record.arrival_ms} has no "
                f"server-side counterpart"
            )
        if (
            abs(direct.response_time_ms - record.response_time_ms) > 1e-9
            or direct.assignment != record.assignment
        ):
            raise AssertionError(
                f"wire record diverged from the service record at arrival "
                f"{record.arrival_ms}"
            )


def _check_fleet_transparency(
    service: "ShardedSchedulerService", outputs: list[ServiceRecord]
) -> None:
    """Sharded variant: wire records match the pooled shard histories.

    Shard clocks are independent, so arrival times cannot key records
    the way the single-service check does; instead the multiset of
    ``(num_buckets, response_time_ms)`` pairs must agree exactly.
    """
    history = [r for svc in service.services for r in svc.history]
    if len(history) != len(outputs):
        raise AssertionError(
            f"shards recorded {len(history)} queries but clients hold "
            f"{len(outputs)} records"
        )
    got = sorted((r.num_buckets, r.response_time_ms) for r in outputs)
    want = sorted((r.num_buckets, r.response_time_ms) for r in history)
    if got != want:
        raise AssertionError(
            "wire records diverged from the shard histories "
            "(num_buckets/response_time multisets differ)"
        )


def _hammer_clients(
    streams: list[Stream],
    clients: list[SchedulerClient],
) -> tuple[float, list[float], list[ServiceRecord]]:
    """Like service_bench._hammer, but each stream gets its own client."""
    latencies: list[float] = []
    outputs: list[ServiceRecord] = []
    failures: list[Exception] = []
    lock = threading.Lock()
    barrier = threading.Barrier(len(streams) + 1)

    def worker(stream: Stream, client: SchedulerClient) -> None:
        mine: list[float] = []
        outs: list[ServiceRecord] = []
        try:
            barrier.wait(timeout=60)
            for coords in stream:
                t0 = time.perf_counter()
                outs.append(client.submit(coords))
                mine.append((time.perf_counter() - t0) * 1000.0)
        except Exception as exc:  # noqa: BLE001 - re-raised by the caller
            failures.append(exc)
        with lock:
            latencies.extend(mine)
            outputs.extend(outs)

    threads = [
        threading.Thread(target=worker, args=(s, c))
        for s, c in zip(streams, clients)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if failures:
        raise failures[0]
    return wall, latencies, outputs


def _mode_result(
    mode: str,
    total: int,
    wall: float,
    lats: list[float],
    shed: int = 0,
) -> NetModeResult:
    return NetModeResult(
        mode=mode,
        queries=total,
        wall_s=wall,
        throughput_qps=total / wall if wall else 0.0,
        p50_submit_ms=_quantile(lats, 0.50),
        p95_submit_ms=_quantile(lats, 0.95),
        mean_submit_ms=sum(lats) / len(lats) if lats else 0.0,
        shed=shed,
    )


def run_net_bench(
    *,
    n: int = 6,
    clients: int = 4,
    requests_per_client: int = 25,
    distinct: int = 12,
    solver: str = "pr-binary",
    cache_size: int = 64,
    pool_size: int = 1,
    max_inflight: int = 64,
    seed: int = 0,
    workers: int = 0,
) -> NetBenchResult:
    """Measure direct vs over-the-wire submit on the same workload.

    ``workers >= 1`` adds the ``fleet`` mode: the same wire workload
    against ``workers`` scheduler shards sharing a ``workers``-lane
    process fleet (``solve_backend="process"``).
    """
    cpu = os.cpu_count() or 1
    if workers > cpu:
        raise ValueError(
            f"workers={workers} exceeds os.cpu_count()={cpu}: a fleet "
            "larger than the machine cannot scale and would silently "
            "measure oversubscription, not speedup"
        )
    streams = make_workload(
        n, clients, requests_per_client, distinct=distinct, seed=seed
    )
    total = sum(len(s) for s in streams)
    result = NetBenchResult(
        n=n,
        clients=clients,
        requests_per_client=requests_per_client,
        distinct_signatures=distinct,
        solver=solver,
        pool_size=pool_size,
        workers=workers,
        cpu_count=cpu,
    )
    result.codec_bytes = _codec_footprint(
        *_build_deployment(n, seed), streams[0][0], solver
    )

    def build_service() -> SchedulerService:
        return SchedulerService(
            *_build_deployment(n, seed),
            config=ServiceConfig(solver=solver, cache_size=cache_size),
        )

    # direct: in-process pipeline service
    svc = build_service()
    wall, lats, _ = _hammer(svc.submit, streams)
    result.modes["direct"] = _mode_result("direct", total, wall, lats)

    # net: same workload through the RPC front end on localhost
    net_service = build_service()
    with BackgroundServer(
        net_service, ServerConfig(max_inflight=max_inflight)
    ) as bg:
        pool = [
            SchedulerClient(
                bg.host, bg.port, pool_size=pool_size, deadline_ms=60_000.0
            )
            for _ in range(len(streams))
        ]
        try:
            wall, lats, outputs = _hammer_clients(streams, pool)
        finally:
            for client in pool:
                client.close()
        shed = int(bg.server.registry.counter("repro_net_shed_total").value)
    _check_wire_transparency(net_service, outputs)
    result.modes["net"] = _mode_result("net", total, wall, lats, shed=shed)

    # fleet: N shards over an N-lane process fleet, same wire workload
    if workers >= 1:
        fleet_service = ShardedSchedulerService(
            [_build_deployment(n, seed + k) for k in range(workers)],
            config=ServiceConfig(
                solver=solver,
                cache_size=cache_size,
                solve_backend="process",
                fleet_workers=workers,
            ),
        )
        try:
            with BackgroundServer(
                fleet_service, ServerConfig(max_inflight=max_inflight)
            ) as bg:
                pool = [
                    SchedulerClient(
                        bg.host, bg.port, pool_size=pool_size,
                        deadline_ms=60_000.0,
                    )
                    for _ in range(len(streams))
                ]
                try:
                    wall, lats, outputs = _hammer_clients(streams, pool)
                finally:
                    for client in pool:
                        client.close()
                shed = int(
                    bg.server.registry.counter("repro_net_shed_total").value
                )
            _check_fleet_transparency(fleet_service, outputs)
        finally:
            fleet_service.close()
        result.modes["fleet"] = _mode_result(
            "fleet", total, wall, lats, shed=shed
        )
    return result


def format_net_bench(result: NetBenchResult) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"net bench: n={result.n} clients={result.clients} "
        f"x{result.requests_per_client} req "
        f"({result.distinct_signatures} signatures, {result.solver})",
        f"{'mode':<8} {'qps':>9} {'p50 ms':>9} {'p95 ms':>9} "
        f"{'mean ms':>9} {'shed':>5}",
    ]
    for mode in ("direct", "net", "fleet"):
        m = result.modes.get(mode)
        if m is None:
            continue
        lines.append(
            f"{m.mode:<8} {m.throughput_qps:>9.1f} {m.p50_submit_ms:>9.3f} "
            f"{m.p95_submit_ms:>9.3f} {m.mean_submit_ms:>9.3f} {m.shed:>5d}"
        )
    lines.append(
        f"wire overhead: p50 {result.overhead_p50_ms:+.3f} ms, "
        f"throughput x{result.slowdown_net:.2f} slower than direct"
    )
    if "fleet" in result.modes:
        lines.append(
            f"fleet ({result.workers} workers, {result.cpu_count} cores): "
            f"x{result.speedup_fleet_vs_net:.2f} vs net "
            f"(needs {result.workers} free cores for linear scaling)"
        )
    if result.codec_bytes:
        parts = [
            f"{v} problem={sizes['problem']}B schedule={sizes['schedule']}B"
            for v, sizes in sorted(result.codec_bytes.items())
        ]
        lines.append("fleet codec bytes on wire: " + ", ".join(parts))
    return "\n".join(lines)
