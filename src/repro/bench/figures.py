"""One driver per figure/table of the paper's evaluation (§VI).

Every driver returns a :class:`FigureResult` whose panels mirror the
paper's subfigures, and whose ``render()`` prints the series in the
paper's layout.  The drivers are consumed by ``benchmarks/bench_fig*.py``
(pytest-benchmark targets) and by the CLI (``python -m repro figure …``).

The expected *shapes* — who wins, by what factor, where crossovers fall —
are recorded per figure in EXPERIMENTS.md together with measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import BenchScale, current_scale, run_point, sweep
from repro.bench.reporting import banner, format_series, format_table

__all__ = [
    "FigureResult",
    "Panel",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "headline_speedups",
    "table3",
    "FIGURES",
]

#: allocation schemes plotted in Figures 7-9
SCHEMES = ("rda", "dependent", "orthogonal")


@dataclass
class Panel:
    """One subfigure: x values and named series."""

    title: str
    x_label: str
    xs: list
    series: dict[str, list[float]]
    unit: str = "msec"
    notes: str = ""

    def render(self) -> str:
        out = [f"--- {self.title} ---"]
        out.append(format_series(self.x_label, self.xs, self.series, unit=self.unit))
        if self.notes:
            out.append(self.notes)
        return "\n".join(out)


@dataclass
class FigureResult:
    """A figure: header plus panels."""

    figure_id: str
    title: str
    panels: list[Panel] = field(default_factory=list)
    scale: BenchScale | None = None

    def render(self) -> str:
        sub = self.scale.label if self.scale else ""
        out = [banner(f"{self.figure_id}: {self.title}", sub)]
        for panel in self.panels:
            out.append(panel.render())
            out.append("")
        return "\n".join(out)


# ----------------------------------------------------------------------
# Figures 5 and 6: Ford-Fulkerson vs Push-relabel runtimes
# ----------------------------------------------------------------------
def fig05(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """Experiment 1, RDA: Algorithm 1 (FF) vs Algorithm 6 (PR) runtime.

    Panels: (a) range/load 1, (b) arbitrary/load 2, (c) range/load 3.
    Expected shape: PR scales far better as N (and |Q|) grow; FF may edge
    PR for load 3's tiny queries at small N.
    """
    scale = scale or current_scale()
    solvers = {"Ford-Fulkerson": {"solver": "ff-basic"},
               "Push-relabel": {"solver": "pr-binary"}}
    fig = FigureResult("Figure 5", "Experiment 1, RDA, FF vs PR execution time", scale=scale)
    for tag, qtype, load in (("a", "range", 1), ("b", "arbitrary", 2), ("c", "range", 3)):
        points = sweep(1, "rda", qtype, load, scale.ns, solvers,
                       n_queries=scale.queries_per_point, seed=seed)
        fig.panels.append(Panel(
            f"({tag}) {qtype.capitalize()}, Load {load}",
            "N", [p.N for p in points],
            {name: [p.timings[name].mean_ms for p in points] for name in solvers},
        ))
    return fig


def fig06(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """Experiment 5, Orthogonal: Algorithm 2 (FF) vs Algorithm 6 (PR).

    Panels: (a) arbitrary/load 1, (b) range/load 2, (c) arbitrary/load 3.
    Same expected shape as Figure 5, now on the generalized problem.
    """
    scale = scale or current_scale()
    solvers = {"Ford-Fulkerson": {"solver": "ff-incremental"},
               "Push-relabel": {"solver": "pr-binary"}}
    fig = FigureResult("Figure 6", "Experiment 5, Orthogonal, FF vs PR execution time", scale=scale)
    for tag, qtype, load in (("a", "arbitrary", 1), ("b", "range", 2), ("c", "arbitrary", 3)):
        points = sweep(5, "orthogonal", qtype, load, scale.ns, solvers,
                       n_queries=scale.queries_per_point, seed=seed)
        fig.panels.append(Panel(
            f"({tag}) {qtype.capitalize()}, Load {load}",
            "N", [p.N for p in points],
            {name: [p.timings[name].mean_ms for p in points] for name in solvers},
        ))
    return fig


# ----------------------------------------------------------------------
# Figures 7-9: black box vs integrated push-relabel
# ----------------------------------------------------------------------
_BB_INT = {"black box": {"solver": "blackbox-binary"},
           "integrated": {"solver": "pr-binary"}}


def fig07(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """Experiment 1 (basic): black-box/integrated runtime ratio per scheme.

    Panels: (a) range/load 1, (b) arbitrary/load 2, (c) range/load 3.
    Expected shape: ratios hover near 1 (few increment steps in the basic
    problem), rising where a scheme needs more incrementation.
    """
    scale = scale or current_scale()
    fig = FigureResult("Figure 7", "Experiment 1, PR black box / integrated ratio", scale=scale)
    for tag, qtype, load in (("a", "range", 1), ("b", "arbitrary", 2), ("c", "range", 3)):
        series: dict[str, list[float]] = {}
        for scheme in SCHEMES:
            points = sweep(1, scheme, qtype, load, scale.ns, _BB_INT,
                           n_queries=scale.queries_per_point, seed=seed)
            series[scheme.capitalize()] = [
                p.ratio("black box", "integrated") for p in points
            ]
        fig.panels.append(Panel(
            f"({tag}) {qtype.capitalize()}, Load {load}",
            "N", list(scale.ns), series, unit="bb/int",
        ))
    return fig


def fig08(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """Experiment 3, arbitrary/load 1: (a) black-box time, (b) integrated
    time, (c) ratio — per allocation scheme.

    Expected shape: the integrated algorithm narrows the runtime gap
    between schemes (panel b flatter across schemes than panel a), so the
    ratio is highest for the scheme that needs the most increments.
    """
    scale = scale or current_scale()
    fig = FigureResult("Figure 8", "Experiment 3, Arbitrary Load 1, PR comparison", scale=scale)
    per_scheme = {
        scheme: sweep(3, scheme, "arbitrary", 1, scale.ns, _BB_INT,
                      n_queries=scale.queries_per_point, seed=seed)
        for scheme in SCHEMES
    }
    fig.panels.append(Panel(
        "(a) Black Box Execution Time", "N", list(scale.ns),
        {s.capitalize(): [p.timings["black box"].mean_ms for p in pts]
         for s, pts in per_scheme.items()},
    ))
    fig.panels.append(Panel(
        "(b) Integrated Execution Time", "N", list(scale.ns),
        {s.capitalize(): [p.timings["integrated"].mean_ms for p in pts]
         for s, pts in per_scheme.items()},
    ))
    fig.panels.append(Panel(
        "(c) Execution Time Ratio", "N", list(scale.ns),
        {s.capitalize(): [p.ratio("black box", "integrated") for p in pts]
         for s, pts in per_scheme.items()},
        unit="bb/int",
    ))
    return fig


def fig09(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """Experiment 5: black-box/integrated ratio, arbitrary queries.

    Panels: loads 1, 2, 3; series per scheme.  Expected shape: the largest
    ratios of the evaluation (up to ~2.5x in the paper) — Experiment 5's
    random delays/loads force many increment steps, which is where flow
    conservation pays.
    """
    scale = scale or current_scale()
    fig = FigureResult("Figure 9", "Experiment 5, PR black box / integrated ratio", scale=scale)
    for tag, load in (("a", 1), ("b", 2), ("c", 3)):
        series: dict[str, list[float]] = {}
        for scheme in SCHEMES:
            points = sweep(5, scheme, "arbitrary", load, scale.ns, _BB_INT,
                           n_queries=scale.queries_per_point, seed=seed)
            series[scheme.capitalize()] = [
                p.ratio("black box", "integrated") for p in points
            ]
        fig.panels.append(Panel(
            f"({tag}) Load {load}", "N", list(scale.ns), series, unit="bb/int",
        ))
    return fig


# ----------------------------------------------------------------------
# Figure 10: parallel vs sequential, per query
# ----------------------------------------------------------------------
def fig10(
    scale: BenchScale | None = None,
    seed: int = 0,
    *,
    num_threads: int = 2,
) -> FigureResult:
    """Experiment 5, fixed N: per-query parallel/sequential runtime ratio.

    Panels: (a) arbitrary/load 1/orthogonal, (b) range/load 2/orthogonal,
    (c) arbitrary/load 1/RDA.  The paper's plots show ratios fluctuating
    with graph structure around a mean speed-up of ~1.2x on 2 threads.

    GIL caveat (DESIGN.md §2): under CPython the mean ratio sits at or
    above 1.0 (parallel not faster); the per-query *fluctuation with
    graph structure* is the reproduced phenomenon, and the per-thread
    work split is reported to show the parallel schedule engages.
    """
    scale = scale or current_scale()
    N = max(scale.ns)
    n_queries = min(scale.queries_per_point * 4, 100) if not scale.full else 100
    fig = FigureResult(
        "Figure 10",
        f"Experiment 5, parallel/sequential per-query ratio, {num_threads} threads, {N} disks",
        scale=scale,
    )
    solvers = {
        "sequential": {"solver": "pr-binary"},
        "parallel": {"solver": "parallel-binary", "num_threads": num_threads},
    }
    for tag, qtype, load, scheme in (
        ("a", "arbitrary", 1, "orthogonal"),
        ("b", "range", 2, "orthogonal"),
        ("c", "arbitrary", 1, "rda"),
    ):
        point = run_point(5, scheme, qtype, load, N, solvers,
                          n_queries=n_queries, seed=seed)
        seq = point.timings["sequential"].per_query_s
        par = point.timings["parallel"].per_query_s
        ratios = [p / s if s > 0 else float("nan") for p, s in zip(par, seq)]
        mean_ratio = float(np.mean(ratios))
        # the paper attributes the fluctuation to graph structure (§VI.F.3);
        # quantify it with the size<->ratio rank correlation
        from repro.analysis.structure import structure_correlation_study

        study = structure_correlation_study(
            5, scheme, N, qtype, load,
            n_queries=min(n_queries, 20), num_threads=num_threads, seed=seed,
        )
        fig.panels.append(Panel(
            f"({tag}) {qtype.capitalize()}, Load {load}, {scheme.capitalize()}",
            "Query", list(range(len(ratios))),
            {"parallel/sequential": ratios},
            unit="ratio",
            notes=(
                f"mean ratio = {mean_ratio:.3f} "
                f"(paper: ~0.83 = 1/1.2x; CPython GIL keeps ours >= ~1); "
                f"|Q|<->ratio rank correlation = "
                f"{study.size_ratio_correlation:+.2f} "
                f"(structure-dependence, paper §VI.F.3)"
            ),
        ))
    return fig


# ----------------------------------------------------------------------
# headline numbers and Table III
# ----------------------------------------------------------------------
def headline_speedups(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """§VI.F headline: integrated-vs-black-box and parallel-vs-sequential
    aggregate speedups (paper: <=2.5x, <=1.7x, combined <=4.25x / ~3x avg)."""
    scale = scale or current_scale()
    fig = FigureResult("Headline", "Aggregate speedups (paper §VI headline numbers)", scale=scale)
    ratios_bb_int: list[float] = []
    for scheme in SCHEMES:
        for load in (1, 2, 3):
            point = run_point(
                5, scheme, "arbitrary", load, max(scale.ns), _BB_INT,
                n_queries=scale.queries_per_point, seed=seed,
            )
            ratios_bb_int.append(point.ratio("black box", "integrated"))
    solvers_par = {
        "sequential": {"solver": "pr-binary"},
        "parallel": {"solver": "parallel-binary", "num_threads": 2},
    }
    point = run_point(5, "orthogonal", "arbitrary", 1, max(scale.ns),
                      solvers_par, n_queries=scale.queries_per_point, seed=seed)
    par_seq = point.ratio("parallel", "sequential")
    rows = [
        ["integrated over black box (max)", f"{max(ratios_bb_int):.2f}x", "2.5x"],
        ["integrated over black box (mean)", f"{np.mean(ratios_bb_int):.2f}x", "—"],
        ["sequential over parallel", f"{1.0 / par_seq:.2f}x", "1.7x (1.2x avg)"],
        ["combined (max bb/int x seq/par)",
         f"{max(ratios_bb_int) / par_seq:.2f}x", "4.25x (~3x avg)"],
    ]
    fig.panels.append(Panel(
        "Aggregates at N = %d" % max(scale.ns), "metric",
        [r[0] for r in rows],
        {"measured": [float(r[1].rstrip("x")) for r in rows]},
        unit="x",
        notes=format_table(["metric", "measured", "paper"], rows)
        + "\nGIL note: parallel >= sequential wall-clock under CPython is expected.",
    ))
    return fig


def table3() -> FigureResult:
    """Table III (disk specs) + the capacity model they induce."""
    from repro.storage.disk import DISK_CATALOG

    fig = FigureResult("Table III", "Disk specifications (paper Table III)")
    rows = [
        [s.producer, s.model, s.kind, s.rpm or "—", s.block_time_ms]
        for s in DISK_CATALOG.values()
    ]
    fig.panels.append(Panel(
        "Disk catalogue", "Producer", [r[0] for r in rows],
        {"Time (ms)": [r[4] for r in rows]},
        notes=format_table(["Producer", "Model", "Type", "RPM", "Time (ms)"], rows),
    ))
    # capacity curves: buckets servable by deadline t per spec
    deadlines = [5.0, 10.0, 25.0, 50.0, 100.0]
    series = {
        s.name: [float(int(t // s.block_time_ms)) for t in deadlines]
        for s in DISK_CATALOG.values()
    }
    fig.panels.append(Panel(
        "Capacity vs deadline (idle disk, no delay)", "deadline (ms)",
        deadlines, series, unit="buckets",
    ))
    return fig


def _ablation(name):
    def driver(scale=None, seed=0):
        import repro.bench.ablations as ablations

        return getattr(ablations, name)(scale=scale, seed=seed)

    driver.__name__ = name
    return driver


#: registry used by the CLI and benchmark files
FIGURES = {
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "headline": headline_speedups,
    "table3": table3,
    # ablations (ours): same CLI/persistence/regression machinery
    "ablation-engines": _ablation("ablation_engines"),
    "ablation-conservation": _ablation("ablation_conservation"),
    "greedy-gap": _ablation("greedy_gap"),
}
