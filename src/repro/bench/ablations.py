"""Ablation drivers (CLI-facing companions of the ablation benchmarks).

Each returns a :class:`~repro.bench.figures.FigureResult` so the CLI
(``repro figure ablation-engines`` etc.), JSON persistence and the
regression differ all work on ablations exactly as on paper figures.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.figures import FigureResult, Panel
from repro.bench.harness import BenchScale, current_scale
from repro.core.api import get_solver
from repro.decluster.multisite import make_placement
from repro.workloads.experiments import build_problem, build_system

__all__ = ["ablation_engines", "ablation_conservation", "greedy_gap"]

_ENGINES = ["ford-fulkerson", "edmonds-karp", "capacity-scaling", "dinic",
            "mpm", "push-relabel", "csr-push-relabel", "highest-label",
            "relabel-to-front"]


def _problems(N, n_queries, seed, *, load=1, qtype="arbitrary"):
    rng = np.random.default_rng(seed)
    placement = make_placement("orthogonal", N, num_sites=2, rng=rng, seed=seed)
    system = build_system(5, N, rng)
    return [
        build_problem(5, "orthogonal", N, qtype, load, rng,
                      placement=placement, system=system)
        for _ in range(n_queries)
    ]


def _time_solver(problems, name, **kw) -> float:
    solver = get_solver(name, **kw)
    start = time.perf_counter()
    for p in problems:
        solver.solve(p)
    return 1000.0 * (time.perf_counter() - start) / len(problems)


def ablation_engines(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """Max-flow engine choice inside the black-box scheduler (§II-B)."""
    scale = scale or current_scale()
    fig = FigureResult("Ablation: engines",
                       "engine choice inside the black-box scheduler",
                       scale=scale)
    series: dict[str, list[float]] = {e: [] for e in _ENGINES}
    for N in scale.ns:
        problems = _problems(N, scale.queries_per_point, seed + N)
        for engine in _ENGINES:
            series[engine].append(
                _time_solver(problems, "blackbox-binary", engine=engine)
            )
    fig.panels.append(Panel(
        "black-box scheduler runtime by engine", "N", list(scale.ns), series,
    ))
    return fig


def ablation_conservation(
    scale: BenchScale | None = None, seed: int = 0
) -> FigureResult:
    """Flow conservation and binary scaling, in time and in operations."""
    scale = scale or current_scale()
    fig = FigureResult("Ablation: conservation",
                       "integrated vs black box vs no binary scaling",
                       scale=scale)
    solvers = ["pr-binary", "blackbox-binary", "pr-incremental", "ff-binary",
               "ff-incremental"]
    time_series: dict[str, list[float]] = {s: [] for s in solvers}
    push_series: dict[str, list[float]] = {
        s: [] for s in ("pr-binary", "blackbox-binary", "pr-incremental")
    }
    for N in scale.ns:
        problems = _problems(N, scale.queries_per_point, seed + N)
        for name in solvers:
            solver = get_solver(name)
            start = time.perf_counter()
            pushes = 0
            for p in problems:
                pushes += solver.solve(p).stats.pushes
            time_series[name].append(
                1000.0 * (time.perf_counter() - start) / len(problems)
            )
            if name in push_series:
                push_series[name].append(pushes / len(problems))
    fig.panels.append(Panel(
        "(a) runtime per query", "N", list(scale.ns), time_series,
    ))
    fig.panels.append(Panel(
        "(b) pushes per query (noise-free conservation evidence)",
        "N", list(scale.ns), push_series, unit="pushes",
    ))
    return fig


def greedy_gap(scale: BenchScale | None = None, seed: int = 0) -> FigureResult:
    """What optimality buys: greedy baselines vs the max-flow optimum."""
    scale = scale or current_scale()
    fig = FigureResult("Ablation: greedy gap",
                       "greedy heuristics vs the optimal scheduler",
                       scale=scale)
    xs = list(scale.ns)
    speed = {"optimal (pr-binary)": [], "greedy-finish-time": [],
             "round-robin": []}
    quality = {"greedy mean resp ratio": [], "greedy worst resp ratio": [],
               "round-robin mean resp ratio": []}
    for N in scale.ns:
        problems = _problems(N, scale.queries_per_point, seed + N)
        speed["optimal (pr-binary)"].append(_time_solver(problems, "pr-binary"))
        speed["greedy-finish-time"].append(
            _time_solver(problems, "greedy-finish-time"))
        speed["round-robin"].append(_time_solver(problems, "round-robin"))
        opt = get_solver("pr-binary")
        greedy = get_solver("greedy-finish-time")
        rr = get_solver("round-robin")
        g_ratios, r_ratios = [], []
        for p in problems:
            o = opt.solve(p).response_time_ms
            g_ratios.append(greedy.solve(p).response_time_ms / o)
            r_ratios.append(rr.solve(p).response_time_ms / o)
        quality["greedy mean resp ratio"].append(float(np.mean(g_ratios)))
        quality["greedy worst resp ratio"].append(float(np.max(g_ratios)))
        quality["round-robin mean resp ratio"].append(float(np.mean(r_ratios)))
    fig.panels.append(Panel("(a) scheduler runtime", "N", xs, speed))
    fig.panels.append(Panel(
        "(b) response-time quality vs optimal", "N", xs, quality, unit="x",
    ))
    return fig
