"""Benchmark harness: regenerate every table and figure of §VI.

* :mod:`repro.bench.harness` — timed sweeps over (experiment, scheme,
  query type, load, N) points.
* :mod:`repro.bench.figures` — one driver per paper figure; each returns
  the figure's series and prints them in the paper's layout.
* :mod:`repro.bench.reporting` — ASCII tables and aligned series output.

Scale knobs (environment variables):

=====================  ==============================================
``REPRO_BENCH_FULL``   ``1`` → paper scale (N up to 100, 1000 queries
                       per point).  Default: CI scale (N ≤ 24,
                       ~10 queries/point); shapes are preserved.
``REPRO_BENCH_NS``     comma-separated N values, overriding both.
``REPRO_BENCH_QUERIES``queries per point, overriding both.
=====================  ==============================================
"""

from repro.bench.harness import (
    BenchScale,
    PointResult,
    SolverTiming,
    current_scale,
    run_point,
    sweep,
)
from repro.bench.reporting import format_series, format_table

__all__ = [
    "BenchScale",
    "PointResult",
    "SolverTiming",
    "current_scale",
    "run_point",
    "sweep",
    "format_series",
    "format_table",
]
