"""Open-loop online scheduling harness: arrivals, departures, repair.

Drives the :class:`~repro.online.OnlineScheduler` through a seeded
Poisson arrival trace (a :class:`~repro.workloads.mixed.WorkloadMix`
blend on the virtual clock), then drains it and reports what the
continuous-time mode actually did: admissions, completions, predictive
sheds, drains, decremental warm-network repairs and released flow
units, plus predicted-vs-actual response-time statistics.

A correctness cross-check rides along (``verify=True``): every
completed query's static snapshot — the initial loads it saw and the
failure set it was admitted under — is re-solved offline, and the
online record must match the batch optimum **bit for bit** (same
makespan, same per-disk flow counts).  This is the ISSUE acceptance
differential packaged as an artifact: the numbers in BENCH_online.json
are self-verifying.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench.service_bench import _build_deployment, _quantile
from repro.core.api import solve
from repro.core.degraded import degrade_problem
from repro.core.problem import RetrievalProblem
from repro.errors import PredictedOverloadError
from repro.online.config import OnlineConfig
from repro.service import SchedulerService, ServiceConfig
from repro.workloads.mixed import MixComponent, WorkloadMix

__all__ = ["OnlineBenchResult", "format_online_bench", "run_online_bench"]

#: the default blend: interactive viewport ranges with analytical sweeps
_DEFAULT_MIX = [
    MixComponent(0.7, 3, "range"),
    MixComponent(0.3, 2, "arbitrary"),
]


@dataclass
class OnlineBenchResult:
    """One open-loop run's measurements (JSON-serialisable via to_dict)."""

    n: int
    queries: int
    mean_interarrival_ms: float
    solver: str
    cache_size: int
    max_predicted_response_ms: float | None
    seed: int
    admitted: int = 0
    completed: int = 0
    shed_predicted: int = 0
    drains: int = 0
    released_units: int = 0
    repairs: int = 0
    replans: int = 0
    cache_hits: int = 0
    final_clock_ms: float = 0.0
    p50_submit_ms: float = 0.0
    p95_submit_ms: float = 0.0
    mean_predicted_ms: float = 0.0
    mean_response_ms: float = 0.0
    p95_response_ms: float = 0.0
    #: completed records re-solved offline and matched bit-for-bit
    verified_against_offline: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


def run_online_bench(
    *,
    n: int = 6,
    queries: int = 60,
    mean_interarrival_ms: float = 15.0,
    solver: str = "pr-binary",
    cache_size: int = 64,
    max_predicted_response_ms: float | None = None,
    seed: int = 0,
    verify: bool = True,
) -> OnlineBenchResult:
    """Run one seeded open-loop trace through the online scheduler.

    ``mean_interarrival_ms`` tunes contention: values below the mean
    service time overlap queries (drains repair a still-warm network);
    ``max_predicted_response_ms`` arms predictive admission so the run
    sheds instead of queueing without bound.
    """
    rng = np.random.default_rng(seed)
    mix = WorkloadMix(list(_DEFAULT_MIX))
    events = mix.stream(n, queries, mean_interarrival_ms, rng)

    system, placement = _build_deployment(n, seed)
    service = SchedulerService(
        system,
        placement,
        config=ServiceConfig(
            mode="online",
            solver=solver,
            cache_size=cache_size,
            online=OnlineConfig(
                max_predicted_response_ms=max_predicted_response_ms
            ),
        ),
    )
    result = OnlineBenchResult(
        n=n,
        queries=len(events),
        mean_interarrival_ms=mean_interarrival_ms,
        solver=solver,
        cache_size=cache_size,
        max_predicted_response_ms=max_predicted_response_ms,
        seed=seed,
    )

    latencies: list[float] = []
    completed_records = []
    try:
        for ev in events:
            t0 = time.perf_counter()
            try:
                rec = service.submit(list(ev.buckets), arrival_ms=ev.arrival_ms)
            except PredictedOverloadError:
                continue
            finally:
                latencies.append((time.perf_counter() - t0) * 1000.0)
            completed_records.append(rec)
        result.final_clock_ms = service.drain()
        stats = service.online_stats()
        service_stats = service.stats()
    finally:
        service.close()

    result.admitted = stats.admitted
    result.completed = stats.completed
    result.shed_predicted = stats.shed_predicted
    result.drains = stats.drains
    result.released_units = stats.released_units
    result.repairs = stats.repairs
    result.replans = stats.replans
    result.cache_hits = service_stats.cache_hits
    result.p50_submit_ms = _quantile(latencies, 0.50)
    result.p95_submit_ms = _quantile(latencies, 0.95)
    responses = [r.response_time_ms for r in completed_records]
    predictions = [r.predicted_ms for r in completed_records]
    if responses:
        result.mean_response_ms = sum(responses) / len(responses)
        result.p95_response_ms = _quantile(responses, 0.95)
        result.mean_predicted_ms = sum(predictions) / len(predictions)

    if verify:
        result.verified_against_offline = _verify_against_offline(
            n, seed, completed_records
        )
    return result


def _verify_against_offline(n: int, seed: int, records) -> int:
    """Re-solve each record's static snapshot offline; demand exact ==.

    The online scheduler must be *transparent*: given the same initial
    loads and failure set a query was admitted under, the offline batch
    optimum has the same makespan and the same per-disk flow counts.
    """
    system, placement = _build_deployment(n, seed)
    verified = 0
    for rec in records:
        system.set_loads(rec.loads_before)
        problem = RetrievalProblem.from_query(
            system, placement, list(rec.assignment.keys())
        )
        if rec.failed_disks:
            problem = degrade_problem(problem, frozenset(rec.failed_disks))
        schedule = solve(problem, solver="pr-binary")
        if schedule.response_time_ms != rec.response_time_ms:
            raise AssertionError(
                f"online makespan {rec.response_time_ms} diverged from the "
                f"offline optimum {schedule.response_time_ms} at arrival "
                f"{rec.arrival_ms}"
            )
        if tuple(schedule.counts_per_disk()) != rec.counts_per_disk:
            raise AssertionError(
                f"online per-disk flows {rec.counts_per_disk} diverged from "
                f"the offline optimum {tuple(schedule.counts_per_disk())} "
                f"at arrival {rec.arrival_ms}"
            )
        verified += 1
    return verified


def format_online_bench(result: OnlineBenchResult) -> str:
    """Human-readable summary for the CLI."""
    target = (
        f"{result.max_predicted_response_ms:.0f} ms"
        if result.max_predicted_response_ms is not None
        else "off"
    )
    lines = [
        f"online bench: n={result.n} queries={result.queries} "
        f"interarrival {result.mean_interarrival_ms:.1f} ms "
        f"({result.solver}, admission target {target})",
        f"admitted {result.admitted}  completed {result.completed}  "
        f"shed {result.shed_predicted}  final clock "
        f"{result.final_clock_ms:.1f} ms",
        f"drains {result.drains}  repairs {result.repairs} "
        f"({result.released_units} units released)  replans "
        f"{result.replans}  cache hits {result.cache_hits}",
        f"submit p50 {result.p50_submit_ms:.3f} ms  p95 "
        f"{result.p95_submit_ms:.3f} ms",
        f"response mean {result.mean_response_ms:.2f} ms  p95 "
        f"{result.p95_response_ms:.2f} ms  (predicted lower bound mean "
        f"{result.mean_predicted_ms:.2f} ms)",
    ]
    if result.verified_against_offline:
        lines.append(
            f"offline differential: {result.verified_against_offline} "
            "completed schedules re-solved, all bit-for-bit equal"
        )
    return "\n".join(lines)
