"""Profiling helpers — "no optimization without measuring".

Wraps :mod:`cProfile` around any solver on any workload point and
returns the hotspot table, so performance work on this codebase starts
from data (the discipline the HPC guides this repository follows
prescribe).  Exposed on the CLI as ``repro profile``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass

import numpy as np

from repro.core.api import get_solver
from repro.decluster.multisite import make_placement
from repro.workloads.experiments import build_problem, build_system

__all__ = ["ProfileReport", "profile_solver"]


@dataclass(frozen=True)
class ProfileReport:
    """Hotspot summary of one profiled batch."""

    solver: str
    n_queries: int
    total_seconds: float
    table: str  # pstats text, top rows by cumulative time

    def render(self) -> str:
        header = (
            f"profile: {self.solver}, {self.n_queries} queries, "
            f"{self.total_seconds:.3f}s total\n"
        )
        return header + self.table


def profile_solver(
    solver: str,
    *,
    experiment: int = 5,
    scheme: str = "orthogonal",
    N: int = 12,
    qtype: str = "arbitrary",
    load: int = 1,
    n_queries: int = 6,
    seed: int = 0,
    top: int = 15,
    sort: str = "cumulative",
    **solver_kwargs,
) -> ProfileReport:
    """Profile ``solver`` over one workload point; return the hotspots.

    ``sort`` is any :mod:`pstats` sort key (``"cumulative"``,
    ``"tottime"``, ...).
    """
    rng = np.random.default_rng(seed)
    placement = make_placement(scheme, N, num_sites=2, rng=rng, seed=seed)
    system = build_system(experiment, N, rng)
    problems = [
        build_problem(experiment, scheme, N, qtype, load, rng,
                      placement=placement, system=system)
        for _ in range(n_queries)
    ]
    instance = get_solver(solver, **solver_kwargs)

    profiler = cProfile.Profile()
    profiler.enable()
    for p in problems:
        instance.solve(p)
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    total = sum(row[3] for row in stats.stats.values())  # cumtime of roots
    # pstats' own total is in its header; recompute simply from tt sums
    total_tt = sum(row[2] for row in stats.stats.values())
    del total
    return ProfileReport(
        solver=solver,
        n_queries=n_queries,
        total_seconds=total_tt,
        table=buffer.getvalue(),
    )
