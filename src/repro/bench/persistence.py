"""JSON persistence for benchmark results.

Figure regeneration at paper scale takes hours in pure Python; persisting
results lets a run be split across sessions, diffed against earlier
builds, and post-processed (plotting, regression gates) without re-timing
anything.  The schema is deliberately flat: one JSON document per figure,
panels as objects, series as parallel arrays.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.bench.figures import FigureResult, Panel
from repro.bench.harness import BenchScale
from repro.errors import ReproError

__all__ = ["figure_to_dict", "figure_from_dict", "save_figure", "load_figure"]

_SCHEMA_VERSION = 1


def figure_to_dict(result: FigureResult) -> dict[str, Any]:
    """Serialize a :class:`FigureResult` to plain JSON-ready data."""
    return {
        "schema": _SCHEMA_VERSION,
        "figure_id": result.figure_id,
        "title": result.title,
        "scale": (
            {
                "ns": list(result.scale.ns),
                "queries_per_point": result.scale.queries_per_point,
                "full": result.scale.full,
            }
            if result.scale
            else None
        ),
        "panels": [
            {
                "title": p.title,
                "x_label": p.x_label,
                "xs": list(p.xs),
                "series": {k: list(v) for k, v in p.series.items()},
                "unit": p.unit,
                "notes": p.notes,
            }
            for p in result.panels
        ],
    }


def figure_from_dict(data: dict[str, Any]) -> FigureResult:
    """Rebuild a :class:`FigureResult` from :func:`figure_to_dict` output."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ReproError(
            f"unsupported results schema {data.get('schema')!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    scale = None
    if data.get("scale"):
        s = data["scale"]
        scale = BenchScale(
            ns=tuple(s["ns"]),
            queries_per_point=s["queries_per_point"],
            full=s["full"],
        )
    panels = [
        Panel(
            title=p["title"],
            x_label=p["x_label"],
            xs=list(p["xs"]),
            series={k: list(v) for k, v in p["series"].items()},
            unit=p.get("unit", ""),
            notes=p.get("notes", ""),
        )
        for p in data["panels"]
    ]
    return FigureResult(
        figure_id=data["figure_id"],
        title=data["title"],
        panels=panels,
        scale=scale,
    )


def save_figure(result: FigureResult, path: str | Path) -> Path:
    """Write a figure's series to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(figure_to_dict(result), indent=2))
    return path


def load_figure(path: str | Path) -> FigureResult:
    """Load a figure previously saved with :func:`save_figure`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load results from {path}: {exc}") from exc
    return figure_from_dict(data)
