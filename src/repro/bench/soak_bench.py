"""Cluster soak: open-loop load against a routed backend fleet.

Simulates a large user population against a full in-process cluster
(N backend scheduler servers behind a :class:`RoutingProxy`).  The load
is **open-loop**: ``users`` simulated users each think for an
exponential ``think_time_ms`` between queries, so arrivals form an
aggregate Poisson process with mean interarrival
``think_time_ms / users`` — requests launch on the wall clock whether or
not earlier ones have finished, exactly the regime where admission
control (shed rate) becomes visible.  Query sizes come from a
heavy-tailed :class:`~repro.workloads.mixed.WorkloadMix` blend of
interactive viewport ranges and analytical arbitrary sweeps.

Reported per run: sustained req/s, shed rate, client-observed
p50/p95/p99 latency, and per-backend cache hit rate (signature-affine
routing should keep per-backend hit rates close to the single-server
figure — that is the whole point of rendezvous routing).

A transparency cross-check rides along (``verify=True``): a *fresh*
cluster serially executes a pinned-arrival prefix of the workload, and
every wire record must match — bit for bit, makespan and per-disk
flows — a local :class:`SchedulerService` replay partitioned by the
same rendezvous routing.  The routed cluster must be indistinguishable
from the math.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.bench.service_bench import _build_deployment, _quantile
from repro.cluster.config import ClusterConfig
from repro.cluster.run import BackgroundCluster
from repro.net.client import (
    AsyncSchedulerClient,
    RetryPolicy,
    SchedulerClient,
)
from repro.net.errors import NetError, OverloadedError, RemoteError
from repro.service import SchedulerService, ServiceConfig
from repro.service.signature import (
    rendezvous_choice,
    signature_bytes,
    signature_of,
)
from repro.workloads.mixed import MixComponent, WorkloadMix

__all__ = ["SoakResult", "format_soak_bench", "run_soak_bench"]

#: the default blend: mostly interactive viewports, a heavy tail of
#: analytical sweeps (mirrors the WorkloadMix docstring scenario)
DEFAULT_MIX = [
    MixComponent(0.75, 3, "range"),
    MixComponent(0.25, 2, "arbitrary"),
]


@dataclass
class SoakResult:
    """One soak run (JSON-serialisable via :meth:`to_dict`)."""

    servers: int
    users: int
    queries: int
    think_time_ms: float
    n: int
    solver: str
    workers: int
    max_inflight: int
    seed: int
    offered_qps: float
    wall_s: float
    completed: int
    shed: int
    errors: int
    sustained_qps: float
    shed_rate: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    #: backend id -> {queries, cache_hits, cache_hit_rate}
    per_backend: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: router drain summary (forwards/failovers/backend_errors)
    router: dict[str, Any] = field(default_factory=dict)
    verified: bool = False
    verify_queries: int = 0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def _make_service(
    n: int,
    seed: int,
    *,
    solver: str,
    cache_size: int,
    workers: int,
) -> SchedulerService:
    config = ServiceConfig(
        solver=solver,
        cache_size=cache_size,
        solve_backend="process" if workers > 1 else None,
        fleet_workers=workers,
    )
    return SchedulerService(*_build_deployment(n, seed), config=config)


def _make_trace(
    n: int,
    queries: int,
    users: int,
    think_time_ms: float,
    seed: int,
) -> list[Any]:
    rng = np.random.default_rng(seed)
    mix = WorkloadMix(DEFAULT_MIX)
    return mix.stream(n, queries, think_time_ms / users, rng)


async def _open_loop(
    host: str,
    port: int,
    events: list[Any],
    *,
    pool_size: int,
    deadline_ms: float,
) -> tuple[float, list[float], int, int]:
    """Fire the trace open-loop; returns (wall_s, latencies, shed, errors)."""
    client = AsyncSchedulerClient(
        host,
        port,
        pool_size=pool_size,
        retry=RetryPolicy(attempts=1),
        deadline_ms=deadline_ms,
    )
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    shed = 0
    errors = 0

    async def one(buckets: tuple[tuple[int, int], ...]) -> None:
        nonlocal shed, errors
        t0 = time.perf_counter()
        try:
            await client.submit(list(buckets))
        except OverloadedError:
            shed += 1
            return
        except (RemoteError, NetError):
            errors += 1
            return
        latencies.append((time.perf_counter() - t0) * 1000.0)

    t_start = loop.time()
    tasks: list[asyncio.Task[None]] = []
    try:
        for ev in events:
            # open loop: launch at the trace's wall-clock arrival even
            # if every earlier request is still in flight
            delay = ev.arrival_ms / 1000.0 - (loop.time() - t_start)
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(one(ev.buckets)))
        await asyncio.gather(*tasks)
        wall = loop.time() - t_start
    finally:
        await client.close()
    return wall, latencies, shed, errors


def _per_backend_cache(stats: dict[str, Any]) -> dict[str, dict[str, Any]]:
    out: dict[str, dict[str, Any]] = {}
    for bid, payload in sorted(stats.get("per_backend", {}).items()):
        q = int(payload.get("queries", 0))
        hits = int(payload.get("cache_hits", 0))
        out[bid] = {
            "queries": q,
            "cache_hits": hits,
            "cache_hit_rate": hits / q if q else 0.0,
        }
    return out


def _verify_differential(
    *,
    servers: int,
    n: int,
    seed: int,
    solver: str,
    cache_size: int,
    workers: int,
    queries: list[tuple[tuple[int, int], ...]],
) -> None:
    """Serial replay: routed records must equal local replays bit-for-bit.

    A fresh cluster (monitor off — nothing dies here) serves a pinned
    arrival sequence; local per-backend :class:`SchedulerService`
    replicas replay the same queries partitioned by the same rendezvous
    routing.  Makespan (``response_time_ms``), assignment, degraded flag
    and the per-disk flow totals must all agree exactly.
    """
    services = [
        _make_service(
            n, seed, solver=solver, cache_size=cache_size, workers=workers
        )
        for _ in range(servers)
    ]
    ids = [f"b{k}" for k in range(servers)]
    replicas = {
        bid: _make_service(
            n, seed, solver=solver, cache_size=cache_size, workers=1
        )
        for bid in ids
    }
    with BackgroundCluster(services, monitor=False) as bg:
        client = SchedulerClient(bg.host, bg.port)
        try:
            for k, buckets in enumerate(queries):
                coords = list(buckets)
                arrival = 10.0 * (k + 1)
                wire = client.submit(coords, arrival_ms=arrival)
                bid = rendezvous_choice(
                    signature_bytes(signature_of(coords)), ids
                )
                local = replicas[bid].submit(coords, arrival_ms=arrival)
                if (
                    wire.response_time_ms != local.response_time_ms
                    or wire.assignment != local.assignment
                    or wire.degraded != local.degraded
                    or wire.num_buckets != local.num_buckets
                ):
                    raise AssertionError(
                        f"routed record diverged from the local replay for "
                        f"query {k} on backend {bid}: "
                        f"{wire.response_time_ms} vs "
                        f"{local.response_time_ms}"
                    )
            merged = client.stats()
        finally:
            client.close()
    flows = [0] * max(
        (len(r.stats().per_disk_buckets) for r in replicas.values()),
        default=0,
    )
    for replica in replicas.values():
        for j, v in enumerate(replica.stats().per_disk_buckets):
            flows[j] += int(v)
    got = [int(v) for v in merged.get("per_disk_buckets", [])]
    if got != flows:
        raise AssertionError(
            f"merged per-disk flows diverged: cluster {got} vs replay {flows}"
        )


def run_soak_bench(
    *,
    servers: int = 2,
    users: int = 200,
    queries: int = 300,
    think_time_ms: float = 1000.0,
    n: int = 6,
    solver: str = "pr-binary",
    cache_size: int = 64,
    workers: int = 1,
    max_inflight: int = 64,
    seed: int = 0,
    verify: bool = True,
    verify_queries: int = 48,
    deadline_ms: float = 30000.0,
) -> SoakResult:
    """Soak a routed cluster open-loop, then cross-check transparency."""
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if users < 1:
        raise ValueError(f"users must be >= 1, got {users}")
    events = _make_trace(n, queries, users, think_time_ms, seed)
    services = [
        _make_service(
            n, seed, solver=solver, cache_size=cache_size, workers=workers
        )
        for _ in range(servers)
    ]
    config = ClusterConfig(max_inflight=max_inflight)
    with BackgroundCluster(services, config) as bg:
        wall, lats, shed, errors = asyncio.run(
            _open_loop(
                bg.host,
                bg.port,
                events,
                pool_size=min(8, max(2, servers * 2)),
                deadline_ms=deadline_ms,
            )
        )
        control = SchedulerClient(bg.host, bg.port)
        try:
            stats = control.stats()
        finally:
            control.close()
    summary = bg.summary or {}

    verified = False
    n_verify = 0
    if verify:
        n_verify = min(verify_queries, len(events))
        _verify_differential(
            servers=servers,
            n=n,
            seed=seed,
            solver=solver,
            cache_size=cache_size,
            workers=workers,
            queries=[ev.buckets for ev in events[:n_verify]],
        )
        verified = True

    completed = len(lats)
    return SoakResult(
        servers=servers,
        users=users,
        queries=queries,
        think_time_ms=think_time_ms,
        n=n,
        solver=solver,
        workers=workers,
        max_inflight=max_inflight,
        seed=seed,
        offered_qps=1000.0 * users / think_time_ms,
        wall_s=wall,
        completed=completed,
        shed=shed,
        errors=errors,
        sustained_qps=completed / wall if wall else 0.0,
        shed_rate=shed / queries if queries else 0.0,
        p50_ms=_quantile(lats, 0.50),
        p95_ms=_quantile(lats, 0.95),
        p99_ms=_quantile(lats, 0.99),
        mean_ms=sum(lats) / completed if completed else 0.0,
        per_backend=_per_backend_cache(stats),
        router={
            k: summary.get(k, 0)
            for k in ("forwards", "failovers", "backend_errors")
        },
        verified=verified,
        verify_queries=n_verify,
    )


def format_soak_bench(result: SoakResult) -> str:
    lines = [
        f"cluster soak: {result.servers} backend(s), "
        f"{result.users} users, {result.queries} queries "
        f"(think {result.think_time_ms:.0f} ms, offered "
        f"{result.offered_qps:.1f} req/s)",
        f"  sustained    {result.sustained_qps:8.1f} req/s "
        f"over {result.wall_s:.2f} s",
        f"  completed    {result.completed:8d}   shed {result.shed} "
        f"({100.0 * result.shed_rate:.1f}%)   errors {result.errors}",
        f"  latency ms   p50 {result.p50_ms:.2f}   p95 {result.p95_ms:.2f}"
        f"   p99 {result.p99_ms:.2f}   mean {result.mean_ms:.2f}",
    ]
    for bid, info in result.per_backend.items():
        lines.append(
            f"  {bid}: {info['queries']} queries, "
            f"cache hit rate {100.0 * info['cache_hit_rate']:.1f}%"
        )
    if result.verified:
        lines.append(
            f"  transparency: {result.verify_queries} routed records "
            f"matched the serial replay bit-for-bit"
        )
    return "\n".join(lines)
