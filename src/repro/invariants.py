"""Runtime invariant sanitizer (``REPRO_CHECK_INVARIANTS=1``).

The paper's integrated algorithms are correct only while three unstated
invariants hold:

* **flow conservation** — the assignment inside a
  :class:`~repro.graph.FlowNetwork` stays a legal flow across
  StoreFlows/RestoreFlows and across warm starts (Equation 1);
* **capacity respect** — raising the disk→sink capacities
  ``floor((t - D_j - X_j) / C_j)`` never leaves an arc carrying more
  flow than its capacity (after :meth:`clamp_flow_to_sink_caps`);
* **probe monotonicity** — feasibility of a candidate deadline ``t`` is
  monotone: once some ``t`` probes feasible, no larger ``t`` may probe
  infeasible (the property binary scaling searches over).

This module turns them into machine-checked assertions.  The checks are
**off by default** and cost nothing on the default path: every hook site
tests the module-level :data:`ENABLED` flag (one attribute load) and the
flag is computed once, at import, from the ``REPRO_CHECK_INVARIANTS``
environment variable.  Set it to ``1`` (or anything not in ``{"", "0",
"false", "no", "off"}``) to run the whole test suite — or a production
canary — with the sanitizer armed.

Violations raise :class:`InvariantViolation`, a subclass of
:class:`~repro.errors.FlowValidationError`, so existing ``except``
clauses for flow corruption also catch sanitizer trips.
"""

from __future__ import annotations

import os

from repro.errors import FlowValidationError

__all__ = [
    "ENABLED",
    "InvariantViolation",
    "ProbeMonitor",
    "check_antisymmetry",
    "check_clamped_network",
    "check_valid_flow",
    "enabled_from_env",
]

_FALSEY = frozenset({"", "0", "false", "no", "off"})


def enabled_from_env(environ: os._Environ | dict | None = None) -> bool:
    """Read the sanitizer switch from ``REPRO_CHECK_INVARIANTS``."""
    env = os.environ if environ is None else environ
    return str(env.get("REPRO_CHECK_INVARIANTS", "")).lower() not in _FALSEY


#: Evaluated once at import; hook sites guard on this attribute so the
#: disabled path does no assertion work.  Tests may flip it directly
#: (``monkeypatch.setattr(invariants, "ENABLED", True)``).
ENABLED: bool = enabled_from_env()


class InvariantViolation(FlowValidationError):
    """An armed sanitizer caught a broken algorithmic invariant."""


# ----------------------------------------------------------------------
# flow-level checks (FlowNetwork hooks)
# ----------------------------------------------------------------------
def check_antisymmetry(graph, context: str) -> None:
    """Every arc and its residual twin must carry opposite flow."""
    flow = graph.flow
    for a in range(0, len(flow), 2):
        if flow[a] + flow[a + 1] != 0:
            raise InvariantViolation(
                f"{context}: antisymmetry broken on arc {a} "
                f"(flow {flow[a]} + twin {flow[a + 1]} != 0)"
            )


def check_valid_flow(graph, source: int, sink: int, context: str) -> None:
    """Conservation + capacity respect for the current assignment."""
    from repro.graph.validation import assert_valid_flow

    try:
        assert_valid_flow(graph, source, sink)
    except FlowValidationError as exc:
        raise InvariantViolation(f"{context}: {exc}") from exc


def check_clamped_network(network, context: str) -> None:
    """After clamping, the warm flow must sit within every capacity."""
    g = network.graph
    for j, a in enumerate(network.sink_arcs):
        if g.flow[a] > g.cap[a]:
            raise InvariantViolation(
                f"{context}: disk {j} still overloaded after clamp "
                f"(flow {g.flow[a]} > cap {g.cap[a]})"
            )
    check_valid_flow(g, network.source, network.sink, context)


# ----------------------------------------------------------------------
# probe-level checks (core/scaling.py hook)
# ----------------------------------------------------------------------
class ProbeMonitor:
    """Per-solve monotonicity + flow-validity watcher for probes.

    One instance is created per ``binary_scaling_solve`` /
    ``incremental_solve`` invocation when the sanitizer is armed.  Each
    deadline-indexed probe (phases ``anchor`` and ``binary``, where the
    sink capacities are a pure function of the candidate ``t``) is
    recorded; a feasible probe below an infeasible one is a monotonicity
    violation.  Increment-phase probes are validity-checked only — their
    capacities are not parameterised by ``t``.
    """

    #: phases whose capacities encode the probed deadline
    DEADLINE_PHASES = frozenset({"anchor", "binary"})

    def __init__(self, network) -> None:
        self.network = network
        self.observations: list[tuple[float, bool, str]] = []
        self._max_infeasible_t = float("-inf")
        self._min_feasible_t = float("inf")

    def after_probe(self, t: float, feasible: bool, phase: str) -> None:
        self.observations.append((t, feasible, phase))
        net = self.network
        check_valid_flow(
            net.graph, net.source, net.sink,
            f"after {phase} probe at t={t}",
        )
        if phase not in self.DEADLINE_PHASES:
            return
        if feasible:
            self._min_feasible_t = min(self._min_feasible_t, t)
        else:
            self._max_infeasible_t = max(self._max_infeasible_t, t)
        # exact: probes at the same float deadline compare equal, and
        # capacity_at is the exact inverse of finish_time, so any strict
        # inversion is a genuine monotonicity break
        if self._min_feasible_t < self._max_infeasible_t:
            raise InvariantViolation(
                "probe monotonicity broken: "
                f"t={self._min_feasible_t} probed feasible but "
                f"t={self._max_infeasible_t} probed infeasible "
                f"(observations: {self.observations})"
            )
