"""Decision records and lifetime counters specific to the online mode."""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.stats import ServiceRecord

__all__ = ["OnlineRecord", "OnlineStats"]


@dataclass(frozen=True)
class OnlineRecord(ServiceRecord):
    """A :class:`~repro.service.stats.ServiceRecord` plus the snapshot
    needed to replay the decision offline.

    ``loads_before`` and ``failed_disks`` freeze the system state the
    decision was made against (busy horizons at admission, disks routed
    around), so the replay differential can reconstruct the exact static
    problem and demand a bit-for-bit equal offline optimum.

    Attributes
    ----------
    query_id:
        Monotonic per-scheduler id; keys the in-flight bookkeeping.
    predicted_ms:
        The admission-time lower bound on the response time (what
        predictive shedding compared against its target).
    completion_ms:
        Absolute time the last transfer drains (``arrival_ms`` +
        ``response_time_ms`` at decision time; re-planning after a
        failure may move the *actual* completion later).
    loads_before:
        Per-disk busy horizon ``X_j`` at admission (ms).
    failed_disks:
        Disks marked failed at admission (sorted).
    counts_per_disk:
        Buckets routed through each disk by the decision (exact ints;
        unlike ``assignment``, duplicate bucket labels cannot collapse
        here, so the replay differential compares flows bit-for-bit).
    """

    query_id: int = -1
    predicted_ms: float = 0.0
    completion_ms: float = 0.0
    loads_before: tuple[float, ...] = ()
    failed_disks: tuple[int, ...] = ()
    counts_per_disk: tuple[int, ...] = ()


@dataclass
class OnlineStats:
    """Counters over one online scheduler's lifetime.

    ``admitted - completed`` is the in-flight population (also exported
    as the ``repro_online_inflight`` gauge).
    """

    admitted: int = 0
    completed: int = 0
    shed_predicted: int = 0
    drains: int = 0
    released_units: int = 0
    repairs: int = 0
    replans: int = 0

    @property
    def inflight(self) -> int:
        return self.admitted - self.completed

    def snapshot(self) -> "OnlineStats":
        return OnlineStats(
            admitted=self.admitted,
            completed=self.completed,
            shed_predicted=self.shed_predicted,
            drains=self.drains,
            released_units=self.released_units,
            repairs=self.repairs,
            replans=self.replans,
        )
