"""Online-mode policy knobs, grouped in one nested dataclass.

``ServiceConfig`` stays the single policy object a deployment passes
around; everything specific to the continuous-time mode lives here so
the top level does not sprawl one kwarg per knob.  Construct with
``ServiceConfig(mode="online", online=OnlineConfig(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OnlineConfig"]

#: admissible clock sources
_CLOCKS = ("virtual", "wall")


@dataclass(frozen=True)
class OnlineConfig:
    """Policy for :class:`~repro.online.OnlineScheduler`.

    Attributes
    ----------
    clock:
        ``"virtual"`` (default) advances time only with explicit
        ``arrival_ms`` values and :meth:`~repro.online.OnlineScheduler.
        advance_to` — fully deterministic, the mode benches and the
        replay differential use.  ``"wall"`` reads the service's
        injected ``time_fn`` on every submit (live deployments).
    max_predicted_response_ms:
        Admission target: a query whose *proven lower bound* on response
        time (busy horizons + candidate makespan) exceeds this is shed
        with :class:`~repro.errors.PredictedOverloadError` before any
        solve runs.  ``None`` (default) disables config-level shedding;
        per-call ``deadline_ms`` still applies.
    retry_after_slack_ms:
        Added to the computed backoff hint carried by the shed error
        (how long until the bound could fall below the target).
    repair:
        Enable decremental flow repair: when a transfer drains, release
        its units from the warm cached network and shrink the sink
        capacity back (:meth:`~repro.core.network.RetrievalNetwork.
        release_flow` / ``decrement_sink_cap``).  Only effective with a
        service-side cache (thread backend, ``cache_size > 0``).
    replan_solver:
        Registry solver used to re-plan in-flight work after
        ``mark_failed`` / ``mark_repaired`` (default: the incremental
        engine, which the paper's Algorithm 5 machinery makes cheap).
    """

    clock: str = "virtual"
    max_predicted_response_ms: float | None = None
    retry_after_slack_ms: float = 5.0
    repair: bool = True
    replan_solver: str = "pr-incremental"

    def __post_init__(self) -> None:
        if self.clock not in _CLOCKS:
            raise ValueError(
                f"clock must be one of {_CLOCKS}, got {self.clock!r}"
            )
        if (
            self.max_predicted_response_ms is not None
            and self.max_predicted_response_ms <= 0
        ):
            raise ValueError(
                f"max_predicted_response_ms must be > 0, got "
                f"{self.max_predicted_response_ms}"
            )
        if self.retry_after_slack_ms < 0:
            raise ValueError(
                f"retry_after_slack_ms must be >= 0, got "
                f"{self.retry_after_slack_ms}"
            )
