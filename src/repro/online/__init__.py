"""Continuous-time scheduling mode (``ServiceConfig(mode="online")``).

Queries arrive *and finish*: an event clock advances over drains,
decremental flow repair reclaims warm-network capacity as transfers
complete, failures re-plan in-flight work incrementally, and admission
control sheds on *predicted* response time.  See
:class:`OnlineScheduler` for the full story.
"""

from typing import Any

from repro.online.config import OnlineConfig
from repro.online.events import DrainEvent, EventClock
from repro.online.records import OnlineRecord, OnlineStats

__all__ = [
    "DrainEvent",
    "EventClock",
    "OnlineConfig",
    "OnlineRecord",
    "OnlineScheduler",
    "OnlineStats",
]


def __getattr__(name: str) -> Any:
    # OnlineScheduler is resolved lazily: its module imports the service
    # layer, which imports this package for OnlineConfig — eager loading
    # here would close that cycle during ``import repro.service``.
    if name == "OnlineScheduler":
        from repro.online.scheduler import OnlineScheduler

        return OnlineScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
