"""Continuous-time scheduling: queries arrive *and finish*.

:class:`OnlineScheduler` extends the offline
:class:`~repro.service.SchedulerService` with the three things a static
busy horizon cannot express:

* **Departures.**  Every admitted query schedules one
  :class:`~repro.online.events.DrainEvent` per disk it touches; when the
  clock passes a drain, the transfer's units are *released* from the
  warm cached network (:meth:`~repro.core.network.RetrievalNetwork.
  release_flow` + ``decrement_sink_cap``) — the paper's flow
  conservation (Algorithms 2/5 conserve flow across deadline probes)
  extended across *time* instead of rebuilding per solve.
* **Failure / repair re-planning.**  ``mark_failed`` re-plans the
  not-yet-drained buckets of every in-flight query via the incremental
  engine; ``mark_repaired`` re-plans only when the repaired disk
  strictly improves the remaining completion.
* **Predictive admission.**  A query is shed *before* any solve when a
  proven lower bound on its response time (pigeonhole over the replica
  disks' busy horizons) exceeds the admission target, raising
  :class:`~repro.errors.PredictedOverloadError` — which
  :mod:`repro.net` maps to ``OVERLOADED`` + ``retry_after_ms``.

The clock is virtual by default (time moves only with explicit
``arrival_ms`` / :meth:`advance_to` / :meth:`drain`), which makes every
run bit-for-bit reproducible — the property the online-vs-offline
replay differential tests lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.api import solve
from repro.core.degraded import degrade_problem
from repro.core.problem import RetrievalProblem
from repro.decluster.multisite import MultiSitePlacement
from repro.errors import (
    InfeasibleScheduleError,
    PredictedOverloadError,
    StorageConfigError,
)
from repro.online.events import DrainEvent, EventClock
from repro.online.records import OnlineRecord, OnlineStats
from repro.service.config import ServiceConfig
from repro.service.scheduler import QueryLike, SchedulerService
from repro.storage.system import StorageSystem

__all__ = ["OnlineScheduler"]

Signature = tuple[tuple[int, ...], ...]


@dataclass
class _PendingDrain:
    """The book entry one heap event must match to take effect."""

    at_ms: float
    units: int


@dataclass
class _InFlight:
    """One admitted, not-yet-completed query."""

    query_id: int
    problem: RetrievalProblem
    signature: Signature
    arrival_ms: float
    #: bucket index → disk id (rewritten by re-planning)
    assignment: dict[int, int]
    #: disk → pending drain (the authoritative copy; heap entries that
    #: disagree are stale and skipped)
    pending: dict[int, _PendingDrain] = field(default_factory=dict)
    #: max response-time contribution among already-drained disks
    response_floor_ms: float = 0.0


class OnlineScheduler(SchedulerService):
    """A :class:`~repro.service.SchedulerService` whose queries depart.

    Constructed directly, or — the intended spelling — via
    ``SchedulerService(system, placement, config)`` with
    ``config.mode == "online"`` (the base constructor dispatches here),
    so every existing wiring (sharded, net server, CLI serve) gains the
    online mode by configuration alone.
    """

    def __init__(
        self,
        system: StorageSystem,
        placement: MultiSitePlacement,
        config: ServiceConfig | None = None,
        **legacy: Any,
    ) -> None:
        if config is None and not legacy:
            config = ServiceConfig(mode="online")
        if config is not None and config.mode != "online":
            raise ValueError(
                "OnlineScheduler requires config.mode == 'online' "
                f"(got {config.mode!r})"
            )
        super().__init__(system, placement, config, **legacy)
        cfg = self.config.resolved_online()
        self._online_cfg = cfg
        self._wall = cfg.clock == "wall"
        self._clock_ms = self._now() if self._wall else 0.0
        self._events = EventClock()
        self._inflight: dict[int, _InFlight] = {}
        self._next_query_id = 0
        self._online_stats = OnlineStats()
        self._delays = [float(d) for d in system.delays()]

        self._m_inflight = self.registry.gauge(
            "repro_online_inflight", "Admitted, not-yet-completed queries."
        )
        self._m_predicted = self.registry.histogram(
            "repro_online_predicted_response_ms",
            "Admission-time response-time lower bound (ms).",
        )
        self._m_actual = self.registry.histogram(
            "repro_online_actual_response_ms",
            "Response time realised at completion (ms).",
        )
        self._m_shed = self.registry.counter(
            "repro_online_shed_total",
            "Queries shed on predicted response time.",
        )
        self._m_drains = self.registry.counter(
            "repro_online_drains_total", "Per-disk transfer drains."
        )
        self._m_released = self.registry.counter(
            "repro_online_released_units_total",
            "Bucket units released from warm networks by decremental repair.",
        )
        self._m_repairs = self.registry.counter(
            "repro_online_repairs_total",
            "Decremental warm-network repairs performed.",
        )
        self._m_replans = self.registry.counter(
            "repro_online_replans_total",
            "In-flight re-plans after disk failure/repair.",
        )

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now_ms(self) -> float:
        """The online clock's current position."""
        with self._lock:
            return self._now() if self._wall else self._clock_ms

    def _arrival_now_locked(self, arrival_ms: float | None) -> float:
        if arrival_ms is None:
            now = self._now() if self._wall else self._clock_ms
        else:
            now = float(arrival_ms)
        if now < self._clock_ms:
            raise StorageConfigError(
                f"online clock cannot run backwards "
                f"({now} < {self._clock_ms})"
            )
        return now

    def advance_to(self, t_ms: float) -> None:
        """Move the virtual clock to ``t_ms``, applying every drain due.

        Also usable in wall mode to force bookkeeping forward (e.g.
        before reading :meth:`online_stats` in a quiet period).
        """
        with self._lock:
            t = float(t_ms)
            if t < self._clock_ms:
                raise StorageConfigError(
                    f"online clock cannot run backwards "
                    f"({t} < {self._clock_ms})"
                )
            self._drain_due_locked(t)
            self._clock_ms = t
            self._update_depth_gauges_locked(t)

    def drain(self) -> float:
        """Run the clock forward until every in-flight query completes.

        Returns the final clock position (the completion time of the
        last transfer).  The offline-replay differential calls this and
        then compares history records against static re-solves.
        """
        with self._lock:
            while True:
                t = self._events.peek_ms()
                if t is None:
                    break
                self._clock_ms = max(self._clock_ms, t)
                self._drain_due_locked(self._clock_ms)
            self._update_depth_gauges_locked(self._clock_ms)
            return self._clock_ms

    # ------------------------------------------------------------------
    # drains + decremental repair
    # ------------------------------------------------------------------
    def _drain_due_locked(self, now: float) -> None:
        for ev in self._events.pop_due(now):
            self._apply_drain_locked(ev)

    def _apply_drain_locked(self, ev: DrainEvent) -> None:
        flight = self._inflight.get(ev.query_id)
        if flight is None:
            return
        plan = flight.pending.get(ev.disk)
        if plan is None or plan.at_ms != ev.at_ms or plan.units != ev.units:
            return  # superseded by a re-plan; the book entry is authoritative
        del flight.pending[ev.disk]
        self._online_stats.drains += 1
        self._m_drains.inc()
        contribution = (ev.at_ms - flight.arrival_ms) + self._delays[ev.disk]
        flight.response_floor_ms = max(flight.response_floor_ms, contribution)

        if self._online_cfg.repair and self._cache is not None:
            entry = self._cache.peek(flight.signature)
            if entry is not None and entry.flow is not None:
                network = entry.network
                network.graph.restore_flow(entry.flow)
                released = network.release_flow(ev.disk, ev.units)
                if released:
                    # cap - released >= flow - released: always legal
                    network.decrement_sink_cap(ev.disk, released)
                    entry.flow = network.graph.save_flow()
                    self._online_stats.released_units += released
                    self._online_stats.repairs += 1
                    self._m_released.inc(released)
                    self._m_repairs.inc()

        if not flight.pending:
            del self._inflight[ev.query_id]
            self._online_stats.completed += 1
            self._m_actual.observe(flight.response_floor_ms)
            self._m_inflight.set(float(len(self._inflight)))

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def submit(
        self,
        query: QueryLike,
        arrival_ms: float | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> OnlineRecord:
        """Admit one arrival at ``arrival_ms`` (virtual clock: required
        to be non-decreasing; omitted → the clock stays put).

        Every drain due at or before the arrival is applied *first*, so
        a completion and an arrival on the same tick resolve
        completion-first.  ``deadline_ms`` tightens the predictive
        admission target for this call only.
        """
        coords, query_obj = self._normalize_query(query)
        base = RetrievalProblem.from_query(self.system, self.placement, coords)
        with self._lock:
            now = self._arrival_now_locked(arrival_ms)
            self._drain_due_locked(now)
            self._clock_ms = now
            now, loads = self._admit_locked(now)
            failed = frozenset(self._failed)
            problem, degraded = self._apply_failures(base, failed)

            predicted = self._response_lower_bound_locked(problem)
            self._m_predicted.observe(predicted)
            self._shed_on_prediction_locked(predicted, deadline_ms)

            schedule, cache_hit = self._solve_locked(problem)
            counts = schedule.counts_per_disk()
            self._advance_horizons_locked(now, loads, counts)

            query_id = self._next_query_id
            self._next_query_id += 1
            flight = _InFlight(
                query_id=query_id,
                problem=problem,
                signature=problem.replicas,
                arrival_ms=now,
                assignment=dict(schedule.assignment),
            )
            for j, k in enumerate(counts):
                if k:
                    at = self._busy_until[j]
                    flight.pending[j] = _PendingDrain(at_ms=at, units=k)
                    self._events.schedule(DrainEvent(at, query_id, j, k))
            self._inflight[query_id] = flight
            self._online_stats.admitted += 1
            self._m_inflight.set(float(len(self._inflight)))

            record = OnlineRecord(
                arrival_ms=now,
                num_buckets=problem.num_buckets,
                response_time_ms=schedule.response_time_ms,
                assignment=schedule.as_bucket_map(),
                degraded=degraded,
                decision_time_ms=schedule.stats.wall_time_s * 1000.0,
                query=query_obj,
                cache_hit=cache_hit,
                batch_size=1,
                query_id=query_id,
                predicted_ms=predicted,
                completion_ms=now + schedule.response_time_ms,
                loads_before=tuple(loads),
                failed_disks=tuple(sorted(failed)),
                counts_per_disk=tuple(counts),
            )
            self._record_one_locked(record)
            self._update_depth_gauges_locked(now)
            return record

    def _shed_on_prediction_locked(
        self, predicted: float, deadline_ms: float | None
    ) -> None:
        target = self._online_cfg.max_predicted_response_ms
        if deadline_ms is not None:
            target = deadline_ms if target is None else min(target, deadline_ms)
        if target is None or predicted <= target:
            return
        self._online_stats.shed_predicted += 1
        self._m_shed.inc()
        retry_after = (
            max(0.0, predicted - target)
            + self._online_cfg.retry_after_slack_ms
        )
        raise PredictedOverloadError(
            f"predicted response {predicted:.3f} ms exceeds admission "
            f"target {target:.3f} ms",
            predicted_ms=predicted,
            target_ms=target,
            retry_after_ms=retry_after,
        )

    # ------------------------------------------------------------------
    # failure / repair re-planning
    # ------------------------------------------------------------------
    def mark_failed(self, disks: Sequence[int]) -> None:
        """Take disks out of scheduling and re-plan in-flight work.

        Buckets of in-flight queries whose transfer on a failed disk had
        not yet drained are re-solved over the survivors with the
        configured incremental solver.  Raises
        :class:`~repro.errors.InfeasibleScheduleError` if some bucket
        lost every replica (the query is dropped from the in-flight set
        first — it can never complete).
        """
        with self._lock:
            for d in disks:
                self.system.disk(d)  # validates the id
                self._failed.add(d)
            now = self._now() if self._wall else self._clock_ms
            self._drain_due_locked(now)
            self._clock_ms = max(self._clock_ms, now)
            self._replan_after_failure_locked(frozenset(self._failed), now)
            self._update_depth_gauges_locked(now)

    def mark_repaired(self, disks: Sequence[int]) -> None:
        """Return repaired disks to service and re-plan where it helps.

        Each in-flight query's remaining buckets are speculatively
        re-solved over the enlarged survivor set; the new plan is
        adopted only when it strictly improves that query's remaining
        completion time.
        """
        with self._lock:
            now = self._now() if self._wall else self._clock_ms
            self._drain_due_locked(now)
            self._clock_ms = max(self._clock_ms, now)
            for d in disks:
                self.system.disk(d)  # validates the id
                self._failed.discard(d)
                self._busy_until[d] = 0.0  # backlog restarts at zero
            self._replan_for_improvement_locked(now)
            self._update_depth_gauges_locked(now)

    # -- shared re-planning machinery ----------------------------------
    def _cancel_pending_locked(
        self, flight: _InFlight, disks: Sequence[int], now: float
    ) -> list[int]:
        """Remove ``flight``'s pending drains on ``disks``; roll the busy
        horizons back by the cancelled work.  Returns the bucket indices
        whose transfers were cancelled."""
        cancelled: list[int] = []
        for j in disks:
            plan = flight.pending.pop(j, None)
            if plan is None:
                continue
            rollback = plan.units * self.system.disk(j).block_time_ms
            self._busy_until[j] = max(self._busy_until[j] - rollback, now)
            cancelled.extend(
                i for i, d in flight.assignment.items() if d == j
            )
        return sorted(cancelled)

    def _resolve_remaining_locked(
        self, flight: _InFlight, indices: list[int], now: float
    ) -> tuple[Any, list[float]]:
        """Solve the sub-problem of ``flight``'s buckets at ``indices``
        against the *current* horizons and failure set."""
        sub = RetrievalProblem(
            self.system,
            tuple(flight.problem.replicas[i] for i in indices),
            labels=tuple(flight.problem.label_of(i) for i in indices),
        )
        failed = frozenset(self._failed)
        if failed:
            sub = degrade_problem(sub, failed)
        loads = [max(0.0, u - now) for u in self._busy_until]
        self.system.set_loads(loads)
        return solve(sub, solver=self._online_cfg.replan_solver), loads

    def _adopt_plan_locked(
        self,
        flight: _InFlight,
        indices: list[int],
        schedule: Any,
        loads: list[float],
        now: float,
    ) -> None:
        """Install a re-planned sub-schedule: assignment, horizons,
        merged pending drains, superseding events."""
        counts = schedule.counts_per_disk()
        self._advance_horizons_locked(now, loads, counts)
        for local_i, d in schedule.assignment.items():
            flight.assignment[indices[local_i]] = d
        for j, k in enumerate(counts):
            if not k:
                continue
            at = self._busy_until[j]
            old = flight.pending.get(j)
            units = k + (old.units if old is not None else 0)
            flight.pending[j] = _PendingDrain(at_ms=at, units=units)
            self._events.schedule(
                DrainEvent(at, flight.query_id, j, units)
            )
        self._online_stats.replans += 1
        self._m_replans.inc()

    def _replan_after_failure_locked(
        self, failed: frozenset[int], now: float
    ) -> None:
        for flight in list(self._inflight.values()):
            hit = sorted(j for j in flight.pending if j in failed)
            if not hit:
                continue
            indices = self._cancel_pending_locked(flight, hit, now)
            try:
                schedule, loads = self._resolve_remaining_locked(
                    flight, indices, now
                )
            except InfeasibleScheduleError:
                # every replica of some bucket is gone — the query can
                # never complete; drop it so the clock does not wedge
                del self._inflight[flight.query_id]
                self._m_inflight.set(float(len(self._inflight)))
                raise
            self._adopt_plan_locked(flight, indices, schedule, loads, now)

    def _replan_for_improvement_locked(self, now: float) -> None:
        for flight in list(self._inflight.values()):
            if not flight.pending:
                continue
            remaining = max(
                plan.at_ms + self._delays[j]
                for j, plan in flight.pending.items()
            )
            saved_busy = {
                j: self._busy_until[j] for j in flight.pending
            }
            pending_before = dict(flight.pending)
            indices = self._cancel_pending_locked(
                flight, sorted(flight.pending), now
            )
            schedule, loads = self._resolve_remaining_locked(
                flight, indices, now
            )
            if now + schedule.response_time_ms < remaining:
                self._adopt_plan_locked(
                    flight, indices, schedule, loads, now
                )
            else:
                # keep the old plan: restore horizons and book entries
                # (the heap still holds the original events, which match
                # the restored book entries again)
                for j, u in saved_busy.items():
                    self._busy_until[j] = u
                flight.pending = pending_before

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Number of admitted, not-yet-completed queries."""
        with self._lock:
            return len(self._inflight)

    def online_stats(self) -> OnlineStats:
        """A snapshot of the online-mode counters."""
        with self._lock:
            return self._online_stats.snapshot()
