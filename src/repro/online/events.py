"""Deterministic future-event list for the online scheduler.

One event kind is enough: a :class:`DrainEvent` marks the instant a
query's transfer on one disk finishes.  Arrivals are not events — they
*drive* the clock (each ``submit`` first applies every drain due at or
before its arrival time, then admits), which pins down the only
ordering question a discrete clock has: a completion and an arrival on
the same tick always resolve completion-first, so the drained capacity
is visible to the arriving query exactly as in the offline replay.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

__all__ = ["DrainEvent", "EventClock"]


@dataclass(frozen=True)
class DrainEvent:
    """Query ``query_id`` finishes its ``units`` transfers on ``disk``
    at ``at_ms``.

    Events are validated against the scheduler's in-flight bookkeeping
    when popped — a re-plan supersedes earlier events for the same
    (query, disk) by rewriting the book entry, leaving the stale heap
    entries to be skipped on pop (lazy invalidation).
    """

    at_ms: float
    query_id: int
    disk: int
    units: int


class EventClock:
    """Min-heap of drain events ordered by (time, schedule order).

    Ties at the same timestamp pop in the order they were scheduled,
    making every run of the virtual clock bit-for-bit reproducible.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, DrainEvent]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, event: DrainEvent) -> None:
        heapq.heappush(self._heap, (event.at_ms, next(self._seq), event))

    def peek_ms(self) -> float | None:
        """Timestamp of the earliest pending event (``None`` if empty)."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now_ms: float) -> list[DrainEvent]:
        """Pop every event with ``at_ms <= now_ms``, in deterministic order."""
        due: list[DrainEvent] = []
        while self._heap and self._heap[0][0] <= now_ms:
            due.append(heapq.heappop(self._heap)[2])
        return due
