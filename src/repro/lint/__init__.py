"""repro.lint — project-specific static analysis for the flow core and
the concurrent service layer.

An AST-based rule engine (:mod:`repro.lint.engine`) plus the rules that
turn this repository's implicit contracts into machine-checked ones:

============================  =========================================
rule                          contract
============================  =========================================
``lock-discipline``           lexical: ``*_locked`` methods and guarded
                              shared attributes only under
                              ``with self._lock``
``interprocedural-locks``     whole-program: every *call path* into a
                              ``*_locked`` helper or guarded attribute
                              holds the owning lock (call-graph based)
``lock-order``                the acquired-while-holding graph over all
                              ``_lock``/``_mutex`` attributes is acyclic
                              and non-reentrant locks are never
                              re-entered
``async-blocking``            coroutines under ``net/`` never reach a
                              blocking call (directly or transitively)
                              and never ``await`` holding a sync lock
``wire-contract``             protocol/codec encoder fields round-trip
                              through decoders and dataclasses; every
                              wire error code has a typed class; every
                              boundary-crossing exception is mappable
``flow-encapsulation``        ``.flow[...]``/``.cap[...]`` writes only
                              in the two network-owning files
``integer-capacity``          no float ``==``, ``/`` or fractional
                              literals in capacity arithmetic
``float-flow``                no float literal, ``/`` result,
                              ``float()`` cast or epsilon comparison
                              reaches a flow/cap slot anywhere in src/
``registry-completeness``     every solver/engine registered and tested
``unused-import`` et al.      hygiene (mirrors the ruff CI gate)
============================  =========================================

The whole-program rules share one project symbol table and call graph
(:class:`repro.lint.callgraph.CallGraph`), built once per run and
memoised on the :class:`Project`.

Run it as ``repro lint [--format text|json|sarif] [--jobs N]`` or from
Python::

    >>> from repro.lint import lint_repo
    >>> findings = lint_repo()          # [] when the tree is clean

Suppressions: ``# repro-lint: ignore=<rule>`` on the offending line,
``# repro-lint: disable-file=<rule>`` anywhere in the file; audited
long-lived suppressions live in the repo-root ``lint-baseline.json``
(see :mod:`repro.lint.sarif`).
"""

from repro.lint.callgraph import CallGraph
from repro.lint.engine import (
    Module,
    Project,
    ProjectRule,
    Rule,
    clear_parse_cache,
    parse_cache_size,
    parse_module,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.runner import (
    default_rules,
    format_report,
    lint_repo,
    rule_catalog,
)
from repro.lint.sarif import (
    apply_baseline,
    format_sarif,
    load_baseline,
    to_sarif,
    write_baseline,
)

__all__ = [
    "CallGraph",
    "Finding",
    "Module",
    "Project",
    "ProjectRule",
    "Rule",
    "apply_baseline",
    "clear_parse_cache",
    "default_rules",
    "format_report",
    "format_sarif",
    "lint_repo",
    "load_baseline",
    "parse_cache_size",
    "parse_module",
    "rule_catalog",
    "run_lint",
    "to_sarif",
    "write_baseline",
]
