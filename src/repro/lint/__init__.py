"""repro.lint — project-specific static analysis for the flow core and
the concurrent service layer.

An AST-based rule engine (:mod:`repro.lint.engine`) plus the rules that
turn this repository's implicit contracts into machine-checked ones:

============================  =========================================
rule                          contract
============================  =========================================
``lock-discipline``           ``*_locked`` methods and guarded shared
                              attributes only under ``with self._lock``
``flow-encapsulation``        ``.flow[...]``/``.cap[...]`` writes only
                              in the two network-owning files
``integer-capacity``          no float ``==``, ``/`` or fractional
                              literals in capacity arithmetic
``float-flow``                no float literal, ``/`` result,
                              ``float()`` cast or epsilon comparison
                              reaches a flow/cap slot anywhere in src/
``registry-completeness``     every solver/engine registered and tested
``unused-import`` et al.      hygiene (mirrors the ruff CI gate)
============================  =========================================

Run it as ``repro lint [--format text|json]`` or from Python::

    >>> from repro.lint import lint_repo
    >>> findings = lint_repo()          # [] when the tree is clean

Suppressions: ``# repro-lint: ignore=<rule>`` on the offending line,
``# repro-lint: disable-file=<rule>`` anywhere in the file.
"""

from repro.lint.engine import (
    Module,
    Project,
    ProjectRule,
    Rule,
    parse_module,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.runner import (
    default_rules,
    format_report,
    lint_repo,
    rule_catalog,
)

__all__ = [
    "Finding",
    "Module",
    "Project",
    "ProjectRule",
    "Rule",
    "default_rules",
    "format_report",
    "lint_repo",
    "parse_module",
    "rule_catalog",
    "run_lint",
]
