"""lock-discipline: the concurrent service layer's implicit contract.

PR 2's pipeline split the scheduler into lock-free admission and a
serialized solve section, encoding the boundary in *names*: methods
suffixed ``_locked`` must only run while the caller holds ``self._lock``.
This rule makes the convention machine-checked:

* **Generic**: any call to a ``*_locked`` method must be lexically inside
  a ``with <obj>._lock:`` / ``with <obj>._mutex:`` block, or inside a
  method that is itself named ``*_locked`` (locked helpers may compose),
  or inside ``__init__`` (construction happens-before publication).
* **Class-specific**: inside the classes listed in :data:`GUARDED`,
  mutating a guarded shared attribute (assignment, augmented assignment,
  deletion, or calling a method *on* the attribute — e.g.
  ``self._failed.add(...)``, ``self._cache.put(...)``) obeys the same
  lexical requirement.

``NetworkCache`` appears indirectly: it is documented as externally
locked, so its *own* methods carry no lock, and the discipline is
enforced at the call sites instead — ``SchedulerService._cache`` is a
guarded attribute, so every cache access must sit under the service
lock (or in a ``*_locked`` helper).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import attr_chain
from repro.lint.engine import Module, Rule
from repro.lint.findings import Finding

__all__ = ["GUARDED", "LOCK_ATTRS", "LockDisciplineRule"]

#: attribute names recognised as locks in ``with`` headers
LOCK_ATTRS = frozenset({"_lock", "_mutex"})

#: class name -> (lock attribute, guarded shared attributes)
GUARDED: dict[str, tuple[str, frozenset[str]]] = {
    "SchedulerService": (
        "_lock",
        frozenset(
            {
                "system",
                "_busy_until",
                "_failed",
                "_last_arrival",
                "_stats",
                "_cache",
                "history",
            }
        ),
    ),
    "OnlineScheduler": (
        "_lock",
        frozenset(
            {
                "_inflight",
                "_events",
                "_clock_ms",
                "_next_query_id",
                "_online_stats",
            }
        ),
    ),
    "SolveFleet": (
        "_lock",
        frozenset({"_lanes", "_closed", "crashes", "solves_per_lane"}),
    ),
    "BatchAdmission": ("_mutex", frozenset({"_open"})),
}

_MUTATING_STMTS = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)


def _is_lock_withitem(item: ast.withitem) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # e.g. timeout-taking acquire helpers
        expr = expr.func
    return isinstance(expr, ast.Attribute) and expr.attr in LOCK_ATTRS


def _mutation_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _mutation_targets(elt)
    elif isinstance(target, ast.Starred):
        yield from _mutation_targets(target.value)
    else:
        yield target


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "*_locked calls and guarded shared-state mutations must be "
        "lexically inside a `with self._lock` block"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for stmt in module.tree.body:
            yield from self._visit_stmt(
                module, stmt, class_name=None, exempt=False, locked=False
            )

    # ------------------------------------------------------------------
    # context-threading traversal
    # ------------------------------------------------------------------
    def _visit_stmt(
        self,
        module: Module,
        stmt: ast.stmt,
        *,
        class_name: str | None,
        exempt: bool,
        locked: bool,
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                yield from self._visit_stmt(
                    module, inner, class_name=stmt.name, exempt=False,
                    locked=False,
                )
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_exempt = stmt.name.endswith("_locked") or stmt.name == "__init__"
            for inner in stmt.body:
                yield from self._visit_stmt(
                    module, inner, class_name=class_name,
                    exempt=exempt or fn_exempt, locked=False,
                )
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            takes_lock = any(_is_lock_withitem(item) for item in stmt.items)
            for inner in stmt.body:
                yield from self._visit_stmt(
                    module, inner, class_name=class_name, exempt=exempt,
                    locked=locked or takes_lock,
                )
            return

        checking = not exempt and not locked
        if checking and isinstance(stmt, _MUTATING_STMTS):
            guard = GUARDED.get(class_name or "")
            if guard is not None:
                raw_targets = (
                    stmt.targets
                    if isinstance(stmt, (ast.Assign, ast.Delete))
                    else [stmt.target]
                )
                for raw in raw_targets:
                    for target in _mutation_targets(raw):
                        yield from self._check_mutation(
                            module, stmt, target, guard
                        )

        # scan this statement's directly-owned expressions for calls,
        # then recurse into child statements with the same context
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                if checking:
                    yield from self._check_expr(module, child, class_name)
            elif isinstance(child, ast.stmt):
                yield from self._visit_stmt(
                    module, child, class_name=class_name, exempt=exempt,
                    locked=locked,
                )
            elif isinstance(child, (ast.excepthandler, getattr(ast, "match_case", ast.excepthandler))):
                for inner in child.body:
                    yield from self._visit_stmt(
                        module, inner, class_name=class_name, exempt=exempt,
                        locked=locked,
                    )

    # ------------------------------------------------------------------
    # the actual checks
    # ------------------------------------------------------------------
    def _check_expr(
        self, module: Module, expr: ast.expr, class_name: str | None
    ) -> Iterator[Finding]:
        guard = GUARDED.get(class_name or "")
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, guard)

    def _check_call(
        self,
        module: Module,
        node: ast.Call,
        guard: tuple[str, frozenset[str]] | None,
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr.endswith("_locked"):
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=self.name,
                message=(
                    f"call to locked method '{func.attr}' outside a "
                    f"`with <obj>._lock` block"
                ),
                hint=(
                    "take the lock around the call, or move the call into "
                    "a *_locked helper"
                ),
            )
            return
        if guard is None:
            return
        lock_attr, guarded = guard
        chain = attr_chain(func)
        if (
            chain is not None
            and chain[0] == "self"
            and len(chain[1]) >= 2
            and chain[1][0] in guarded
        ):
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=self.name,
                message=(
                    f"method call on guarded attribute "
                    f"'self.{chain[1][0]}' outside `with self.{lock_attr}`"
                ),
                hint=(
                    f"wrap in `with self.{lock_attr}:` or move into a "
                    f"*_locked helper"
                ),
            )

    def _check_mutation(
        self,
        module: Module,
        stmt: ast.stmt,
        target: ast.expr,
        guard: tuple[str, frozenset[str]],
    ) -> Iterator[Finding]:
        lock_attr, guarded = guard
        chain = attr_chain(target)
        if chain is None or chain[0] != "self" or not chain[1]:
            return
        if chain[1][0] in guarded:
            yield Finding(
                path=module.path,
                line=stmt.lineno,
                col=stmt.col_offset + 1,
                rule=self.name,
                message=(
                    f"mutation of guarded attribute 'self.{chain[1][0]}' "
                    f"outside `with self.{lock_attr}`"
                ),
                hint=(
                    f"wrap in `with self.{lock_attr}:` or move into a "
                    f"*_locked helper"
                ),
            )
