"""Wire/codec contract rule: encoders, decoders and errors stay in sync.

The network envelopes (``net/protocol.py``) and the fleet payloads
(``fleet/codec.py``) each have a hand-written encoder/decoder pair plus
a typed error vocabulary.  Nothing ties the halves together at runtime —
a field added to ``record_to_wire`` but not ``record_from_wire`` ships
silently and is dropped on the far side; an exception type that crosses
the boundary without a wire code surfaces as an opaque ``INTERNAL``.
This rule derives each contract from the AST and fails the build when
the halves drift:

* ``record_to_wire`` keys == ``record_from_wire`` reads == the
  ``ServiceRecord`` dataclass fields;
* every ``query_to_wire`` kind has a matching ``query_from_wire`` branch
  and vice versa, and each branch reads the keys its encoder emits;
* ``encode_problem``/``decode_problem`` and
  ``encode_schedule``/``decode_schedule`` top-level keys match;
* every ``RemoteError`` subclass code appears in ``ERROR_CODES``, every
  code has a class (``INTERNAL`` maps to the ``RemoteError`` base), and
  every subclass is registered in ``_REMOTE_BY_CODE``;
* every project-defined exception raised under ``repro/service``,
  ``repro/online`` or ``repro/fleet`` either derives from ``ReproError``
  (the server's blanket mapping) or is named explicitly in a
  ``net/server.py`` except clause — the ``WorkerCrashedError`` class of
  gap, caught by construction.

Key extraction is deliberately scoped: an encoder contributes only the
top-level keys of dict literals it *returns*; a decoder contributes only
keys read off its **first parameter** (``obj["k"]``, ``obj.get("k")``,
``helper(obj, "k", ...)``), so nested per-site/per-disk dicts don't
poison the top-level contract.  Each sub-check silently skips when its
module is not part of the linted tree, so the rule composes with
fixture projects and partial lint runs.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.callgraph import CallGraph
from repro.lint.engine import Module, Project, ProjectRule
from repro.lint.findings import Finding

__all__ = ["WireContractRule"]


def _loc(node: ast.AST) -> tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


def _find_def(mod: Module, name: str) -> ast.FunctionDef | None:
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _find_classdef(mod: Module, name: str) -> ast.ClassDef | None:
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _return_dicts(fn: ast.FunctionDef) -> list[ast.Dict]:
    out = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            out.append(node.value)
    return out


def _dict_keys(d: ast.Dict) -> dict[str, ast.AST]:
    out: dict[str, ast.AST] = {}
    for key in d.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            out.setdefault(key.value, key)
    return out


def _first_param(fn: ast.FunctionDef) -> str | None:
    args = [*fn.args.posonlyargs, *fn.args.args]
    return args[0].arg if args else None


def _read_keys(body: Iterable[ast.AST], param: str) -> dict[str, ast.AST]:
    """String keys read off ``param`` anywhere in ``body``."""
    out: dict[str, ast.AST] = {}
    for root in body:
        for node in ast.walk(root):
            key: ast.AST | None = None
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == param
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                key = node.slice
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "get"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == param
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    key = node.args[0]
                elif (
                    isinstance(func, ast.Name)
                    and len(node.args) >= 2
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == param
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)
                ):
                    key = node.args[1]
            if key is not None:
                out.setdefault(key.value, key)  # type: ignore[attr-defined]
    return out


class WireContractRule(ProjectRule):
    """Every wire field round-trips; every wire error has a typed code."""

    name = "wire-contract"
    description = (
        "wire/codec symmetry: encoder fields must round-trip through the "
        "paired decoder and dataclass, error codes must map to typed "
        "classes, and boundary-crossing exceptions must be representable"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        yield from self._check_record_roundtrip(project)
        yield from self._check_query_kinds(project)
        yield from self._check_codec_pair(
            project, "encode_problem", "decode_problem"
        )
        yield from self._check_codec_pair(
            project, "encode_schedule", "decode_schedule"
        )
        yield from self._check_error_codes(project)
        yield from self._check_boundary_exceptions(project)

    # ------------------------------------------------------------------
    # record envelope <-> ServiceRecord dataclass
    # ------------------------------------------------------------------
    def _check_record_roundtrip(self, project: Project) -> Iterator[Finding]:
        proto = project.module("net/protocol.py")
        stats = project.module("service/stats.py")
        if proto is None:
            return
        enc = _find_def(proto, "record_to_wire")
        dec = _find_def(proto, "record_from_wire")
        if enc is None or dec is None:
            return
        enc_keys: dict[str, ast.AST] = {}
        for d in _return_dicts(enc):
            enc_keys.update(_dict_keys(d))
        param = _first_param(dec)
        dec_keys = _read_keys(dec.body, param) if param else {}

        for key in sorted(set(enc_keys) - set(dec_keys)):
            line, col = _loc(enc_keys[key])
            yield Finding(
                path=proto.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"record wire field '{key}' is encoded by record_to_wire "
                    "but never read by record_from_wire (silently dropped on "
                    "decode)"
                ),
                hint="read the field in record_from_wire or stop encoding it",
            )
        for key in sorted(set(dec_keys) - set(enc_keys)):
            line, col = _loc(dec_keys[key])
            yield Finding(
                path=proto.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"record_from_wire reads field '{key}' that "
                    "record_to_wire never emits"
                ),
                hint="emit the field in record_to_wire or drop the read",
            )

        if stats is None:
            return
        record_cls = _find_classdef(stats, "ServiceRecord")
        if record_cls is None:
            return
        fields = {
            stmt.target.id: stmt
            for stmt in record_cls.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        }
        for key in sorted(set(enc_keys) - set(fields)):
            line, col = _loc(enc_keys[key])
            yield Finding(
                path=proto.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"record wire field '{key}' does not round-trip to a "
                    "ServiceRecord dataclass field"
                ),
                hint="add the field to ServiceRecord or stop encoding it",
            )
        for name in sorted(set(fields) - set(enc_keys)):
            line, col = _loc(fields[name])
            yield Finding(
                path=stats.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"ServiceRecord field '{name}' never crosses the wire "
                    "(record_to_wire does not encode it)"
                ),
                hint="encode the field in record_to_wire or document why not",
            )

    # ------------------------------------------------------------------
    # query kinds
    # ------------------------------------------------------------------
    def _check_query_kinds(self, project: Project) -> Iterator[Finding]:
        proto = project.module("net/protocol.py")
        if proto is None:
            return
        enc = _find_def(proto, "query_to_wire")
        dec = _find_def(proto, "query_from_wire")
        if enc is None or dec is None:
            return
        # encoder: one returned dict per kind
        enc_kinds: dict[str, tuple[ast.Dict, ast.AST]] = {}
        for d in _return_dicts(enc):
            keys = _dict_keys(d)
            kind_key = keys.get("kind")
            if kind_key is None:
                continue
            for key_node, value in zip(d.keys, d.values):
                if (
                    key_node is kind_key
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    enc_kinds[value.value] = (d, kind_key)
        # decoder: `if kind == "x":` branches
        param = _first_param(dec)
        dec_kinds: dict[str, tuple[list[ast.stmt], ast.AST]] = {}
        for node in ast.walk(dec):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and isinstance(test.comparators[0], ast.Constant)
                and isinstance(test.comparators[0].value, str)
                and isinstance(test.left, ast.Name)
                and test.left.id == "kind"
            ):
                dec_kinds[test.comparators[0].value] = (
                    node.body,
                    test.comparators[0],
                )
        for kind in sorted(set(enc_kinds) - set(dec_kinds)):
            _, key_node = enc_kinds[kind]
            line, col = _loc(key_node)
            yield Finding(
                path=proto.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"query kind '{kind}' is encoded by query_to_wire but "
                    "query_from_wire has no matching branch"
                ),
                hint=f"add an `if kind == \"{kind}\":` branch to the decoder",
            )
        for kind in sorted(set(dec_kinds) - set(enc_kinds)):
            _, test_node = dec_kinds[kind]
            line, col = _loc(test_node)
            yield Finding(
                path=proto.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"query_from_wire decodes kind '{kind}' that "
                    "query_to_wire never produces"
                ),
                hint="emit the kind from query_to_wire or drop the branch",
            )
        if param is None:
            return
        for kind in sorted(set(enc_kinds) & set(dec_kinds)):
            enc_dict, _ = enc_kinds[kind]
            branch, _ = dec_kinds[kind]
            emitted = set(_dict_keys(enc_dict)) - {"kind"}
            read = set(_read_keys(branch, param))
            for key in sorted(emitted - read):
                line, col = _loc(_dict_keys(enc_dict)[key])
                yield Finding(
                    path=proto.path,
                    line=line,
                    col=col,
                    rule=self.name,
                    message=(
                        f"query kind '{kind}' encodes field '{key}' that its "
                        "decoder branch never reads"
                    ),
                    hint="read the field in the decoder branch",
                )

    # ------------------------------------------------------------------
    # fleet codec pairs
    # ------------------------------------------------------------------
    def _check_codec_pair(
        self, project: Project, enc_name: str, dec_name: str
    ) -> Iterator[Finding]:
        codec = project.module("fleet/codec.py")
        if codec is None:
            return
        enc = _find_def(codec, enc_name)
        dec = _find_def(codec, dec_name)
        if enc is None or dec is None:
            return
        enc_keys: dict[str, ast.AST] = {}
        for d in _return_dicts(enc):
            enc_keys.update(_dict_keys(d))
        param = _first_param(dec)
        if param is None:
            return
        dec_keys = _read_keys(dec.body, param)
        for key in sorted(set(enc_keys) - set(dec_keys)):
            line, col = _loc(enc_keys[key])
            yield Finding(
                path=codec.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"fleet payload field '{key}' is emitted by {enc_name} "
                    f"but never read by {dec_name}"
                ),
                hint=f"read (and validate) '{key}' in {dec_name}",
            )
        for key in sorted(set(dec_keys) - set(enc_keys)):
            line, col = _loc(dec_keys[key])
            yield Finding(
                path=codec.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"{dec_name} reads payload field '{key}' that "
                    f"{enc_name} never emits"
                ),
                hint=f"emit '{key}' from {enc_name} or drop the read",
            )

    # ------------------------------------------------------------------
    # error code vocabulary
    # ------------------------------------------------------------------
    def _check_error_codes(self, project: Project) -> Iterator[Finding]:
        proto = project.module("net/protocol.py")
        errors = project.module("net/errors.py")
        if proto is None or errors is None:
            return
        codes_node = self._error_codes_literal(proto)
        if codes_node is None:
            return
        wire_codes = {
            elt.value: elt
            for elt in ast.walk(codes_node)
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        }
        remote_classes = self._remote_error_classes(errors)
        class_codes: dict[str, tuple[str, ast.AST]] = {}
        for cls_name, (node, code) in remote_classes.items():
            if code is not None:
                class_codes.setdefault(code, (cls_name, node))
        for code, (cls_name, node) in sorted(class_codes.items()):
            if code not in wire_codes:
                line, col = _loc(node)
                yield Finding(
                    path=errors.path,
                    line=line,
                    col=col,
                    rule=self.name,
                    message=(
                        f"'{cls_name}' declares wire code '{code}' that is "
                        "not in protocol.ERROR_CODES"
                    ),
                    hint="add the code to ERROR_CODES or fix the class",
                )
        for code in sorted(set(wire_codes) - set(class_codes)):
            line, col = _loc(wire_codes[code])
            yield Finding(
                path=proto.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"wire error code '{code}' has no RemoteError subclass — "
                    "clients rehydrate it as the untyped RemoteError base"
                ),
                hint="add a RemoteError subclass with this code",
            )
        registered = self._remote_by_code_names(errors)
        if registered is not None:
            for cls_name, (node, code) in sorted(remote_classes.items()):
                if cls_name == "RemoteError" or code is None:
                    continue
                if cls_name not in registered:
                    line, col = _loc(node)
                    yield Finding(
                        path=errors.path,
                        line=line,
                        col=col,
                        rule=self.name,
                        message=(
                            f"'{cls_name}' is not registered in "
                            "_REMOTE_BY_CODE — remote_error_from_wire will "
                            "never raise it"
                        ),
                        hint="add the class to the _REMOTE_BY_CODE tuple",
                    )

    @staticmethod
    def _error_codes_literal(proto: Module) -> ast.AST | None:
        for stmt in proto.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "ERROR_CODES"
            ):
                return stmt.value
        return None

    @staticmethod
    def _remote_error_classes(
        errors: Module,
    ) -> dict[str, tuple[ast.AST, str | None]]:
        """name -> (classdef node, wire code) for RemoteError + subclasses."""
        classes: dict[str, ast.ClassDef] = {
            stmt.name: stmt
            for stmt in errors.tree.body
            if isinstance(stmt, ast.ClassDef)
        }

        def derives_remote(name: str, seen: frozenset[str]) -> bool:
            if name == "RemoteError":
                return True
            node = classes.get(name)
            if node is None or name in seen:
                return False
            return any(
                isinstance(b, ast.Name)
                and derives_remote(b.id, seen | {name})
                for b in node.bases
            )

        out: dict[str, tuple[ast.AST, str | None]] = {}
        for name, node in classes.items():
            if not derives_remote(name, frozenset()):
                continue
            code: str | None = None
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "code"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    code = stmt.value.value
                elif (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "code"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    code = stmt.value.value
            out[name] = (node, code)
        return out

    @staticmethod
    def _remote_by_code_names(errors: Module) -> set[str] | None:
        for stmt in errors.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            if not any(
                isinstance(t, ast.Name) and t.id == "_REMOTE_BY_CODE"
                for t in targets
            ):
                continue
            value = stmt.value
            assert value is not None
            return {
                node.id
                for node in ast.walk(value)
                if isinstance(node, ast.Name) and node.id != "cls"
            }
        return None

    # ------------------------------------------------------------------
    # exceptions crossing the wire
    # ------------------------------------------------------------------
    _BOUNDARY_DIRS = ("service/", "online/", "fleet/", "cluster/")

    #: modules whose except clauses count as explicit wire mappings —
    #: the scheduler server, its shared frame-server base, and the
    #: cluster routing proxy all translate exceptions to wire codes
    _HANDLER_MODULES = (
        "net/server.py",
        "net/frameserver.py",
        "cluster/router.py",
    )

    def _check_boundary_exceptions(self, project: Project) -> Iterator[Finding]:
        server = project.module("net/server.py")
        if server is None:
            return
        handlers = [server] + [
            mod
            for suffix in self._HANDLER_MODULES[1:]
            if (mod := project.module(suffix)) is not None
        ]
        handled = {
            sub.id
            for handler in handlers
            for node in ast.walk(handler.tree)
            if isinstance(node, ast.ExceptHandler) and node.type is not None
            for sub in ast.walk(node.type)
            if isinstance(sub, ast.Name)
        } | {
            sub.attr
            for handler in handlers
            for node in ast.walk(handler.tree)
            if isinstance(node, ast.ExceptHandler) and node.type is not None
            for sub in ast.walk(node.type)
            if isinstance(sub, ast.Attribute)
        }
        graph = CallGraph.of(project)
        reported: set[str] = set()
        for mod in project.modules:
            if not any(d in mod.path for d in self._BOUNDARY_DIRS):
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name: str | None = None
                if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name is None or name in reported:
                    continue
                info = graph._find_class(name, mod)
                if info is None:
                    continue  # builtin or out-of-tree: server maps generically
                mro_names = {c.name for c in graph.mro(info)}
                base_names = {
                    b.id
                    for c in graph.mro(info)
                    for b in c.node.bases
                    if isinstance(b, ast.Name)
                }
                if "ReproError" in mro_names | base_names:
                    continue  # server maps every ReproError to a typed code
                looks_exceptional = any(
                    n.endswith(("Error", "Exception"))
                    for n in {name} | base_names
                )
                if not looks_exceptional:
                    continue
                if name in handled:
                    continue
                reported.add(name)
                line, col = _loc(node)
                yield Finding(
                    path=mod.path,
                    line=line,
                    col=col,
                    rule=self.name,
                    message=(
                        f"'{name}' can cross the service/net boundary but is "
                        "neither a ReproError nor named in a wire-handler "
                        "except clause (net/server.py, net/frameserver.py, "
                        "cluster/router.py) — clients would see an opaque "
                        "INTERNAL"
                    ),
                    hint=(
                        "derive it from ReproError or add an explicit "
                        "handler mapping it to a wire code"
                    ),
                )
