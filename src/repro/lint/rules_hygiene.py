"""Hygiene rules mirroring the ruff categories this repo gates on.

``ruff`` runs in CI (see ``[tool.ruff]`` in ``pyproject.toml``), but the
container running the tests may not have it installed — these rules keep
the same three high-value checks enforceable with nothing but the
standard library, so ``repro lint`` alone proves the tree clean:

* **unused-import** (ruff F401) — module-level imports never referenced
  by name (``__all__`` strings count as references; ``__init__.py``
  re-export modules rely on them);
* **mutable-default** (ruff B006) — ``def f(x=[])`` and friends;
* **shadowed-builtin** (ruff A001/A002) — parameters, function/class
  names and module/class-level assignments that shadow a builtin;
* **bare-except** (ruff E722) — ``except:`` swallowing SystemExit;
* **constant-comparison** (ruff E711/E712) — ``== None`` / ``!= True``.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.lint.engine import Module, Rule
from repro.lint.findings import Finding

__all__ = [
    "BareExceptRule",
    "ConstantComparisonRule",
    "MutableDefaultRule",
    "ShadowedBuiltinRule",
    "UnusedImportRule",
]

_BUILTIN_NAMES = frozenset(
    name for name in dir(builtins) if not name.startswith("_")
)


def _finding(module: Module, node: ast.AST, rule: str, message: str,
             hint: str = "") -> Finding:
    return Finding(
        path=module.path,
        line=node.lineno,
        col=node.col_offset + 1,
        rule=rule,
        message=message,
        hint=hint,
    )


class UnusedImportRule(Rule):
    name = "unused-import"
    description = "module-level import never referenced (ruff F401)"

    def check(self, module: Module) -> Iterator[Finding]:
        imports: list[tuple[str, ast.stmt, str]] = []  # binding, node, shown
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    binding = alias.asname or alias.name.split(".")[0]
                    imports.append((binding, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    binding = alias.asname or alias.name
                    imports.append((binding, node, alias.name))
        if not imports:
            return

        used: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                # __all__ entries, typing strings, doctest-free reexports
                used.add(node.value)

        for binding, node, shown in imports:
            if binding not in used:
                yield _finding(
                    module, node, self.name,
                    f"'{shown}' imported but unused",
                    "remove the import, or add the name to __all__ if it "
                    "is a deliberate re-export",
                )


class MutableDefaultRule(Rule):
    name = "mutable-default"
    description = "mutable default argument (ruff B006)"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                ):
                    yield _finding(
                        module, default, self.name,
                        f"mutable default argument in '{node.name}()'",
                        "default to None and create the object in the body",
                    )


class ShadowedBuiltinRule(Rule):
    name = "shadowed-builtin"
    description = "binding shadows a builtin (ruff A001/A002)"

    def check(self, module: Module) -> Iterator[Finding]:
        # A002: arguments, anywhere (methods included)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if arg.arg in _BUILTIN_NAMES:
                    yield _finding(
                        module, arg, self.name,
                        f"argument '{arg.arg}' shadows a builtin",
                        "rename (conventional: trailing underscore)",
                    )
        # A001: module-level bindings only — class attributes and methods
        # named like builtins (Gauge.set, dataclass `max` fields) are
        # deliberate API and ruff does not flag them either
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if stmt.name in _BUILTIN_NAMES:
                    yield _finding(
                        module, stmt, self.name,
                        f"module-level name '{stmt.name}' shadows a builtin",
                        "rename (conventional: trailing underscore)",
                    )
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in _BUILTIN_NAMES
                    ):
                        yield _finding(
                            module, stmt, self.name,
                            f"assignment to '{target.id}' shadows a builtin",
                            "rename the variable",
                        )


class BareExceptRule(Rule):
    name = "bare-except"
    description = "bare `except:` clause (ruff E722)"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield _finding(
                    module, node, self.name,
                    "bare `except:` also catches SystemExit/KeyboardInterrupt",
                    "catch Exception (or something narrower)",
                )


class ConstantComparisonRule(Rule):
    name = "constant-comparison"
    description = "== / != against None, True or False (ruff E711/E712)"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and (
                        side.value is None
                        or side.value is True
                        or side.value is False
                    ):
                        yield _finding(
                            module, node, self.name,
                            f"comparison to {side.value!r} with "
                            f"'=='/'!='",
                            "use `is` / `is not` (or the truth value "
                            "directly)",
                        )
                        break
