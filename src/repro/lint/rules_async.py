"""Event-loop protection: no blocking calls inside ``async def`` bodies.

The asyncio front ends (``repro/net/`` and the ``repro/cluster/``
routing tier) run every connection on one thread; a single synchronous
``time.sleep``, socket call, or ``Lock.acquire`` stalls *all* clients.
This rule walks each coroutine in those packages' modules and flags

* direct calls to known blocking primitives (``time.sleep``, blocking
  ``socket``/``select``/``subprocess`` entry points, ``.acquire()`` on a
  ``_lock``/``_mutex`` attribute, ``.wait()`` on a ``threading.Event``
  or ``Condition``);
* calls to *project* functions that transitively block — resolved
  through the call graph, so ``self.service.stats()`` is flagged because
  ``SchedulerService.stats`` takes ``self._lock`` three frames down;
* synchronous ``with self._lock:`` blocks inside a coroutine; and
* ``await`` expressions evaluated while a sync lock is lexically held
  (the held lock stalls every other thread for the await's duration).

Calls hidden behind ``loop.run_in_executor(...)`` pass by construction:
the offloaded callable is a *reference* argument, not a call expression,
so the traversal never sees it as a call site.

Known limits: only the primitives above are modelled (e.g.
``ThreadPoolExecutor.shutdown(wait=True)`` is not), and calls whose
receiver type cannot be resolved are trusted.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.astutil import attr_chain
from repro.lint.callgraph import (
    LOCK_ATTRS,
    CallGraph,
    ClassInfo,
    FunctionInfo,
)
from repro.lint.engine import Project, ProjectRule
from repro.lint.findings import Finding

__all__ = ["AsyncBlockingRule"]

_SOCKET_BLOCKING = frozenset(
    {"create_connection", "getaddrinfo", "gethostbyname", "create_server"}
)
_SUBPROCESS_BLOCKING = frozenset({"run", "call", "check_call", "check_output"})
_WAITABLE_TYPES = frozenset({"threading.Event", "threading.Condition"})


def _loc(node: ast.AST) -> tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


def _qual(fn: FunctionInfo) -> str:
    return f"{fn.class_name}.{fn.name}" if fn.class_name else fn.name


class AsyncBlockingRule(ProjectRule):
    """Flag blocking work reachable from coroutines on an event loop.

    Applies to ``repro/net/`` and ``repro/cluster/`` — the two packages
    whose coroutines share an event loop with every connected client.
    """

    name = "async-blocking"
    description = (
        "asyncio safety: coroutines under net/ and cluster/ must not call "
        "blocking primitives (directly or transitively) or await while "
        "holding a sync lock"
    )

    #: directories whose coroutines run on a client-facing event loop
    _ASYNC_DIRS = ("net/", "cluster/")

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph.of(project)
        blocking = self._blocking_reasons(graph)
        for fn in graph.functions:
            if not fn.is_async or not any(
                d in fn.module.path for d in self._ASYNC_DIRS
            ):
                continue
            yield from self._check_coroutine(graph, fn, blocking)

    # ------------------------------------------------------------------
    def _blocking_reasons(
        self, graph: CallGraph
    ) -> dict[FunctionInfo, str]:
        """Sync project functions that block, with a one-line reason."""
        reasons: dict[FunctionInfo, str] = {}
        for fn in graph.functions:
            if fn.is_async:
                continue
            if fn.acquires:
                token = fn.acquires[0].token
                reasons[fn] = f"acquires {token[0]}.{token[1]}"
                continue
            owner = graph.class_of(fn)
            for call in fn.calls:
                desc = self._primitive(graph, fn, owner, call.node)
                if desc is not None:
                    reasons[fn] = f"calls {desc}"
                    break
        changed = True
        while changed:  # propagate through resolved sync callees
            changed = False
            for fn in graph.functions:
                if fn.is_async or fn in reasons:
                    continue
                for call in fn.calls:
                    hit = next(
                        (t for t in call.targets if t in reasons), None
                    )
                    if hit is not None:
                        reasons[fn] = f"calls '{_qual(hit)}' which {reasons[hit]}"
                        changed = True
                        break
        return reasons

    def _check_coroutine(
        self,
        graph: CallGraph,
        fn: FunctionInfo,
        blocking: dict[FunctionInfo, str],
    ) -> Iterator[Finding]:
        owner = graph.class_of(fn)
        for acquire in fn.acquires:
            line, col = _loc(acquire.node)
            token = acquire.token
            yield Finding(
                path=fn.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"sync lock {token[0]}.{token[1]} acquired inside async "
                    f"'{_qual(fn)}' — blocks the event loop while contended"
                ),
                hint="offload the locked section via loop.run_in_executor",
            )
        for node, held in fn.awaits:
            if not held:
                continue
            line, col = _loc(node)
            token = sorted(held)[0]
            yield Finding(
                path=fn.path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"await while holding sync lock {token[0]}.{token[1]} in "
                    f"'{_qual(fn)}' — the lock stays held across suspension"
                ),
                hint="release the lock before awaiting",
            )
        for call in fn.calls:
            desc = self._primitive(graph, fn, owner, call.node)
            if desc is not None:
                line, col = _loc(call.node)
                yield Finding(
                    path=fn.path,
                    line=line,
                    col=col,
                    rule=self.name,
                    message=(
                        f"blocking call {desc} inside async '{_qual(fn)}'"
                    ),
                    hint="offload via loop.run_in_executor(...)",
                )
                continue
            hit = next(
                (
                    t
                    for t in call.targets
                    if not t.is_async and t in blocking
                ),
                None,
            )
            if hit is not None:
                line, col = _loc(call.node)
                yield Finding(
                    path=fn.path,
                    line=line,
                    col=col,
                    rule=self.name,
                    message=(
                        f"'{_qual(hit)}' blocks ({blocking[hit]}) and is "
                        f"called from async '{_qual(fn)}'"
                    ),
                    hint=(
                        "offload via loop.run_in_executor(None, ...) instead "
                        "of calling it on the event loop"
                    ),
                )

    # ------------------------------------------------------------------
    def _primitive(
        self,
        graph: CallGraph,
        fn: FunctionInfo,
        owner: ClassInfo | None,
        node: ast.Call,
    ) -> str | None:
        """A human-readable description if ``node`` is a known primitive."""
        func = node.func
        if isinstance(func, ast.Name):
            dotted = graph.imports.get(fn.module.path, {}).get(func.id)
            if dotted == "time.sleep":
                return "time.sleep()"
            return None
        chain = attr_chain(func)
        if chain is None:
            return None
        root, attrs = chain
        if root == "time" and attrs == ["sleep"]:
            return "time.sleep()"
        if root == "socket" and len(attrs) == 1 and attrs[0] in _SOCKET_BLOCKING:
            return f"socket.{attrs[0]}()"
        if root == "select" and attrs == ["select"]:
            return "select.select()"
        if (
            root == "subprocess"
            and len(attrs) == 1
            and attrs[0] in _SUBPROCESS_BLOCKING
        ):
            return f"subprocess.{attrs[0]}()"
        if attrs and attrs[-1] == "acquire":
            if (len(attrs) >= 2 and attrs[-2] in LOCK_ATTRS) or (
                root in LOCK_ATTRS and len(attrs) == 1
            ):
                return f"'{root}.{'.'.join(attrs)}' (sync Lock.acquire)"
        if (
            attrs
            and attrs[-1] == "wait"
            and len(attrs) == 2
            and root == "self"
            and owner is not None
        ):
            types = graph.attr_types_of(owner, attrs[0])
            if types & _WAITABLE_TYPES:
                kind = sorted(types & _WAITABLE_TYPES)[0]
                return f"'self.{attrs[0]}.wait()' ({kind})"
        return None
