"""flow-encapsulation: the flow arrays are owned by the network classes.

The twin-arc representation keeps two invariants the solvers rely on —
``flow[a] + flow[a ^ 1] == 0`` (antisymmetry) and integral capacities on
the disk→sink arcs.  Any code that pokes ``.flow[...]`` / ``.cap[...]``
element-wise can silently break both, so direct writes are confined to
the two files that own the representation:

* ``graph/flownetwork.py`` — the structure itself;
* ``graph/csr.py`` — the compiled flat-array mirror of that structure
  (``CompiledNetwork`` save/restore/reset write the builder's arrays
  wholesale when syncing the two representations);
* ``core/network.py`` — the retrieval-specific capacity scaling
  (Algorithm 6 lines 14-15) and flow clamping.

Everything else must go through the ``FlowNetwork`` /
``RetrievalNetwork`` API (``push``, ``set_capacity``,
``saturate_source_arcs``, ``increment_sink_cap``, …) or through the
*sanctioned* bulk escape hatch: binding ``head, cap, flow, adj =
g.arrays()`` to locals, which this rule deliberately does not flag —
the call marks the hot loop as operating on the raw representation.

Flagged patterns (outside the allowed files):

* subscript stores: ``g.flow[a] = x``, ``g.cap[a] += 1``,
  ``g.flow[:] = saved``, ``del g.flow[a]``;
* mutating method calls on the arrays: ``g.flow.append(...)``,
  ``g.cap.clear()``, …

Reads are always fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Module, Rule
from repro.lint.findings import Finding

__all__ = ["FlowEncapsulationRule"]

#: files allowed to write the parallel arrays directly
ALLOWED_SUFFIXES = ("graph/flownetwork.py", "graph/csr.py", "core/network.py")

_FIELDS = frozenset({"flow", "cap"})

_LIST_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort",
     "reverse", "__setitem__", "__delitem__"}
)


def _array_subscript(node: ast.expr) -> ast.Attribute | None:
    """``<x>.flow[...]`` / ``<x>.cap[...]`` -> the Attribute, else None."""
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Attribute):
        if node.value.attr in _FIELDS:
            return node.value
    return None


class FlowEncapsulationRule(Rule):
    name = "flow-encapsulation"
    description = (
        "direct writes to .flow[...]/.cap[...] are confined to "
        "graph/flownetwork.py, graph/csr.py and core/network.py"
    )

    def applies_to(self, path: str) -> bool:
        return not path.endswith(ALLOWED_SUFFIXES)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _array_subscript(target)
                    if attr is not None:
                        yield self._finding(module, node, attr.attr, "write")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _array_subscript(target)
                    if attr is not None:
                        yield self._finding(module, node, attr.attr, "delete")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _LIST_MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr in _FIELDS
                ):
                    yield self._finding(
                        module, node, func.value.attr, f"{func.attr}() call"
                    )

    def _finding(
        self, module: Module, node: ast.AST, field: str, kind: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=self.name,
            message=(
                f"direct {kind} on '.{field}' outside the flow-network "
                f"core files"
            ),
            hint=(
                "use FlowNetwork/RetrievalNetwork methods (push, "
                "set_capacity, saturate_source_arcs, increment_sink_cap, "
                "restore_flow) or bind g.arrays() to locals for bulk work"
            ),
        )
