"""Interprocedural lock rules built on the project call graph.

Two rules live here, both powered by :class:`repro.lint.callgraph.CallGraph`:

* ``interprocedural-locks`` — the whole-program successor to the lexical
  ``lock-discipline`` rule.  It checks the *callers*: a ``*_locked``
  method may only be invoked from a path that lexically holds the
  owning lock, and a method that touches guarded state without taking
  the lock in its own body is reported even when no ``with self._lock``
  appears anywhere near the access.
* ``lock-order`` — builds the acquired-while-holding graph across every
  class that owns a ``_lock``/``_mutex`` and reports cycles (potential
  deadlocks) and non-reentrant self-acquisition (guaranteed deadlock).

Guarded state is discovered **structurally**: an attribute assigned in
``__init__`` counts as guarded when some method of the class hierarchy
mutates it (or calls through it) while holding the class lock, or does
so inside a ``*_locked`` helper.  A curated map seeds the core service
classes so a bug that leaves an attribute *never* locked (and therefore
structurally invisible) is still caught.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.callgraph import CallGraph, ClassInfo, FunctionInfo, LockToken
from repro.lint.engine import Project, ProjectRule
from repro.lint.findings import Finding

__all__ = ["InterproceduralLockRule", "LockOrderRule"]

#: curated guarded attributes for the core concurrent classes — seeds
#: the structural inference so "never locked anywhere" bugs still trip
EXTRA_GUARDED: dict[str, frozenset[str]] = {
    "SchedulerService": frozenset(
        {
            "system",
            "_busy_until",
            "_failed",
            "_last_arrival",
            "_stats",
            "_cache",
            "history",
        }
    ),
    "OnlineScheduler": frozenset(
        {"_inflight", "_events", "_clock_ms", "_next_query_id", "_online_stats"}
    ),
    "SolveFleet": frozenset(
        {"_lanes", "_closed", "crashes", "solves_per_lane"}
    ),
    "BatchAdmission": frozenset({"_open"}),
}


def _loc(node: ast.AST) -> tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


class InterproceduralLockRule(ProjectRule):
    """Require every path into lock-guarded code to hold the lock."""

    name = "interprocedural-locks"
    description = (
        "call-graph lock discipline: *_locked methods must only be called "
        "with the owning lock held, and guarded attributes must not be "
        "touched outside it"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph.of(project)
        guarded_by_class = self._guarded_map(graph)
        yield from self._check_unlocked_accesses(graph, guarded_by_class)
        yield from self._check_locked_callers(graph)

    # ------------------------------------------------------------------
    def _guarded_map(
        self, graph: CallGraph
    ) -> dict[int, tuple[LockToken, frozenset[str]]]:
        """id(ClassInfo) -> (canonical lock token, guarded attr names)."""
        out: dict[int, tuple[LockToken, frozenset[str]]] = {}
        for info in graph.classes:
            lock_attr = graph.lock_attr_of(info)
            if lock_attr is None:
                continue
            token = graph.lock_token(info, lock_attr)
            init_attrs: set[str] = set()
            for c in graph.mro(info):
                init_attrs |= c.init_attrs
            guarded: set[str] = set()
            for c in graph.mro(info):
                for fn in c.methods.values():
                    in_locked_helper = fn.name.endswith("_locked")
                    for access in fn.accesses:
                        if access.attr not in init_attrs:
                            continue
                        if access.attr == lock_attr:
                            continue
                        if token in access.locks_held or in_locked_helper:
                            guarded.add(access.attr)
                curated = EXTRA_GUARDED.get(c.name)
                if curated:
                    guarded |= curated & init_attrs
            out[id(info)] = (token, frozenset(guarded))
        return out

    def _check_unlocked_accesses(
        self,
        graph: CallGraph,
        guarded_by_class: dict[int, tuple[LockToken, frozenset[str]]],
    ) -> Iterator[Finding]:
        """Guarded-attr access in a method body that never took the lock."""
        for info in graph.classes:
            entry = guarded_by_class.get(id(info))
            if entry is None:
                continue
            token, guarded = entry
            for fn in info.methods.values():
                if fn.name == "__init__" or fn.name.endswith("_locked"):
                    continue  # construction / contract carriers are exempt
                for access in fn.accesses:
                    if access.attr not in guarded:
                        continue
                    if token in access.locks_held:
                        continue
                    line, col = _loc(access.node)
                    verb = (
                        "mutated" if access.kind == "mutate" else "called through"
                    )
                    yield Finding(
                        path=fn.path,
                        line=line,
                        col=col,
                        rule=self.name,
                        message=(
                            f"'{info.name}.{access.attr}' is guarded by "
                            f"{token[0]}.{token[1]} but is {verb} without it "
                            f"in '{fn.name}'"
                        ),
                        hint=(
                            f"wrap the access in 'with self.{token[1]}:' or "
                            "move it into a *_locked helper"
                        ),
                    )

    def _check_locked_callers(self, graph: CallGraph) -> Iterator[Finding]:
        """Resolved calls to ``*_locked`` methods must hold the lock."""
        for fn in graph.functions:
            caller_cls = graph.class_of(fn)
            for call in fn.calls:
                for target in call.targets:
                    if not target.name.endswith("_locked"):
                        continue
                    target_cls = graph.class_of(target)
                    if target_cls is None:
                        continue
                    lock_attr = graph.lock_attr_of(target_cls)
                    if lock_attr is None:
                        continue
                    token = graph.lock_token(target_cls, lock_attr)
                    if token in call.locks_held:
                        continue
                    if self._caller_exempt(graph, fn, caller_cls, token):
                        continue
                    line, col = _loc(call.node)
                    caller_name = (
                        f"{fn.class_name}.{fn.name}" if fn.class_name else fn.name
                    )
                    yield Finding(
                        path=fn.path,
                        line=line,
                        col=col,
                        rule=self.name,
                        message=(
                            f"'{target.class_name}.{target.name}' requires "
                            f"{token[0]}.{token[1]}, but '{caller_name}' calls "
                            "it without holding the lock"
                        ),
                        hint=(
                            f"acquire 'with self.{token[1]}:' around the call "
                            "or rename the caller to *_locked"
                        ),
                    )
                    break  # one finding per call site is enough

    @staticmethod
    def _caller_exempt(
        graph: CallGraph,
        fn: FunctionInfo,
        caller_cls: ClassInfo | None,
        token: LockToken,
    ) -> bool:
        """Callers that carry the lock contract themselves."""
        if caller_cls is None:
            return False
        lock_attr = graph.lock_attr_of(caller_cls)
        if lock_attr is None or graph.lock_token(caller_cls, lock_attr) != token:
            return False
        # a *_locked helper's own callers are checked instead; __init__
        # happens-before any concurrent access to the instance
        return fn.name.endswith("_locked") or fn.name == "__init__"


class LockOrderRule(ProjectRule):
    """Fail on cycles in the acquired-while-holding graph."""

    name = "lock-order"
    description = (
        "deadlock detection: the acquired-while-holding graph over all "
        "_lock/_mutex attributes must stay acyclic, and non-reentrant "
        "locks must never be re-acquired while held"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph.of(project)
        reentrant = self._reentrant_tokens(graph)
        acq = self._acquired_sets(graph)

        # edge (held, acquired) -> earliest witness (path, line, col, note)
        edges: dict[tuple[LockToken, LockToken], tuple[str, int, int, str]] = {}

        def witness(
            held: LockToken,
            taken: LockToken,
            fn: FunctionInfo,
            node: ast.AST,
            note: str,
        ) -> None:
            line, col = _loc(node)
            key = (held, taken)
            site = (fn.path, line, col, note)
            if key not in edges or site[:2] < edges[key][:2]:
                edges[key] = site

        for fn in graph.functions:
            for a in fn.acquires:
                for held in a.held_before:
                    witness(held, a.token, fn, a.node, "acquired directly")
                if a.token in a.held_before and not a.reentrant:
                    witness(a.token, a.token, fn, a.node, "acquired directly")
            for call in fn.calls:
                if not call.locks_held:
                    continue
                for target in call.targets:
                    for taken in acq.get(target, ()):  # may-acquire set
                        note = f"via call to '{_qual(target)}'"
                        for held in call.locks_held:
                            witness(held, taken, fn, call.node, note)

        yield from self._self_deadlocks(edges, reentrant)
        yield from self._cycles(edges)

    # ------------------------------------------------------------------
    @staticmethod
    def _reentrant_tokens(graph: CallGraph) -> set[LockToken]:
        out: set[LockToken] = set()
        for info in graph.classes:
            for attr in info.reentrant_locks:
                out.add(graph.lock_token(info, attr))
        return out

    @staticmethod
    def _acquired_sets(
        graph: CallGraph,
    ) -> dict[FunctionInfo, frozenset[LockToken]]:
        """May-acquire fixpoint: locks taken directly or via callees."""
        acq: dict[FunctionInfo, set[LockToken]] = {
            fn: {a.token for a in fn.acquires} for fn in graph.functions
        }
        changed = True
        while changed:
            changed = False
            for fn in graph.functions:
                mine = acq[fn]
                before = len(mine)
                for call in fn.calls:
                    for target in call.targets:
                        mine |= acq.get(target, set())
                if len(mine) != before:
                    changed = True
        return {fn: frozenset(tokens) for fn, tokens in acq.items()}

    def _self_deadlocks(
        self,
        edges: dict[tuple[LockToken, LockToken], tuple[str, int, int, str]],
        reentrant: set[LockToken],
    ) -> Iterator[Finding]:
        for (held, taken), (path, line, col, note) in sorted(edges.items()):
            if held != taken or held in reentrant:
                continue
            yield Finding(
                path=path,
                line=line,
                col=col,
                rule=self.name,
                message=(
                    f"{held[0]}.{held[1]} may be re-acquired while already "
                    f"held ({note}): non-reentrant lock, this deadlocks"
                ),
                hint="release before re-entry, or make the lock an RLock",
            )

    def _cycles(
        self,
        edges: dict[tuple[LockToken, LockToken], tuple[str, int, int, str]],
    ) -> Iterator[Finding]:
        graph: dict[LockToken, set[LockToken]] = {}
        for held, taken in edges:
            if held != taken:
                graph.setdefault(held, set()).add(taken)
                graph.setdefault(taken, set())
        for scc in _strongly_connected(graph):
            if len(scc) < 2:
                continue
            ordered = sorted(scc)
            cycle = " -> ".join(f"{c}.{a}" for c, a in [*ordered, ordered[0]])
            for (held, taken), (path, line, col, note) in sorted(edges.items()):
                if held in scc and taken in scc and held != taken:
                    yield Finding(
                        path=path,
                        line=line,
                        col=col,
                        rule=self.name,
                        message=(
                            f"lock-order cycle {cycle}: "
                            f"{taken[0]}.{taken[1]} acquired while holding "
                            f"{held[0]}.{held[1]} ({note})"
                        ),
                        hint=(
                            "pick one global acquisition order and release "
                            "the outer lock before taking the inner one"
                        ),
                    )


def _qual(fn: FunctionInfo) -> str:
    return f"{fn.class_name}.{fn.name}" if fn.class_name else fn.name


def _strongly_connected(
    graph: dict[LockToken, set[LockToken]]
) -> list[set[LockToken]]:
    """Tarjan's algorithm, iterative (lint-sized graphs, but no recursion)."""
    index: dict[LockToken, int] = {}
    low: dict[LockToken, int] = {}
    on_stack: set[LockToken] = set()
    stack: list[LockToken] = []
    result: list[set[LockToken]] = []
    counter = 0

    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[LockToken, Iterator[LockToken]]] = []
        index[start] = low[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        work.append((start, iter(sorted(graph[start]))))
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: set[LockToken] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                result.append(scc)
    return result
