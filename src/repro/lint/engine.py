"""The lint rule engine: modules, pragmas, rule dispatch.

Architecture
------------
* A :class:`Module` is one parsed source file (path, source lines, AST).
* A :class:`Rule` inspects one module at a time (:meth:`Rule.check`);
  a :class:`ProjectRule` additionally sees the whole parsed project at
  once (:meth:`ProjectRule.check_project`) — for cross-file contracts
  like registry completeness.
* :func:`run_lint` walks the target paths, parses every ``.py`` file,
  runs the rules and filters the findings through suppression pragmas.

Pragmas
-------
Findings can be suppressed in the source under inspection:

* ``# repro-lint: ignore=<rule>`` on the offending line suppresses that
  rule for that line (comma-separate several rules, or use ``all``);
* ``# repro-lint: disable-file=<rule>`` anywhere in the file disables
  the rule for the whole file.

Suppression is applied by the engine after rules run, so rules stay
pragma-oblivious.
"""

from __future__ import annotations

import ast
import os
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding

__all__ = [
    "Module",
    "Project",
    "ProjectRule",
    "Rule",
    "clear_parse_cache",
    "parse_cache_size",
    "parse_module",
    "run_lint",
]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


def _pragma_rules(match: re.Match[str]) -> set[str]:
    return {r.strip() for r in match.group("rules").split(",") if r.strip()}


@dataclass
class Module:
    """One parsed source file under lint."""

    path: str  # repo-relative, forward slashes
    source: str
    tree: ast.Module
    #: line number -> rule names suppressed on that line
    line_pragmas: dict[int, set[str]] = field(default_factory=dict)
    #: rule names disabled for the whole file
    file_pragmas: set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        for rules in (
            self.file_pragmas,
            self.line_pragmas.get(finding.line, ()),
        ):
            if finding.rule in rules or "all" in rules:
                return True
        return False


@dataclass
class Project:
    """Everything a cross-file rule may inspect."""

    root: Path
    modules: list[Module]

    def module(self, suffix: str) -> Module | None:
        """The module whose path ends with ``suffix`` (or ``None``)."""
        for mod in self.modules:
            if mod.path.endswith(suffix):
                return mod
        return None


class Rule:
    """Base class: one per-module diagnostic pass."""

    #: unique kebab-case rule id (used in reports and pragmas)
    name: str = ""
    #: one-line description for ``repro lint --list``-style catalogues
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule inspects ``path`` (repo-relative)."""
        del path
        return True

    def check(self, module: Module) -> Iterable[Finding]:
        """Yield findings for one module."""
        del module
        return ()


class ProjectRule(Rule):
    """A rule that needs the whole parsed project at once."""

    def check_project(self, project: Project) -> Iterable[Finding]:
        del project
        return ()


def parse_module(path: str, source: str) -> Module:
    """Parse one file into a :class:`Module`, collecting pragmas."""
    tree = ast.parse(source, filename=path)
    line_pragmas: dict[int, set[str]] = {}
    file_pragmas: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = _pragma_rules(match)
        if match.group("kind") == "disable-file":
            file_pragmas |= rules
        else:
            line_pragmas.setdefault(lineno, set()).update(rules)
    return Module(path, source, tree, line_pragmas, file_pragmas)


def _iter_py_files(target: Path) -> Iterable[Path]:
    if target.is_file():
        yield target
        return
    yield from sorted(target.rglob("*.py"))


# ----------------------------------------------------------------------
# parse cache
# ----------------------------------------------------------------------
# Parsing dominates lint wall time on a grown tree, and most runs see a
# tree that has barely changed since the last one (watch loops, repeated
# CI steps in one job, the test suite's many lint_repo calls).  Cache
# parsed Modules keyed by absolute path and invalidated on
# (mtime_ns, size) — the same freshness test mtime-based build systems
# use.  Entries are shared read-only: rules never mutate a Module.
_parse_cache: dict[str, tuple[int, int, str, Module]] = {}
_parse_cache_lock = threading.Lock()


def clear_parse_cache() -> None:
    """Drop every cached parse (tests; long-lived tools on low memory)."""
    with _parse_cache_lock:
        _parse_cache.clear()


def parse_cache_size() -> int:
    """Number of cached modules (observability for tests)."""
    with _parse_cache_lock:
        return len(_parse_cache)


def _load_module(py: Path, rel: str) -> Module | Finding:
    """Parse ``py`` (or reuse the cached parse); SyntaxError -> Finding."""
    key = str(py)
    try:
        stat = py.stat()
        fingerprint = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        fingerprint = None
    if fingerprint is not None:
        with _parse_cache_lock:
            hit = _parse_cache.get(key)
            if (
                hit is not None
                and hit[0] == fingerprint[0]
                and hit[1] == fingerprint[1]
                and hit[2] == rel
            ):
                return hit[3]
    source = py.read_text(encoding="utf-8")
    try:
        module = parse_module(rel, source)
    except SyntaxError as exc:
        return Finding(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            rule="syntax-error",
            message=f"cannot parse: {exc.msg}",
        )
    if fingerprint is not None:
        with _parse_cache_lock:
            _parse_cache[key] = (*fingerprint, rel, module)
    return module


def _resolve_jobs(jobs: int) -> int:
    if jobs > 0:
        return jobs
    return min(8, os.cpu_count() or 1)


def run_lint(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    *,
    root: str | Path | None = None,
    jobs: int = 1,
) -> list[Finding]:
    """Lint ``paths`` with ``rules``; return sorted, pragma-filtered findings.

    ``root`` anchors the repo-relative paths in reports (and gives
    project rules access to out-of-tree context such as ``tests/``);
    it defaults to the common parent of ``paths``.  ``jobs`` parallelises
    parsing and the per-module rule passes across threads (``0`` picks
    ``min(8, cpu_count)``); project rules always run once, serially,
    after every module is parsed.  Results are deterministic regardless
    of ``jobs``.
    """
    targets = [Path(p).resolve() for p in paths]
    if root is None:
        root_path = targets[0] if targets[0].is_dir() else targets[0].parent
    else:
        root_path = Path(root).resolve()

    files: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for target in targets:
        for py in _iter_py_files(target):
            if py in seen:
                continue
            seen.add(py)
            try:
                rel = py.relative_to(root_path).as_posix()
            except ValueError:
                rel = py.as_posix()
            files.append((py, rel))

    modules: list[Module] = []
    findings: list[Finding] = []
    worker_count = min(_resolve_jobs(jobs), max(1, len(files)))
    if worker_count > 1:
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            loaded = list(pool.map(lambda fr: _load_module(*fr), files))
    else:
        loaded = [_load_module(py, rel) for py, rel in files]
    for item in loaded:
        if isinstance(item, Finding):
            findings.append(item)
        else:
            modules.append(item)

    project = Project(root_path, modules)

    def _module_findings(module: Module) -> list[Finding]:
        out: list[Finding] = []
        for rule in rules:
            if isinstance(rule, ProjectRule) or not rule.applies_to(module.path):
                continue
            for finding in rule.check(module):
                if not module.is_suppressed(finding):
                    out.append(finding)
        return out

    if worker_count > 1 and len(modules) > 1:
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            for batch in pool.map(_module_findings, modules):
                findings.extend(batch)
    else:
        for module in modules:
            findings.extend(_module_findings(module))

    by_path = {m.path: m for m in modules}
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project):
            module = by_path.get(finding.path)
            if module is None or not module.is_suppressed(finding):
                findings.append(finding)

    return sorted(findings)
