"""The lint rule engine: modules, pragmas, rule dispatch.

Architecture
------------
* A :class:`Module` is one parsed source file (path, source lines, AST).
* A :class:`Rule` inspects one module at a time (:meth:`Rule.check`);
  a :class:`ProjectRule` additionally sees the whole parsed project at
  once (:meth:`ProjectRule.check_project`) — for cross-file contracts
  like registry completeness.
* :func:`run_lint` walks the target paths, parses every ``.py`` file,
  runs the rules and filters the findings through suppression pragmas.

Pragmas
-------
Findings can be suppressed in the source under inspection:

* ``# repro-lint: ignore=<rule>`` on the offending line suppresses that
  rule for that line (comma-separate several rules, or use ``all``);
* ``# repro-lint: disable-file=<rule>`` anywhere in the file disables
  the rule for the whole file.

Suppression is applied by the engine after rules run, so rules stay
pragma-oblivious.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding

__all__ = [
    "Module",
    "Project",
    "ProjectRule",
    "Rule",
    "parse_module",
    "run_lint",
]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


def _pragma_rules(match: re.Match[str]) -> set[str]:
    return {r.strip() for r in match.group("rules").split(",") if r.strip()}


@dataclass
class Module:
    """One parsed source file under lint."""

    path: str  # repo-relative, forward slashes
    source: str
    tree: ast.Module
    #: line number -> rule names suppressed on that line
    line_pragmas: dict[int, set[str]] = field(default_factory=dict)
    #: rule names disabled for the whole file
    file_pragmas: set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        for rules in (
            self.file_pragmas,
            self.line_pragmas.get(finding.line, ()),
        ):
            if finding.rule in rules or "all" in rules:
                return True
        return False


@dataclass
class Project:
    """Everything a cross-file rule may inspect."""

    root: Path
    modules: list[Module]

    def module(self, suffix: str) -> Module | None:
        """The module whose path ends with ``suffix`` (or ``None``)."""
        for mod in self.modules:
            if mod.path.endswith(suffix):
                return mod
        return None


class Rule:
    """Base class: one per-module diagnostic pass."""

    #: unique kebab-case rule id (used in reports and pragmas)
    name: str = ""
    #: one-line description for ``repro lint --list``-style catalogues
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule inspects ``path`` (repo-relative)."""
        del path
        return True

    def check(self, module: Module) -> Iterable[Finding]:
        """Yield findings for one module."""
        del module
        return ()


class ProjectRule(Rule):
    """A rule that needs the whole parsed project at once."""

    def check_project(self, project: Project) -> Iterable[Finding]:
        del project
        return ()


def parse_module(path: str, source: str) -> Module:
    """Parse one file into a :class:`Module`, collecting pragmas."""
    tree = ast.parse(source, filename=path)
    line_pragmas: dict[int, set[str]] = {}
    file_pragmas: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = _pragma_rules(match)
        if match.group("kind") == "disable-file":
            file_pragmas |= rules
        else:
            line_pragmas.setdefault(lineno, set()).update(rules)
    return Module(path, source, tree, line_pragmas, file_pragmas)


def _iter_py_files(target: Path) -> Iterable[Path]:
    if target.is_file():
        yield target
        return
    yield from sorted(target.rglob("*.py"))


def run_lint(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    *,
    root: str | Path | None = None,
) -> list[Finding]:
    """Lint ``paths`` with ``rules``; return sorted, pragma-filtered findings.

    ``root`` anchors the repo-relative paths in reports (and gives
    project rules access to out-of-tree context such as ``tests/``);
    it defaults to the common parent of ``paths``.
    """
    targets = [Path(p).resolve() for p in paths]
    if root is None:
        root_path = targets[0] if targets[0].is_dir() else targets[0].parent
    else:
        root_path = Path(root).resolve()

    modules: list[Module] = []
    findings: list[Finding] = []
    for target in targets:
        for py in _iter_py_files(target):
            try:
                rel = py.relative_to(root_path).as_posix()
            except ValueError:
                rel = py.as_posix()
            source = py.read_text(encoding="utf-8")
            try:
                module = parse_module(rel, source)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1),
                        rule="syntax-error",
                        message=f"cannot parse: {exc.msg}",
                    )
                )
                continue
            modules.append(module)

    project = Project(root_path, modules)
    for module in modules:
        for rule in rules:
            if isinstance(rule, ProjectRule) or not rule.applies_to(module.path):
                continue
            for finding in rule.check(module):
                if not module.is_suppressed(finding):
                    findings.append(finding)

    by_path = {m.path: m for m in modules}
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project):
            module = by_path.get(finding.path)
            if module is None or not module.is_suppressed(finding):
                findings.append(finding)

    return sorted(findings)
