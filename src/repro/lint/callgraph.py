"""Project-wide symbol table and call graph for the whole-program rules.

The per-module rules in this package are lexical: they see one AST at a
time and cannot answer "who calls this method, and does that caller hold
the lock?".  This module builds the shared substrate the interprocedural
rules (``rules_interlock``, ``rules_async``) stand on:

* a **symbol table** — every class and function in the linted project,
  with base classes resolved across modules (an MRO approximation), the
  attribute types each class's ``__init__`` establishes, and per-module
  import tables;
* a **call graph** — every call site, resolved where the receiver's type
  is statically known: ``self._method(...)`` through the MRO,
  ``self.attr.method(...)`` through ``__init__`` annotations and
  constructor assignments, ``module.func(...)`` through imports;
* **lexical lock context** — for every call, attribute mutation, lock
  acquisition and ``await``, the set of locks lexically held at that
  point, with inherited locks canonicalised to the class that creates
  them (``OnlineScheduler``'s ``self._lock`` *is*
  ``SchedulerService._lock``).

Resolution is deliberately *annotation-driven*: a call whose receiver
type cannot be established contributes nothing.  The alternative — a
unique-method-name fallback — resolves ``writer.close()`` to whatever
project class happens to define ``close`` and drowns the rules in false
positives.  Unresolved calls are simply silent, which keeps every rule
built on this graph sound-for-reporting (no finding without a resolved
reason) at the cost of completeness.

Deferred bodies (lambdas, nested ``def``) are not attributed to their
enclosing function: they run later, under unknown lock context.
Comprehension bodies run inline and are included.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.astutil import attr_chain
from repro.lint.engine import Module, Project

__all__ = [
    "LOCK_ATTRS",
    "Acquire",
    "AttrAccess",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LockToken",
]

#: attribute names recognised as locks in ``with`` headers (shared
#: convention with :mod:`repro.lint.rules_locks`)
LOCK_ATTRS = frozenset({"_lock", "_mutex"})

#: (owning class name, lock attribute) — the canonical identity of one
#: lock *instance* family, e.g. ``("SchedulerService", "_lock")``
LockToken = tuple[str, str]

#: ``threading`` constructors remembered as marker types on attributes
_THREADING_TYPES = frozenset({"Lock", "RLock", "Condition", "Event", "Semaphore"})

_FuncNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class Acquire:
    """One ``with self._lock:`` entry."""

    token: LockToken
    node: ast.stmt
    held_before: frozenset[LockToken]
    #: True when the lock attribute is known to be an ``RLock``
    reentrant: bool


@dataclass
class AttrAccess:
    """A mutation of, or method call on, a ``self.<attr>`` attribute."""

    attr: str
    kind: str  # "mutate" | "call"
    node: ast.AST
    locks_held: frozenset[LockToken]


@dataclass
class CallSite:
    """One call expression with its resolution and lock context."""

    node: ast.Call
    caller: "FunctionInfo"
    #: resolved callees; empty when the receiver type is unknown
    targets: tuple["FunctionInfo", ...]
    #: the called attribute/function name (always known lexically)
    called_name: str
    locks_held: frozenset[LockToken]


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    module: Module
    name: str
    class_name: str | None
    node: _FuncNode
    qualname: str  # "<path>::Class.name" — unique project-wide
    is_async: bool
    calls: list[CallSite] = field(default_factory=list)
    acquires: list[Acquire] = field(default_factory=list)
    accesses: list[AttrAccess] = field(default_factory=list)
    #: ``await`` expressions with their sync-lock context
    awaits: list[tuple[ast.Await, frozenset[LockToken]]] = field(
        default_factory=list
    )

    @property
    def path(self) -> str:
        return self.module.path

    def __hash__(self) -> int:  # identity-keyed in rule fixpoints
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass
class ClassInfo:
    """One class definition with resolved inheritance and attr types."""

    module: Module
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attributes assigned ``self.x = ...`` in ``__init__``
    init_attrs: set[str] = field(default_factory=set)
    #: attr -> candidate type names ("SchedulerService", "threading.Event")
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    #: lock attrs assigned ``threading.RLock()`` in ``__init__``
    reentrant_locks: set[str] = field(default_factory=set)
    #: resolved project base classes (post-build)
    bases: list["ClassInfo"] = field(default_factory=list)

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


def _dotted_name(path: str) -> str:
    """``src/repro/fleet/pool.py`` -> ``repro.fleet.pool``."""
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotation_names(node: ast.AST | None) -> Iterator[str]:
    """Candidate type names mentioned in an annotation expression."""
    if node is None:
        return
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


class CallGraph:
    """The project's symbol table plus resolved call sites.

    Build once per lint run with :meth:`CallGraph.of` (memoised on the
    :class:`~repro.lint.engine.Project`); every project rule that needs
    whole-program context shares the same instance.
    """

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: list[ClassInfo] = []
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: dotted module name -> Module
        self.module_by_dotted: dict[str, Module] = {}
        #: (module path, function name) -> module-level FunctionInfo
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        #: module path -> {local name -> dotted import target}
        self.imports: dict[str, dict[str, str]] = {}
        self.functions: list[FunctionInfo] = []
        self._subclasses: dict[int, list[ClassInfo]] = {}
        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, project: Project) -> "CallGraph":
        """The memoised call graph for ``project``."""
        cached = project.__dict__.get("_callgraph")
        if cached is None:
            cached = cls(project)
            project.__dict__["_callgraph"] = cached
        return cached

    # ------------------------------------------------------------------
    # pass 1: declarations and imports
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for mod in self.project.modules:
            self.module_by_dotted[_dotted_name(mod.path)] = mod
            self.imports[mod.path] = {}
            self._collect_module(mod)
        for cls_info in self.classes:
            self._resolve_bases(cls_info)
        for cls_info in self.classes:
            self._collect_attr_types(cls_info)
        for fn in self.functions:
            self._analyze_function(fn)

    def _collect_module(self, mod: Module) -> None:
        table = self.imports[mod.path]
        package = _dotted_name(mod.path).rsplit(".", 1)[0] if "." in _dotted_name(mod.path) else ""
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        table[alias.asname] = alias.name
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    parts = _dotted_name(mod.path).split(".")[: -stmt.level]
                    base = ".".join(parts + ([stmt.module] if stmt.module else []))
                elif not base:
                    base = package
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{base}.{alias.name}"
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(mod, stmt)
            elif isinstance(stmt, _FuncNode):
                fn = FunctionInfo(
                    module=mod,
                    name=stmt.name,
                    class_name=None,
                    node=stmt,
                    qualname=f"{mod.path}::{stmt.name}",
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                self.module_functions[(mod.path, stmt.name)] = fn
                self.functions.append(fn)

    def _collect_class(self, mod: Module, node: ast.ClassDef) -> None:
        info = ClassInfo(module=mod, name=node.name, node=node)
        for stmt in node.body:
            if isinstance(stmt, _FuncNode):
                fn = FunctionInfo(
                    module=mod,
                    name=stmt.name,
                    class_name=node.name,
                    node=stmt,
                    qualname=f"{mod.path}::{node.name}.{stmt.name}",
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                info.methods[stmt.name] = fn
                self.functions.append(fn)
        self.classes.append(info)
        self.classes_by_name.setdefault(node.name, []).append(info)

    # ------------------------------------------------------------------
    # pass 2: inheritance and attribute types
    # ------------------------------------------------------------------
    def _resolve_bases(self, info: ClassInfo) -> None:
        for base in info.node.bases:
            resolved: ClassInfo | None = None
            if isinstance(base, ast.Name):
                resolved = self._find_class(base.id, info.module)
            elif isinstance(base, ast.Attribute):
                resolved = self._find_class(base.attr, info.module)
            if resolved is not None and resolved is not info:
                info.bases.append(resolved)
                self._subclasses.setdefault(id(resolved), []).append(info)

    def mro(self, info: ClassInfo) -> list[ClassInfo]:
        """Depth-first linearisation (close enough to C3 for lint use)."""
        seen: list[ClassInfo] = []

        def visit(c: ClassInfo) -> None:
            if c not in seen:
                seen.append(c)
                for b in c.bases:
                    visit(b)

        visit(info)
        return seen

    def subclasses(self, info: ClassInfo) -> list[ClassInfo]:
        """All (transitive) project subclasses of ``info``."""
        out: list[ClassInfo] = []
        stack = list(self._subclasses.get(id(info), ()))
        while stack:
            c = stack.pop()
            if c not in out:
                out.append(c)
                stack.extend(self._subclasses.get(id(c), ()))
        return out

    def resolve_method(self, info: ClassInfo, name: str) -> FunctionInfo | None:
        for c in self.mro(info):
            fn = c.methods.get(name)
            if fn is not None:
                return fn
        return None

    def lock_owner(self, info: ClassInfo, attr: str) -> str:
        """The base-most MRO class whose ``__init__`` creates ``attr``.

        Canonicalises inherited locks: ``OnlineScheduler``'s ``_lock``
        is created by ``SchedulerService.__init__``, so both classes'
        ``with self._lock`` blocks map to the same token.
        """
        owner = info.name
        for c in self.mro(info):
            if attr in c.init_attrs:
                owner = c.name
        return owner

    def lock_token(self, info: ClassInfo, attr: str) -> LockToken:
        return (self.lock_owner(info, attr), attr)

    def is_reentrant(self, info: ClassInfo, attr: str) -> bool:
        return any(attr in c.reentrant_locks for c in self.mro(info))

    def _collect_attr_types(self, info: ClassInfo) -> None:
        init = info.methods.get("__init__")
        if init is None:
            return
        params = self._param_annotations(init.node, info.module)
        for stmt in ast.walk(init.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, None
            if target is None:
                continue
            chain = attr_chain(target)
            if chain is None or chain[0] != "self" or len(chain[1]) != 1:
                continue
            attr = chain[1][0]
            info.init_attrs.add(attr)
            if value is None:
                continue
            for type_name in self._value_types(value, info.module, params):
                info.attr_types.setdefault(attr, set()).add(type_name)
            if attr in LOCK_ATTRS and self._is_rlock_value(value, init.node):
                info.reentrant_locks.add(attr)

    def _param_annotations(
        self, node: _FuncNode, mod: Module
    ) -> dict[str, set[str]]:
        """Parameter name -> resolvable class-name candidates."""
        out: dict[str, set[str]] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names = {
                n
                for n in _annotation_names(arg.annotation)
                if self._find_class(n, mod) is not None
            }
            if names:
                out[arg.arg] = names
        return out

    def _value_types(
        self,
        value: ast.expr,
        mod: Module,
        params: dict[str, set[str]],
    ) -> Iterator[str]:
        """Type candidates for an assigned expression (best effort)."""
        if isinstance(value, ast.Name) and value.id in params:
            yield from params[value.id]
            return
        if not isinstance(value, ast.Call):
            return
        func = value.func
        chain = attr_chain(func)
        if chain is not None and chain[0] == "threading" and len(chain[1]) == 1:
            if chain[1][0] in _THREADING_TYPES:
                yield f"threading.{chain[1][0]}"
            return
        name: str | None = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return
        if self._find_class(name, mod) is not None:
            yield name
            return
        # a project function call: use its return annotation
        fn = self._find_function(name, mod)
        if fn is not None:
            for type_name in _annotation_names(fn.node.returns):
                if self._find_class(type_name, fn.module) is not None:
                    yield type_name

    @staticmethod
    def _is_rlock(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        chain = attr_chain(value.func)
        return chain is not None and (
            (chain[0] == "threading" and chain[1] == ["RLock"])
            or (chain[0] == "RLock" and not chain[1])
        )

    @classmethod
    def _is_rlock_value(cls, value: ast.expr, init: _FuncNode) -> bool:
        """``threading.RLock()`` directly, or a parameter annotated RLock."""
        if cls._is_rlock(value):
            return True
        if not isinstance(value, ast.Name):
            return False
        args = init.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg == value.id:
                return "RLock" in set(_annotation_names(arg.annotation))
        return False

    # ------------------------------------------------------------------
    # symbol lookup
    # ------------------------------------------------------------------
    def _find_class(self, name: str, mod: Module) -> ClassInfo | None:
        for info in self.classes_by_name.get(name, ()):  # same module first
            if info.module is mod:
                return info
        dotted = self.imports.get(mod.path, {}).get(name)
        if dotted is not None and "." in dotted:
            target_mod = self.module_by_dotted.get(dotted.rsplit(".", 1)[0])
            if target_mod is not None:
                for info in self.classes_by_name.get(
                    dotted.rsplit(".", 1)[1], ()
                ):
                    if info.module is target_mod:
                        return info
        candidates = self.classes_by_name.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _find_function(self, name: str, mod: Module) -> FunctionInfo | None:
        fn = self.module_functions.get((mod.path, name))
        if fn is not None:
            return fn
        dotted = self.imports.get(mod.path, {}).get(name)
        if dotted is not None and "." in dotted:
            mod_dotted, fn_name = dotted.rsplit(".", 1)
            target_mod = self.module_by_dotted.get(mod_dotted)
            if target_mod is not None:
                return self.module_functions.get((target_mod.path, fn_name))
        return None

    def class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.class_name is None:
            return None
        for info in self.classes_by_name.get(fn.class_name, ()):
            if info.module is fn.module:
                return info
        return None

    def attr_types_of(self, info: ClassInfo, attr: str) -> set[str]:
        """Candidate type names for ``self.<attr>`` across the MRO."""
        out: set[str] = set()
        for c in self.mro(info):
            out |= c.attr_types.get(attr, set())
        return out

    # ------------------------------------------------------------------
    # pass 3: per-function traversal (calls, locks, accesses, awaits)
    # ------------------------------------------------------------------
    def _analyze_function(self, fn: FunctionInfo) -> None:
        owner = self.class_of(fn)
        local_types = self._local_types(fn, owner)
        for stmt in fn.node.body:
            self._visit_stmt(fn, owner, local_types, stmt, frozenset())

    def _local_types(
        self, fn: FunctionInfo, owner: ClassInfo | None
    ) -> dict[str, set[str]]:
        """Types of parameters and constructor-assigned locals."""
        types = dict(self._param_annotations(fn.node, fn.module))
        params: dict[str, set[str]] = dict(types)
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    found = set(
                        self._value_types(stmt.value, fn.module, params)
                    )
                    if found:
                        types.setdefault(target.id, set()).update(found)
        return types

    def _visit_stmt(
        self,
        fn: FunctionInfo,
        owner: ClassInfo | None,
        local_types: dict[str, set[str]],
        stmt: ast.stmt,
        held: frozenset[LockToken],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # deferred body: unknown lock context at run time
        if isinstance(stmt, ast.With):
            tokens: list[LockToken] = []
            for item in stmt.items:
                token = self._lock_token_of(item.context_expr, owner, local_types)
                if token is not None:
                    reentrant = self._token_reentrant(token, owner)
                    fn.acquires.append(
                        Acquire(token, stmt, held, reentrant)
                    )
                    tokens.append(token)
                self._scan_expr(fn, owner, local_types, item.context_expr, held)
            inner = held.union(tokens)
            for child in stmt.body:
                self._visit_stmt(fn, owner, local_types, child, inner)
            return
        if isinstance(stmt, ast.AsyncWith):
            # asyncio locks: not thread locks; context unchanged
            for item in stmt.items:
                self._scan_expr(fn, owner, local_types, item.context_expr, held)
            for child in stmt.body:
                self._visit_stmt(fn, owner, local_types, child, held)
            return

        # record guarded-attribute mutations on this statement
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            raw = (
                stmt.targets
                if isinstance(stmt, (ast.Assign, ast.Delete))
                else [stmt.target]
            )
            for target in raw:
                for leaf in self._flatten_targets(target):
                    chain = attr_chain(leaf)
                    if chain is not None and chain[0] == "self" and chain[1]:
                        fn.accesses.append(
                            AttrAccess(chain[1][0], "mutate", stmt, held)
                        )

        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(fn, owner, local_types, child, held)
            elif isinstance(child, ast.stmt):
                self._visit_stmt(fn, owner, local_types, child, held)
            elif isinstance(child, (ast.excepthandler, *(
                (ast.match_case,) if hasattr(ast, "match_case") else ()
            ))):
                for inner in child.body:
                    self._visit_stmt(fn, owner, local_types, inner, held)

    @staticmethod
    def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from CallGraph._flatten_targets(elt)
        elif isinstance(target, ast.Starred):
            yield from CallGraph._flatten_targets(target.value)
        else:
            yield target

    def _scan_expr(
        self,
        fn: FunctionInfo,
        owner: ClassInfo | None,
        local_types: dict[str, set[str]],
        expr: ast.expr,
        held: frozenset[LockToken],
    ) -> None:
        """Record calls/awaits in ``expr``, skipping deferred lambdas."""
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # deferred body
            if isinstance(node, ast.Await):
                fn.awaits.append((node, held))
            elif isinstance(node, ast.Call):
                self._record_call(fn, owner, local_types, node, held)
            stack.extend(ast.iter_child_nodes(node))

    def _lock_token_of(
        self,
        expr: ast.expr,
        owner: ClassInfo | None,
        local_types: dict[str, set[str]],
    ) -> LockToken | None:
        if isinstance(expr, ast.Call):  # timeout-taking acquire helpers
            expr = expr.func
        chain = attr_chain(expr)
        if chain is None or len(chain[1]) != 1 or chain[1][0] not in LOCK_ATTRS:
            return None
        root, attr = chain[0], chain[1][0]
        if root == "self" and owner is not None:
            return self.lock_token(owner, attr)
        for type_name in sorted(local_types.get(root, ())):
            info = self._find_class(type_name, owner.module if owner else self.project.modules[0])
            if info is not None:
                return self.lock_token(info, attr)
        return (root, attr) if root != "self" else None

    def _token_reentrant(
        self, token: LockToken, owner: ClassInfo | None
    ) -> bool:
        for info in self.classes_by_name.get(token[0], ()):
            if self.is_reentrant(info, token[1]):
                return True
        if owner is not None and self.is_reentrant(owner, token[1]):
            return True
        return False

    def _record_call(
        self,
        fn: FunctionInfo,
        owner: ClassInfo | None,
        local_types: dict[str, set[str]],
        node: ast.Call,
        held: frozenset[LockToken],
    ) -> None:
        func = node.func
        targets: list[FunctionInfo] = []
        called_name = ""
        if isinstance(func, ast.Name):
            called_name = func.id
            target = self._find_function(func.id, fn.module)
            if target is not None:
                targets.append(target)
            else:
                cls_target = self._find_class(func.id, fn.module)
                if cls_target is not None:
                    init = self.resolve_method(cls_target, "__init__")
                    if init is not None:
                        targets.append(init)
        elif isinstance(func, ast.Attribute):
            called_name = func.attr
            chain = attr_chain(func)
            if chain is not None:
                targets.extend(
                    self._resolve_attr_call(fn, owner, local_types, chain)
                )
        if called_name or targets:
            fn.calls.append(
                CallSite(
                    node=node,
                    caller=fn,
                    targets=tuple(dict.fromkeys(targets)),
                    called_name=called_name,
                    locks_held=held,
                )
            )
        if isinstance(func, ast.Attribute) and owner is not None:
            chain = attr_chain(func)
            if chain is not None and chain[0] == "self" and len(chain[1]) >= 2:
                fn.accesses.append(
                    AttrAccess(chain[1][0], "call", node, held)
                )

    def _resolve_attr_call(
        self,
        fn: FunctionInfo,
        owner: ClassInfo | None,
        local_types: dict[str, set[str]],
        chain: tuple[str, list[str]],
    ) -> list[FunctionInfo]:
        root, attrs = chain
        method = attrs[-1]
        out: list[FunctionInfo] = []
        if root == "self" and owner is not None:
            if len(attrs) == 1:
                target = self.resolve_method(owner, method)
                if target is not None:
                    out.append(target)
                return out
            if len(attrs) == 2:
                for type_name in sorted(self.attr_types_of(owner, attrs[0])):
                    out.extend(
                        self._methods_in_hierarchy(type_name, method, fn.module)
                    )
                return out
            return out
        if len(attrs) == 1 and root in local_types:
            for type_name in sorted(local_types[root]):
                out.extend(
                    self._methods_in_hierarchy(type_name, method, fn.module)
                )
            return out
        # module.func(...) through the import table
        table = self.imports.get(fn.module.path, {})
        dotted = table.get(root, root if root in self.module_by_dotted else None)
        if dotted is not None:
            dotted_path = dotted
            for extra in attrs[:-1]:
                dotted_path = f"{dotted_path}.{extra}"
            target_mod = self.module_by_dotted.get(dotted_path)
            if target_mod is not None:
                target = self.module_functions.get((target_mod.path, method))
                if target is not None:
                    out.append(target)
        return out

    def _methods_in_hierarchy(
        self, type_name: str, method: str, mod: Module
    ) -> list[FunctionInfo]:
        """Resolve ``method`` on ``type_name`` and its project subclasses."""
        info = self._find_class(type_name, mod)
        if info is None:
            return []
        out: list[FunctionInfo] = []
        target = self.resolve_method(info, method)
        if target is not None:
            out.append(target)
        for sub in self.subclasses(info):
            override = self.resolve_method(sub, method)
            if override is not None and override not in out:
                out.append(override)
        return out

    # ------------------------------------------------------------------
    # convenience for rules
    # ------------------------------------------------------------------
    def iter_methods(self) -> Iterable[tuple[ClassInfo, FunctionInfo]]:
        for info in self.classes:
            for fn in info.methods.values():
                yield info, fn

    def lock_attr_of(self, info: ClassInfo) -> str | None:
        """The lock attribute this class's instances carry (or None)."""
        for attr in ("_lock", "_mutex"):
            if any(attr in c.init_attrs for c in self.mro(info)):
                return attr
        return None
