"""Assemble the default rule set and drive a lint run (CLI backend)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.lint.engine import Rule, run_lint
from repro.lint.findings import Finding
from repro.lint.rules_async import AsyncBlockingRule
from repro.lint.rules_flow import FlowEncapsulationRule
from repro.lint.rules_hygiene import (
    BareExceptRule,
    ConstantComparisonRule,
    MutableDefaultRule,
    ShadowedBuiltinRule,
    UnusedImportRule,
)
from repro.lint.rules_interlock import InterproceduralLockRule, LockOrderRule
from repro.lint.rules_locks import LockDisciplineRule
from repro.lint.rules_numeric import FloatFlowRule, IntegerCapacityRule
from repro.lint.rules_registry import RegistryCompletenessRule
from repro.lint.rules_wire import WireContractRule

__all__ = ["default_rules", "format_report", "lint_repo", "rule_catalog"]


def default_rules() -> list[Rule]:
    """One instance of every rule, project rules last."""
    return [
        LockDisciplineRule(),
        FlowEncapsulationRule(),
        IntegerCapacityRule(),
        FloatFlowRule(),
        UnusedImportRule(),
        MutableDefaultRule(),
        ShadowedBuiltinRule(),
        BareExceptRule(),
        ConstantComparisonRule(),
        RegistryCompletenessRule(),
        InterproceduralLockRule(),
        LockOrderRule(),
        AsyncBlockingRule(),
        WireContractRule(),
    ]


def rule_catalog() -> list[tuple[str, str]]:
    """``(name, description)`` for every default rule, sorted by name."""
    return sorted((r.name, r.description) for r in default_rules())


def find_repo_root(start: str | Path | None = None) -> Path:
    """Walk up from ``start`` (default: this file) to the repo root.

    The root is the directory containing ``src/repro`` — works from an
    installed-in-place source tree and from the repository checkout.
    """
    here = Path(start) if start is not None else Path(__file__)
    for candidate in [here, *here.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # installed package without a src layout: lint the package itself
    return Path(__file__).resolve().parents[1]


def lint_repo(
    paths: Sequence[str | Path] | None = None,
    *,
    root: str | Path | None = None,
    rules: Sequence[Rule] | None = None,
    select: Sequence[str] | None = None,
    jobs: int = 1,
) -> list[Finding]:
    """Lint the repository (or explicit ``paths``) with the default rules.

    ``select`` restricts the run to the named rules; an unknown name
    raises :class:`ValueError` listing the valid ids (a silently-ignored
    typo would otherwise lint nothing and exit green).  ``jobs``
    parallelises parsing and the per-module passes (``0`` = auto).
    """
    root_path = Path(root) if root is not None else find_repo_root()
    if paths is None:
        src = root_path / "src" / "repro"
        paths = [src if src.is_dir() else Path(__file__).resolve().parents[1]]
    active = list(rules) if rules is not None else default_rules()
    if select:
        known = {r.name for r in active}
        unknown = sorted(set(select) - known)
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(unknown)} — valid rules: "
                f"{', '.join(sorted(known))}"
            )
        wanted = set(select)
        active = [r for r in active if r.name in wanted]
    return run_lint(paths, active, root=root_path, jobs=jobs)


def format_report(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text``, ``json`` or ``sarif``."""
    if fmt == "sarif":
        from repro.lint.sarif import format_sarif

        return format_sarif(findings, catalog=rule_catalog())
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "count": len(findings),
            },
            indent=2,
            sort_keys=True,
        )
    if not findings:
        return "repro lint: clean (0 findings)"
    lines = [f.format_text() for f in findings]
    lines.append(f"repro lint: {len(findings)} finding(s)")
    return "\n".join(lines)
