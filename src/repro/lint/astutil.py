"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "attr_chain",
    "identifier_tokens",
    "mentions_token",
    "walk_statements",
]


def attr_chain(node: ast.AST) -> tuple[str, list[str]] | None:
    """Resolve ``self._stats.queries[i]`` to ``("self", ["_stats", "queries"])``.

    Descends through ``Attribute`` and ``Subscript`` wrappers; returns
    ``None`` when the chain is not rooted at a plain name (e.g. a call
    result).  The attribute list is ordered root-first.
    """
    attrs: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            attrs.reverse()
            return node.id, attrs
        else:
            return None


def identifier_tokens(node: ast.AST) -> Iterator[str]:
    """Every identifier fragment (split on ``_``) mentioned in ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield from sub.id.lower().split("_")
        elif isinstance(sub, ast.Attribute):
            yield from sub.attr.lower().split("_")


def mentions_token(node: ast.AST, tokens: frozenset[str]) -> bool:
    """True if any identifier fragment in ``node`` is in ``tokens``."""
    return any(tok in tokens for tok in identifier_tokens(node))


def walk_statements(tree: ast.AST) -> Iterator[ast.stmt]:
    """Every statement node in the tree, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            yield node
