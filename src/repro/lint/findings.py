"""Finding: one lint diagnostic with location, message and fix hint."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a lint rule.

    Orders by ``(path, line, col, rule)`` so reports are stable across
    runs and rule-execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    hint: str = field(default="", compare=False)

    def format_text(self) -> str:
        out = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
