"""Numeric-exactness rules: integer-capacity and float-flow.

The paper's capacities ``floor((t - D_j - X_j) / C_j)`` are integers and
the kernel stores capacities and flows as exact Python ints — a stray
true division or a 0.5-ish literal silently turns the max-flow instance
fractional, and a float ``==`` makes feasibility tests
representation-dependent.  Within the algorithmic packages (``core/``
and ``maxflow/``) the ``integer-capacity`` rule flags:

* ``==`` / ``!=`` where either side is a float literal — compare against
  an integer, or use an explicit epsilon band;
* true division ``/`` in any expression that mentions a capacity-ish
  identifier (``cap``, ``caps``, ``capacity``, ``threshold``, …) — use
  floor division ``//`` or integer arithmetic;
* non-integral float literals written into capacity-named targets or
  passed to capacity-named calls (``set_capacity(a, 0.5)``).

The ``float-flow`` rule extends the guarantee repo-wide: anywhere under
``src/``, no float literal, true-division result, ``float(...)`` cast or
epsilon-tolerance comparison may reach a ``flow``/``cap`` slot.  It is
the tripwire that keeps the float-era arithmetic from creeping back into
the integer kernel (see the :class:`FloatFlowRule` docstring for the
exact triggers).

Identifier matching is token-based (split on ``_``), so ``sink_caps``
matches but ``escape`` does not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import mentions_token
from repro.lint.engine import Module, Rule
from repro.lint.findings import Finding

__all__ = ["IntegerCapacityRule", "FloatFlowRule"]

#: identifier fragments that mark a value as a capacity/threshold
CAPACITY_TOKENS = frozenset(
    {"cap", "caps", "capacity", "capacities", "threshold", "thresholds"}
)

#: packages where capacity arithmetic must stay exact
SCOPED_DIRS = ("core/", "maxflow/")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_literal(node.operand)
    return False


def _nonintegral_floats(node: ast.AST) -> Iterator[ast.Constant]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, float)
            and sub.value != int(sub.value)
        ):
            yield sub


class IntegerCapacityRule(Rule):
    name = "integer-capacity"
    description = (
        "capacity/threshold arithmetic in core/ and maxflow/ must stay "
        "integral: no float ==, no true division, no fractional literals"
    )

    def applies_to(self, path: str) -> bool:
        return any(d in path for d in SCOPED_DIRS)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield from self._check_division(module, node)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                yield from self._check_division(module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    if mentions_token(target, CAPACITY_TOKENS):
                        yield from self._check_fractional(module, value)
                        break
            elif isinstance(node, ast.Call):
                if mentions_token(node.func, CAPACITY_TOKENS):
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        yield from self._check_fractional(module, arg)

    # ------------------------------------------------------------------
    def _check_compare(
        self, module: Module, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule=self.name,
                    message="exact equality against a float literal",
                    hint=(
                        "compare against an int, use an epsilon band, or "
                        "restructure to an integer quantity"
                    ),
                )

    def _check_division(
        self, module: Module, node: ast.BinOp | ast.AugAssign
    ) -> Iterator[Finding]:
        operands = (
            (node.left, node.right)
            if isinstance(node, ast.BinOp)
            else (node.target, node.value)
        )
        if any(mentions_token(op, CAPACITY_TOKENS) for op in operands):
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=self.name,
                message=(
                    "true division '/' on a capacity/threshold expression"
                ),
                hint="use floor division '//' or integer arithmetic",
            )

    def _check_fractional(
        self, module: Module, value: ast.expr
    ) -> Iterator[Finding]:
        for const in _nonintegral_floats(value):
            yield Finding(
                path=module.path,
                line=const.lineno,
                col=const.col_offset + 1,
                rule=self.name,
                message=(
                    f"non-integral float literal {const.value!r} in a "
                    f"capacity/threshold expression"
                ),
                hint="capacities are integral; use whole numbers",
            )


# ----------------------------------------------------------------------
# float-flow: the integer-kernel tripwire
# ----------------------------------------------------------------------

#: identifier fragments that mark a value as a flow/capacity slot
FLOW_TOKENS = frozenset(
    {"flow", "flows", "cap", "caps", "capacity", "capacities"}
)

#: FlowNetwork mutators whose arguments enter the kernel directly
_KERNEL_CALLS = frozenset({"push", "set_capacity", "add_arc"})

#: identifier fragments that mark an epsilon-tolerance constant
_EPS_TOKENS = frozenset({"eps", "epsilon", "tol", "tolerance"})


def _float_taint(value: ast.AST) -> ast.AST | None:
    """First sub-node that would put a float into an int slot, if any.

    Taints: any float literal (``1.0`` and ``1e-9`` alike), a true
    division ``/``, or a ``float(...)`` cast.  Comparisons nested inside
    the value are skipped — a bool from ``cap > 0.5`` is not itself a
    float, and comparisons get their own check.
    """
    for sub in ast.walk(value):
        if isinstance(sub, ast.Compare):
            continue
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return sub
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return sub
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return sub
    return None


def _mentions_eps(node: ast.AST) -> bool:
    from repro.lint.astutil import identifier_tokens

    return any(tok in _EPS_TOKENS for tok in identifier_tokens(node))


class FloatFlowRule(Rule):
    """float-flow: no float arithmetic may reach a flow/cap slot.

    Everywhere under ``src/`` (the whole package, not just the
    algorithmic core), flags:

    * assignments (plain, augmented, annotated) whose target mentions a
      ``flow``/``cap`` token and whose value contains a float literal, a
      true division, or a ``float(...)`` cast;
    * ``.append(...)`` on a flow/cap-named receiver with such arguments
      (the parallel-list construction path);
    * calls to the kernel mutators ``push`` / ``set_capacity`` /
      ``add_arc`` with such arguments;
    * comparisons where one side mentions a ``flow``/``cap`` token and
      any operand carries a float literal or an epsilon-named constant —
      the ``residual > 1e-9`` / ``flow > 0.5`` patterns of the float
      era; with the integer kernel every such test must be exact.
    """

    name = "float-flow"
    description = (
        "flow/cap slots are exact ints everywhere under src/: no float "
        "literal, true division, float() cast or epsilon comparison may "
        "reach one"
    )

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_assign(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)

    # ------------------------------------------------------------------
    def _check_assign(
        self,
        module: Module,
        node: ast.Assign | ast.AnnAssign | ast.AugAssign,
    ) -> Iterator[Finding]:
        value = node.value
        if value is None:
            return
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        if not any(mentions_token(t, FLOW_TOKENS) for t in targets):
            return
        taint = _float_taint(value)
        if taint is not None:
            yield self._finding(
                module,
                taint,
                "float arithmetic assigned into a flow/cap slot",
            )

    def _check_call(
        self, module: Module, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        is_kernel = func.attr in _KERNEL_CALLS
        is_append = func.attr == "append" and mentions_token(
            func.value, FLOW_TOKENS
        )
        if not (is_kernel or is_append):
            return
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            taint = _float_taint(arg)
            if taint is not None:
                yield self._finding(
                    module,
                    taint,
                    f"float arithmetic passed to {func.attr}() enters a "
                    f"flow/cap slot",
                )

    def _check_compare(
        self, module: Module, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        if not any(mentions_token(op, FLOW_TOKENS) for op in operands):
            return
        for op in operands:
            bad = None
            for sub in ast.walk(op):
                if isinstance(sub, ast.Constant) and isinstance(
                    sub.value, float
                ):
                    bad = sub
                    break
            if bad is None and _mentions_eps(op):
                bad = op
            if bad is not None:
                yield self._finding(
                    module,
                    bad,
                    "epsilon/float comparison against a flow/cap slot; "
                    "the integer kernel compares exactly",
                )
                return

    def _finding(
        self, module: Module, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
            hint=(
                "capacities and flows are exact Python ints end to end "
                "(see docs/ALGORITHMS.md, 'Integer kernel'); keep float "
                "arithmetic on the response-time side of capacity_at()"
            ),
        )
