"""integer-capacity: capacities and thresholds stay in exact arithmetic.

The paper's capacities ``floor((t - D_j - X_j) / C_j)`` are integers;
the code stores them in floats (exact up to 2**53) and relies on every
capacity *update* being integral — a stray true division or a 0.5-ish
literal silently turns the max-flow instance fractional, and a float
``==`` makes feasibility tests representation-dependent.  Within the
algorithmic packages (``core/`` and ``maxflow/``) this rule flags:

* ``==`` / ``!=`` where either side is a float literal — compare against
  an integer, or use an explicit epsilon band;
* true division ``/`` in any expression that mentions a capacity-ish
  identifier (``cap``, ``caps``, ``capacity``, ``threshold``, …) — use
  floor division ``//`` or integer arithmetic;
* non-integral float literals written into capacity-named targets or
  passed to capacity-named calls (``set_capacity(a, 0.5)``).

Identifier matching is token-based (split on ``_``), so ``sink_caps``
matches but ``escape`` does not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import mentions_token
from repro.lint.engine import Module, Rule
from repro.lint.findings import Finding

__all__ = ["IntegerCapacityRule"]

#: identifier fragments that mark a value as a capacity/threshold
CAPACITY_TOKENS = frozenset(
    {"cap", "caps", "capacity", "capacities", "threshold", "thresholds"}
)

#: packages where capacity arithmetic must stay exact
SCOPED_DIRS = ("core/", "maxflow/")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_literal(node.operand)
    return False


def _nonintegral_floats(node: ast.AST) -> Iterator[ast.Constant]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, float)
            and sub.value != int(sub.value)
        ):
            yield sub


class IntegerCapacityRule(Rule):
    name = "integer-capacity"
    description = (
        "capacity/threshold arithmetic in core/ and maxflow/ must stay "
        "integral: no float ==, no true division, no fractional literals"
    )

    def applies_to(self, path: str) -> bool:
        return any(d in path for d in SCOPED_DIRS)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield from self._check_division(module, node)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                yield from self._check_division(module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    if mentions_token(target, CAPACITY_TOKENS):
                        yield from self._check_fractional(module, value)
                        break
            elif isinstance(node, ast.Call):
                if mentions_token(node.func, CAPACITY_TOKENS):
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        yield from self._check_fractional(module, arg)

    # ------------------------------------------------------------------
    def _check_compare(
        self, module: Module, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule=self.name,
                    message="exact equality against a float literal",
                    hint=(
                        "compare against an int, use an epsilon band, or "
                        "restructure to an integer quantity"
                    ),
                )

    def _check_division(
        self, module: Module, node: ast.BinOp | ast.AugAssign
    ) -> Iterator[Finding]:
        operands = (
            (node.left, node.right)
            if isinstance(node, ast.BinOp)
            else (node.target, node.value)
        )
        if any(mentions_token(op, CAPACITY_TOKENS) for op in operands):
            yield Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=self.name,
                message=(
                    "true division '/' on a capacity/threshold expression"
                ),
                hint="use floor division '//' or integer arithmetic",
            )

    def _check_fractional(
        self, module: Module, value: ast.expr
    ) -> Iterator[Finding]:
        for const in _nonintegral_floats(value):
            yield Finding(
                path=module.path,
                line=const.lineno,
                col=const.col_offset + 1,
                rule=self.name,
                message=(
                    f"non-integral float literal {const.value!r} in a "
                    f"capacity/threshold expression"
                ),
                hint="capacities are integral; use whole numbers",
            )
