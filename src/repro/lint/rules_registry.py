"""registry-completeness: every solver/engine is reachable and tested.

The public API reaches solvers through ``repro.core.api.SOLVERS`` and
max-flow engines through ``repro.maxflow.ENGINES``.  A class that exists
but is missing from its registry is dead weight — unreachable from
``solve()``/``get_engine()``, invisible to the CLI, and silently skipped
by the differential cross-check that keeps the optimal solvers honest.
This project-level rule enforces:

* every ``*Solver`` class under ``core/`` appears as a value in the
  ``SOLVERS`` dict of ``core/api.py``;
* every ``*Engine`` class under ``maxflow/`` (except the abstract
  ``MaxFlowEngine`` base) appears as a value in ``ENGINES`` of
  ``maxflow/__init__.py``;
* every ``*Backend`` class under ``fleet/`` (except the abstract
  ``SolveBackend`` base) appears as a value in ``BACKENDS`` of
  ``fleet/backends.py``;
* every registry *name* appears somewhere in the test suite (as a
  string literal in a file under ``tests/``);
* every optimal solver name appears in the differential suite
  (``tests/**/test_differential*.py``).  Solvers that cannot take part
  are listed in :data:`DIFFERENTIAL_EXEMPT` with their reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Module, Project, ProjectRule
from repro.lint.findings import Finding

__all__ = ["DIFFERENTIAL_EXEMPT", "RegistryCompletenessRule"]

#: solver names excused from the generalized differential cross-check
DIFFERENTIAL_EXEMPT: dict[str, str] = {
    "ff-basic": "Algorithm 1 solves only the basic (homogeneous) problem",
    "brute-force": "is itself the oracle the differential suite checks against",
    "greedy-finish-time": "heuristic baseline, documented as non-optimal",
    "round-robin": "heuristic baseline, documented as non-optimal",
}


def _registry_literal(
    module: Module, dict_name: str
) -> tuple[dict[str, str], dict[str, int]] | None:
    """Extract ``{key: class_name}`` and key line numbers from a module."""
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == dict_name
            for t in node.targets
        ):
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        mapping: dict[str, str] = {}
        lines: dict[str, int] = {}
        for key, value in zip(node.value.keys, node.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Name)
            ):
                mapping[key.value] = value.id
                lines[key.value] = key.lineno
        return mapping, lines
    return None


def _class_defs(module: Module, suffix: str) -> Iterator[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name.endswith(suffix):
            yield node


def _is_abstract(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name in {"ABC", "Protocol"}:
            return True
    return bool(
        any(
            isinstance(kw.value, ast.Name) and kw.value.id == "ABCMeta"
            for kw in node.keywords
            if kw.arg == "metaclass"
        )
    )


class RegistryCompletenessRule(ProjectRule):
    name = "registry-completeness"
    description = (
        "every solver/engine class is registered, and every registry "
        "name is exercised by the test suite"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        test_sources = self._test_sources(project)
        differential = "".join(
            src for path, src in test_sources if "test_differential" in path
        )
        all_tests = "".join(src for _, src in test_sources)

        yield from self._check_registry(
            project,
            registry_module="core/api.py",
            dict_name="SOLVERS",
            class_suffix="Solver",
            package_dir="core/",
            all_tests=all_tests,
            differential=differential,
        )
        yield from self._check_registry(
            project,
            registry_module="maxflow/__init__.py",
            dict_name="ENGINES",
            class_suffix="Engine",
            package_dir="maxflow/",
            all_tests=all_tests,
            differential=None,  # engines are unit-tested, not differential
        )
        yield from self._check_registry(
            project,
            registry_module="fleet/backends.py",
            dict_name="BACKENDS",
            class_suffix="Backend",
            package_dir="fleet/",
            all_tests=all_tests,
            differential=None,  # backends are covered by tests/fleet/
        )

    # ------------------------------------------------------------------
    def _test_sources(self, project: Project) -> list[tuple[str, str]]:
        tests_root = project.root / "tests"
        if not tests_root.is_dir():
            return []
        return [
            (py.as_posix(), py.read_text(encoding="utf-8"))
            for py in sorted(tests_root.rglob("*.py"))
        ]

    def _check_registry(
        self,
        project: Project,
        *,
        registry_module: str,
        dict_name: str,
        class_suffix: str,
        package_dir: str,
        all_tests: str,
        differential: str | None,
    ) -> Iterator[Finding]:
        reg_mod = project.module(registry_module)
        if reg_mod is None:
            return
        extracted = _registry_literal(reg_mod, dict_name)
        if extracted is None:
            yield Finding(
                path=reg_mod.path,
                line=1,
                col=1,
                rule=self.name,
                message=f"{dict_name} is not a plain dict literal",
                hint="keep the registry statically analysable",
            )
            return
        registry, key_lines = extracted
        registered_classes = set(registry.values())

        # 1. every concrete class under the package is registered
        for module in project.modules:
            if package_dir not in module.path:
                continue
            for node in _class_defs(module, class_suffix):
                if node.name == f"MaxFlow{class_suffix}" or _is_abstract(node):
                    continue
                if node.name not in registered_classes:
                    yield Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=self.name,
                        message=(
                            f"class '{node.name}' is not registered in "
                            f"{registry_module}:{dict_name} — unreachable "
                            f"from the public API"
                        ),
                        hint=f"add it to {dict_name} or remove the class",
                    )

        # 2. every registry name is exercised somewhere under tests/
        for key, line in key_lines.items():
            if f'"{key}"' not in all_tests and f"'{key}'" not in all_tests:
                yield Finding(
                    path=reg_mod.path,
                    line=line,
                    col=1,
                    rule=self.name,
                    message=(
                        f"registry name '{key}' never appears in the test "
                        f"suite"
                    ),
                    hint="add a test that exercises it by name",
                )

        # 3. optimal solvers must be in the differential cross-check
        if differential is None:
            return
        for key, line in key_lines.items():
            if key in DIFFERENTIAL_EXEMPT:
                continue
            if f'"{key}"' not in differential and f"'{key}'" not in differential:
                yield Finding(
                    path=reg_mod.path,
                    line=line,
                    col=1,
                    rule=self.name,
                    message=(
                        f"optimal solver '{key}' is not covered by the "
                        f"differential suite"
                    ),
                    hint=(
                        "add it to tests/core/test_differential.py's solver "
                        "list, or record an exemption in "
                        "repro/lint/rules_registry.py with its reason"
                    ),
                )
