"""SARIF 2.1.0 output and the checked-in findings baseline.

SARIF
-----
:func:`to_sarif` renders findings as a minimal SARIF 2.1.0 log — one
run, one ``tool.driver`` with the rule catalog, one ``result`` per
finding with a ``physicalLocation`` — which GitHub code scanning ingests
to annotate PR diffs.  :func:`format_sarif` is the string form the CLI
emits for ``repro lint --format sarif``.

Baseline
--------
The baseline file (``lint-baseline.json`` at the repo root) is the
*audited debt list*: each entry pins one known finding by
``(rule, path, line)`` and must carry a written ``reason``.  At lint
time matching findings are filtered out; a baseline entry that no
longer matches anything is reported as **stale** and fails the run —
so the file can only shrink together with the suppressions it
documents, which is exactly the CI gate the workflow enforces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.lint.findings import Finding

__all__ = [
    "BaselineEntry",
    "apply_baseline",
    "format_sarif",
    "load_baseline",
    "to_sarif",
    "write_baseline",
]

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: one baseline record: {"rule", "path", "line", "reason"}
BaselineEntry = dict[str, Any]


def to_sarif(
    findings: Sequence[Finding],
    *,
    catalog: Sequence[tuple[str, str]] | None = None,
) -> dict[str, Any]:
    """Findings as a SARIF 2.1.0 log object."""
    rule_ids = sorted(
        {f.rule for f in findings}
        | ({name for name, _ in catalog} if catalog else set())
    )
    descriptions = dict(catalog or ())
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in rule_ids
    ]
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "error",
            "message": {
                "text": f.message if not f.hint else f"{f.message} ({f.hint})"
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/LINT.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(
    findings: Sequence[Finding],
    *,
    catalog: Sequence[tuple[str, str]] | None = None,
) -> str:
    return json.dumps(to_sarif(findings, catalog=catalog), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Read a baseline file; returns ``[]`` for a missing file."""
    p = Path(path)
    if not p.exists():
        return []
    payload = json.loads(p.read_text(encoding="utf-8"))
    entries = payload.get("findings", []) if isinstance(payload, dict) else []
    if not isinstance(entries, list):
        raise ValueError(f"baseline {p}: 'findings' must be a list")
    out: list[BaselineEntry] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "rule" not in entry or "path" not in entry:
            raise ValueError(
                f"baseline {p}: entry {i} must be an object with "
                "'rule' and 'path'"
            )
        reason = str(entry.get("reason", "")).strip()
        if not reason:
            raise ValueError(
                f"baseline {p}: entry {i} ({entry['rule']} at "
                f"{entry['path']}) has no written reason"
            )
        if reason.startswith("TODO"):
            raise ValueError(
                f"baseline {p}: entry {i} ({entry['rule']} at "
                f"{entry['path']}) still has the placeholder reason — "
                "write a real justification for the suppression"
            )
        out.append(entry)
    return out


def write_baseline(findings: Sequence[Finding], path: str | Path) -> None:
    """Regenerate the baseline from the current findings.

    Freshly generated entries carry a placeholder reason that the
    loader rejects — forcing whoever checks the file in to write real
    justifications for every suppressed finding.
    """
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "reason": "TODO: justify this suppression",
        }
        for f in findings
    ]
    payload = {
        "comment": (
            "Known repro-lint findings, each with an audited reason. "
            "Stale entries fail the lint run: delete them when the "
            "finding is fixed."
        ),
        "findings": entries,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(new_findings, stale_entries)``: findings not matched by
    any entry, and entries that matched nothing (stale — the underlying
    finding was fixed, so the suppression must be deleted).
    """
    used = [False] * len(entries)
    new: list[Finding] = []
    for f in findings:
        matched = False
        for i, entry in enumerate(entries):
            if entry.get("rule") != f.rule or entry.get("path") != f.path:
                continue
            line = entry.get("line")
            if line is not None and int(line) != f.line:
                continue
            used[i] = True
            matched = True
            break
        if not matched:
            new.append(f)
    stale = [entry for i, entry in enumerate(entries) if not used[i]]
    return new, stale
