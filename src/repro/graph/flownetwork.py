"""A mutable directed flow network with paired residual arcs.

Design
------
The structure follows the classic competitive-programming / LEDA layout that
every serious max-flow implementation converges on:

* Arcs are stored in parallel Python lists (``head``, ``cap``, ``flow``).
  Arc ``a`` and arc ``a ^ 1`` are *twins*: the twin of a forward arc is its
  residual (reverse) arc.  Pushing ``delta`` units over arc ``a`` is::

      flow[a]     += delta
      flow[a ^ 1] -= delta

  and the residual capacity of any arc is ``cap[a] - flow[a]``.

* ``adj[v]`` lists the arc ids leaving vertex ``v`` (forward *and* residual
  arcs alike — a residual arc leaves the head of its twin).  Engines iterate
  ``adj[v]`` and skip arcs with zero residual capacity.

Plain Python lists are the *construction* representation, and they are
still what the scalar hot loops index: list reads beat both NumPy
fancy-indexing and ``array('q')`` element access in CPython (~1.6x for
the latter — every array read boxes a fresh int; see the HPC guide's
"profile, don't guess" rule — we did, in
``benchmarks/bench_ablation_engines.py``).  The crossover is
*whole-buffer* work: save/restore/reset snapshots, codec payloads and
the per-probe sink-capacity sweep are slice-shaped, and there flat
int64 buffers win by an order of magnitude.  :meth:`FlowNetwork.compile`
freezes a finished topology into that form — a
:class:`~repro.graph.csr.CompiledNetwork` of parallel ``array('q')``
buffers with CSR arc ranges — which the ``csr-push-relabel`` engine,
the service cache and the fleet codec all share.  Bulk operations that
stay on the builder (capacity re-scaling of the disk→sink arcs in
:mod:`repro.core.network`) use extended-slice assignment on the lists
exported by :meth:`FlowNetwork.arrays`, which is likewise C-speed.

Capacities and flows are **Python ints, exactly** — the integer kernel
contract (see ``docs/ALGORITHMS.md``).  The paper's networks are purely
integral (unit source→bucket and bucket→disk arcs; disk→sink capacities
``floor((t - D_j - X_j) / C_j)``), so nothing is lost, and every layer
above gains exact comparisons: no epsilon tolerances, no ``round()``
repair, and no boundary-feasibility flips when a probe deadline lands
exactly on a disk finish time.  Small-int compares and adds are also
faster than float boxing in the scalar hot loops.  Constructors accept
integral floats (``1.0``) for compatibility and reject fractional values
loudly; the ``float-flow`` lint rule keeps float arithmetic from creeping
back into any ``flow``/``cap`` slot under ``src/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro import invariants
from repro.errors import InvalidArcError, InvalidVertexError

__all__ = ["Arc", "FlowNetwork"]


def _exact_int(value: object, what: str) -> int:
    """Coerce ``value`` to an int, rejecting anything non-integral.

    Accepts ints and integral floats (legacy callers wrote ``1.0``);
    raises :class:`InvalidArcError` for fractional, non-finite or
    non-numeric values.  This is the only tolerance-free gate through
    which a capacity or flow may enter the kernel.
    """
    if type(value) is int:
        return value
    try:
        as_int = int(value)  # type: ignore[call-overload]
    except (TypeError, ValueError, OverflowError) as exc:
        raise InvalidArcError(f"{what} must be an integer, got {value!r}") from exc
    if as_int != value or isinstance(value, bool):
        raise InvalidArcError(f"{what} must be integral, got {value!r}")
    return as_int


@dataclass(frozen=True)
class Arc:
    """An immutable snapshot of one arc, for inspection and debugging.

    Engines never build these in hot loops; they exist so tests, examples
    and reporting code can talk about arcs without poking parallel lists.
    """

    index: int
    tail: int
    head: int
    cap: int
    flow: int

    @property
    def residual(self) -> int:
        """Remaining capacity ``cap - flow`` of this arc."""
        return self.cap - self.flow

    @property
    def is_reverse(self) -> bool:
        """True if this is the residual twin of an original arc."""
        return self.index % 2 == 1


class FlowNetwork:
    """Directed graph with paired arcs, integer capacities and flows.

    Parameters
    ----------
    n:
        Number of vertices, ids ``0 .. n-1``.  More can be added later with
        :meth:`add_vertex`.

    Notes
    -----
    Adding the arc ``(u, v, cap)`` creates *two* entries: the forward arc at
    an even index and its residual twin ``(v, u, 0)`` at the following odd
    index.  :meth:`add_arc` returns the forward arc id.
    """

    __slots__ = (
        "n", "head", "cap", "flow", "adj", "_tail", "_in_deg", "_fwd",
        "_compiled",
    )

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise InvalidVertexError(f"vertex count must be >= 0, got {n}")
        self.n: int = n
        self.head: list[int] = []
        self.cap: list[int] = []
        self.flow: list[int] = []
        self.adj: list[list[int]] = [[] for _ in range(n)]
        self._tail: list[int] = []
        #: per-vertex count of original arcs entering the vertex,
        #: maintained by add_arc so in_degree() is O(1)
        self._in_deg: list[int] = [0] * n
        #: per-vertex forward (even) arc ids, maintained by add_arc so
        #: forward_out_arcs() is allocation-free
        self._fwd: list[list[int]] = [[] for _ in range(n)]
        #: memoized CompiledNetwork; invalidated by topology mutation
        self._compiled = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append a new vertex and return its id."""
        self.adj.append([])
        self._in_deg.append(0)
        self._fwd.append([])
        self._compiled = None
        self.n += 1
        return self.n - 1

    def add_vertices(self, count: int) -> list[int]:
        """Append ``count`` vertices, returning their ids."""
        if count < 0:
            raise InvalidVertexError(f"cannot add {count} vertices")
        return [self.add_vertex() for _ in range(count)]

    def add_arc(self, u: int, v: int, cap: int) -> int:
        """Add arc ``u -> v`` with integer capacity ``cap``; return its (even) id.

        The residual twin ``v -> u`` with capacity 0 is created implicitly
        at id ``add_arc(...) + 1``.  Integral floats are accepted for
        compatibility; fractional capacities raise.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        cap = _exact_int(cap, f"capacity on arc {u}->{v}")
        if cap < 0:
            raise InvalidArcError(f"negative capacity {cap} on arc {u}->{v}")
        a = len(self.head)
        self.head.append(v)
        self.cap.append(cap)
        self.flow.append(0)
        self._tail.append(u)
        self.adj[u].append(a)
        self._fwd[u].append(a)

        self.head.append(u)
        self.cap.append(0)
        self.flow.append(0)
        self._tail.append(v)
        self.adj[v].append(a + 1)
        self._in_deg[v] += 1
        self._compiled = None
        return a

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        """Number of *original* (forward) arcs."""
        return len(self.head) // 2

    @property
    def num_arc_slots(self) -> int:
        """Number of arc slots including residual twins (= 2 * num_arcs)."""
        return len(self.head)

    def tail(self, a: int) -> int:
        """Tail (source vertex) of arc ``a``."""
        self._check_arc(a)
        return self._tail[a]

    def residual(self, a: int) -> int:
        """Residual capacity ``cap[a] - flow[a]`` of arc ``a``."""
        self._check_arc(a)
        return self.cap[a] - self.flow[a]

    def arc(self, a: int) -> Arc:
        """Return an :class:`Arc` snapshot of arc slot ``a``."""
        self._check_arc(a)
        return Arc(a, self._tail[a], self.head[a], self.cap[a], self.flow[a])

    def arcs(self, include_reverse: bool = False) -> Iterator[Arc]:
        """Iterate arc snapshots; original arcs only unless requested."""
        step = 1 if include_reverse else 2
        for a in range(0, len(self.head), step):
            yield self.arc(a)

    def out_arcs(self, v: int) -> Sequence[int]:
        """Arc ids leaving ``v`` (forward and residual alike)."""
        self._check_vertex(v)
        return self.adj[v]

    def forward_out_arcs(self, v: int) -> list[int]:
        """Only the *original* arcs leaving ``v`` (even ids).

        Non-allocating fast path: returns the live per-vertex list that
        :meth:`add_arc` maintains, not a fresh filtered copy — treat it
        as read-only (mutating it would corrupt the adjacency).
        """
        self._check_vertex(v)
        return self._fwd[v]

    def in_degree(self, v: int) -> int:
        """Number of original arcs entering ``v`` — O(1).

        Used by the paper's ``IncrementMinCost`` (Algorithm 3, lines 3-5):
        a disk vertex whose in-degree is already matched by its sink-arc
        capacity cannot usefully receive a larger capacity.  The count is
        maintained incrementally by :meth:`add_arc` instead of re-scanning
        ``adj[v]`` for residual twins on every call.
        """
        self._check_vertex(v)
        return self._in_deg[v]

    # ------------------------------------------------------------------
    # flow manipulation
    # ------------------------------------------------------------------
    def push(self, a: int, delta: int) -> None:
        """Push ``delta`` units along arc ``a`` (and pull on its twin).

        Raises if the push would exceed residual capacity — exactly, with
        no floating tolerance; engines that have already checked the
        residual update the lists directly for speed.
        """
        self._check_arc(a)
        delta = _exact_int(delta, f"push delta on arc {a}")
        if delta > self.cap[a] - self.flow[a]:
            raise InvalidArcError(
                f"push of {delta} exceeds residual {self.cap[a] - self.flow[a]}"
                f" on arc {a}"
            )
        self.flow[a] += delta
        self.flow[a ^ 1] -= delta

    def set_capacity(self, a: int, cap: int) -> None:
        """Set the capacity of arc ``a`` (forward arcs only)."""
        self._check_arc(a)
        if a % 2 == 1:
            raise InvalidArcError("cannot set capacity of a residual twin")
        cap = _exact_int(cap, f"capacity on arc {a}")
        if cap < 0:
            raise InvalidArcError(f"negative capacity {cap}")
        self.cap[a] = cap

    def reset_flow(self) -> None:
        """Zero every flow value — the 'black box starts from scratch' case.

        Mutates in place (never rebinds) so views handed out by
        :meth:`arrays` stay valid across resets.  Whole-buffer slice
        assignment — one C-level write instead of a Python loop.
        """
        flow = self.flow
        flow[:] = [0] * len(flow)

    def save_flow(self) -> list[int]:
        """Snapshot the flow assignment (Algorithm 6's ``StoreFlows``)."""
        return list(self.flow)

    def restore_flow(self, saved: list[int]) -> None:
        """Restore a snapshot taken by :meth:`save_flow` (``RestoreFlows``).

        Mutates in place (never rebinds) so views handed out by
        :meth:`arrays` stay valid across restores.
        """
        if len(saved) != len(self.flow):
            raise InvalidArcError(
                f"snapshot has {len(saved)} slots, network has {len(self.flow)}"
            )
        self.flow[:] = saved
        if invariants.ENABLED:
            invariants.check_antisymmetry(self, "restore_flow")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "FlowNetwork":
        """Deep copy (structure, capacities and flows)."""
        g = FlowNetwork.__new__(FlowNetwork)
        g.n = self.n
        g.head = list(self.head)
        g.cap = list(self.cap)
        g.flow = list(self.flow)
        g._tail = list(self._tail)
        g.adj = [list(lst) for lst in self.adj]
        g._in_deg = list(self._in_deg)
        g._fwd = [list(lst) for lst in self._fwd]
        g._compiled = None  # compiled layouts are never shared
        return g

    def vertices(self) -> range:
        """Range of vertex ids."""
        return range(self.n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowNetwork(n={self.n}, arcs={self.num_arcs})"

    # ------------------------------------------------------------------
    # internal checks
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise InvalidVertexError(f"vertex {v} out of range [0, {self.n})")

    def _check_arc(self, a: int) -> None:
        if not 0 <= a < len(self.head):
            raise InvalidArcError(f"arc {a} out of range [0, {len(self.head)})")

    # ------------------------------------------------------------------
    # bulk views
    # ------------------------------------------------------------------
    def arrays(self) -> tuple[list[int], list[int], list[int], list[list[int]]]:
        """Expose the raw parallel lists ``(head, cap, flow, adj)``.

        Max-flow engines bind these to locals once per solve; mutating them
        mutates the network (that is the point).
        """
        return self.head, self.cap, self.flow, self.adj

    # ------------------------------------------------------------------
    # compiled (CSR flat-array) layout
    # ------------------------------------------------------------------
    def compile(self):
        """Freeze the current topology into a fresh flat int64 layout.

        One-shot pass producing a
        :class:`~repro.graph.csr.CompiledNetwork`: parallel ``array('q')``
        buffers (``head``/``cap``/``flow``/``twin``) plus vertex-sorted
        CSR arc ranges.  Construction stays on this mutable builder;
        engines run on the frozen layout.  Raises
        :class:`InvalidArcError` if any capacity or flow is outside the
        int64 range.
        """
        from repro.graph.csr import CompiledNetwork

        return CompiledNetwork(self)

    def compiled(self):
        """The memoized compiled layout of the current topology.

        Rebuilt after any :meth:`add_vertex`/:meth:`add_arc` (topology
        mutations invalidate the memo).  Value mutations — capacities,
        flows — do **not** invalidate it: the frozen topology stays
        correct and callers refresh the value buffers with
        :meth:`~repro.graph.csr.CompiledNetwork.pull`.
        """
        c = self._compiled
        if c is None:
            c = self.compile()
            self._compiled = c
        return c


def build_network(
    n: int, arcs: Iterable[tuple[int, int, int]]
) -> tuple[FlowNetwork, list[int]]:
    """Convenience builder: create a network and add ``arcs``.

    Returns the network and the list of forward arc ids, in input order.
    """
    g = FlowNetwork(n)
    ids = [g.add_arc(u, v, c) for (u, v, c) in arcs]
    return g, ids
