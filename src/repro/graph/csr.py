"""Frozen CSR (compressed sparse row) layout of a :class:`FlowNetwork`.

The builder (:class:`~repro.graph.flownetwork.FlowNetwork`) stays the
mutable construction surface — parallel Python lists, list-of-lists
adjacency — and this module is what :meth:`FlowNetwork.compile` freezes
it into: one :class:`CompiledNetwork` of parallel **int64**
``array('q')`` buffers

* ``head[a]``, ``cap[a]``, ``flow[a]``, ``twin[a]``, ``tail[a]`` —
  indexed by *arc slot id*, identical to the builder's arc ids (so
  ``twin[a] == a ^ 1`` by the paired layout, stored explicitly because
  the wire format should not require readers to know that convention);
* ``first`` (length ``n + 1``) and ``adj`` (length ``num_arc_slots``) —
  the CSR ranges: the arc slots leaving vertex ``v`` are
  ``adj[first[v] : first[v + 1]]``, in the builder's per-vertex order.

Because slot ids are preserved, a compiled network and its builder agree
arc-by-arc: ``flow`` snapshots, codec payloads and cache entries move
between the two representations with whole-buffer slice assignments —
C-speed ``memcpy``-style operations that also enforce the int64 range
(``array('q')`` raises ``OverflowError`` for anything outside
``[-2**63, 2**63 - 1]``, which :meth:`CompiledNetwork.pull` converts to
:class:`~repro.errors.InvalidArcError` — the same loud-rejection stance
as the ``_exact_int`` gate).

Where each representation wins (measured; see docs/ALGORITHMS.md,
"Memory layout"):

* **whole-buffer traffic** — save/restore/reset, codec serialization,
  cache snapshots — is ~40x cheaper on ``array('q')`` slices than on
  per-element Python loops, and ``tobytes()``/``frombytes()`` give the
  fleet codec a zero-copy wire form;
* **scalar hot loops** — the push–relabel discharge loop — index plain
  lists ~1.6x faster than ``array('q')`` in CPython (every array read
  boxes a fresh int).  The compiled topology therefore also carries
  cached *list mirrors* (:attr:`head_list`, :attr:`first_list`,
  :attr:`adj_list`), built once per compile; the CSR engine binds those
  in its inner loop while the interchange buffers stay canonical.

The topology (``head``/``twin``/``tail``/``first``/``adj``) is frozen at
compile time and memoized on the builder; ``cap``/``flow`` are *values*
that engines refresh from the builder with :meth:`pull` and write back
with :meth:`flush`, keeping the builder the single source of truth that
the scaling skeleton's StoreFlows/RestoreFlows discipline mutates.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

from repro import invariants
from repro.errors import InvalidArcError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.flownetwork import FlowNetwork

__all__ = ["CompiledNetwork"]

#: the array typecode of every compiled buffer — signed 64-bit
TYPECODE = "q"

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


def _as_int64_array(values: list[int], what: str) -> array:
    """``array('q', values)`` with a loud, exact range error."""
    try:
        return array(TYPECODE, values)
    except OverflowError as exc:
        raise InvalidArcError(
            f"{what} outside int64 range [{INT64_MIN}, {INT64_MAX}]: "
            f"cannot compile to a flat buffer"
        ) from exc
    except TypeError as exc:  # non-int slipped past the _exact_int gate
        raise InvalidArcError(f"{what} must be integers: {exc}") from exc


class CompiledNetwork:
    """Flat int64 buffers of one :class:`FlowNetwork`, plus kernel scratch.

    Build through :meth:`FlowNetwork.compile` (fresh) or
    :meth:`FlowNetwork.compiled` (memoized per topology); the constructor
    takes the builder directly.

    Attributes
    ----------
    n, num_arc_slots:
        Vertex count and arc-slot count (``2 *`` original arcs).
    head, cap, flow, twin, tail:
        ``array('q')`` indexed by arc slot id (= builder arc id).
    first, adj:
        CSR adjacency: arcs leaving ``v`` are
        ``adj[first[v] : first[v + 1]]``.
    head_list, first_list, adj_list:
        Immutable-by-convention list mirrors of the topology for scalar
        hot loops (lists out-index arrays in CPython; see module
        docstring).  Never reassigned after compile.
    kernel_scratch:
        A plain dict engines may use to persist per-``(source, sink)``
        working state (height/excess buffers, queues) across probes —
        the amortization that makes repeated probes on one compiled
        topology cheap.
    """

    __slots__ = (
        "n",
        "num_arc_slots",
        "head",
        "cap",
        "flow",
        "twin",
        "tail",
        "first",
        "adj",
        "head_list",
        "first_list",
        "adj_list",
        "kernel_scratch",
        "_zero_flow",
    )

    def __init__(self, g: "FlowNetwork") -> None:
        n = g.n
        m = len(g.head)
        self.n = n
        self.num_arc_slots = m
        self.head = _as_int64_array(g.head, "arc heads")
        self.cap = _as_int64_array(g.cap, "arc capacities")
        self.flow = _as_int64_array(g.flow, "arc flows")
        self.twin = array(TYPECODE, (a ^ 1 for a in range(m)))
        self.tail = _as_int64_array(g._tail, "arc tails")

        first = array(TYPECODE, bytes(8 * (n + 1)))
        flat: list[int] = []
        pos = 0
        for v in range(n):
            first[v] = pos
            arcs = g.adj[v]
            flat.extend(arcs)
            pos += len(arcs)
        first[n] = pos
        if pos != m:  # pragma: no cover - structural corruption guard
            raise InvalidArcError(
                f"adjacency covers {pos} arc slots, network has {m}"
            )
        self.adj = array(TYPECODE, flat)
        self.first = first

        self.head_list = list(g.head)
        self.first_list = first.tolist()
        self.adj_list = flat
        self.kernel_scratch: dict = {}
        self._zero_flow = array(TYPECODE, bytes(8 * m))

    # ------------------------------------------------------------------
    # builder <-> compiled value sync
    # ------------------------------------------------------------------
    def pull(self, g: "FlowNetwork") -> None:
        """Refresh ``cap``/``flow`` from the builder's current values.

        Whole-buffer slice assignment; validates the int64 range.  The
        topology must be unchanged (arc count is checked; vertex/arc
        additions invalidate the builder's memoized compile anyway).
        """
        if len(g.head) != self.num_arc_slots:
            raise InvalidArcError(
                f"cannot pull: builder has {len(g.head)} arc slots, "
                f"compiled layout has {self.num_arc_slots}"
            )
        self.cap[:] = _as_int64_array(g.cap, "arc capacities")
        self.flow[:] = _as_int64_array(g.flow, "arc flows")

    def flush(self, g: "FlowNetwork") -> None:
        """Write ``flow`` back into the builder's list (never rebinds)."""
        if len(g.flow) != self.num_arc_slots:
            raise InvalidArcError(
                f"cannot flush: builder has {len(g.flow)} arc slots, "
                f"compiled layout has {self.num_arc_slots}"
            )
        g.flow[:] = self.flow.tolist()

    # ------------------------------------------------------------------
    # flow snapshots — Algorithm 6's StoreFlows / RestoreFlows, flat
    # ------------------------------------------------------------------
    def save_flow(self) -> array:
        """Snapshot the flow buffer (one C-level copy)."""
        return array(TYPECODE, self.flow)

    def restore_flow(self, saved) -> None:
        """Restore a :meth:`save_flow` snapshot in place (never rebinds).

        Accepts any int64-rangeable sequence (``array('q')`` snapshots
        or the builder's plain-list snapshots alike).
        """
        if len(saved) != self.num_arc_slots:
            raise InvalidArcError(
                f"snapshot has {len(saved)} slots, compiled network has "
                f"{self.num_arc_slots}"
            )
        if isinstance(saved, array) and saved.typecode == TYPECODE:
            self.flow[:] = saved
        else:
            self.flow[:] = _as_int64_array(list(saved), "flow snapshot")
        if invariants.ENABLED:
            invariants.check_antisymmetry(self, "CompiledNetwork.restore_flow")

    def reset_flow(self) -> None:
        """Zero the flow buffer with one whole-buffer slice write."""
        self.flow[:] = self._zero_flow

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def out_slots(self, v: int) -> array:
        """Arc slot ids leaving ``v`` (forward and residual alike)."""
        if not 0 <= v < self.n:
            raise InvalidArcError(f"vertex {v} out of range [0, {self.n})")
        return self.adj[self.first[v] : self.first[v + 1]]

    def sink_arc_ids(self, t: int) -> array:
        """Forward arc slots entering ``t``, in ascending slot order.

        For a retrieval network this is exactly the disk→sink capacity
        row the per-probe rescale rewrites; because those arcs are
        appended last by :class:`~repro.core.network.RetrievalNetwork`,
        the returned slots form the arithmetic run ``base, base+2, ...``
        that ``set_deadline_capacities`` covers with one strided slice.
        """
        if not 0 <= t < self.n:
            raise InvalidArcError(f"vertex {t} out of range [0, {self.n})")
        head = self.head_list
        return array(
            TYPECODE,
            (a for a in range(0, self.num_arc_slots, 2) if head[a] == t),
        )

    def buffers(self) -> tuple[array, array, array, array, array, array]:
        """Raw ``(head, cap, flow, twin, first, adj)`` buffers.

        The flat-layout analogue of :meth:`FlowNetwork.arrays`: mutating
        the returned buffers mutates the compiled network.  The
        ``flow-encapsulation`` lint rule tracks locals bound from this
        call the same way it tracks ``arrays()`` locals — element stores
        outside the kernel owner files are findings.
        """
        return self.head, self.cap, self.flow, self.twin, self.first, self.adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledNetwork(n={self.n}, arc_slots={self.num_arc_slots})"
        )
