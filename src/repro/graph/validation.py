"""Flow and preflow validation.

These checks are the safety net for every engine in :mod:`repro.maxflow`
and for Algorithm 6's store/restore machinery: after any solve (and in
property tests, after *every* probe) we can assert that the arrays still
describe a legal flow.

With the integer kernel, every check is **exact**: capacities, flows and
excesses are ints, so there is no tolerance band — a single unit of
violation is a violation.
"""

from __future__ import annotations

from collections import deque

from repro.errors import FlowValidationError
from repro.graph.flownetwork import FlowNetwork

__all__ = [
    "excess_of",
    "flow_value",
    "is_valid_flow",
    "assert_valid_flow",
    "assert_valid_preflow",
    "min_cut_reachable",
]


def excess_of(g: FlowNetwork, v: int) -> int:
    """Net flow *into* vertex ``v`` (inflow minus outflow).

    For a valid flow this is zero everywhere except the source (negative)
    and sink (positive); for a preflow it is non-negative away from the
    source.
    """
    total = 0
    for a in g.out_arcs(v):
        # flow on an arc leaving v counts against v's excess; residual twins
        # carry the negated inflow, so summing -flow over out-arcs gives the
        # net inflow directly.
        total -= g.flow[a]
    return total


def flow_value(g: FlowNetwork, s: int, t: int) -> int:
    """Value of the current flow: net flow into the sink ``t``."""
    del s  # kept for signature symmetry with the max-flow engines
    return excess_of(g, t)


def _capacity_violations(g: FlowNetwork) -> list[str]:
    bad = []
    for a in range(g.num_arc_slots):
        if g.flow[a] > g.cap[a]:
            bad.append(
                f"arc {a} ({g.tail(a)}->{g.head[a]}): flow {g.flow[a]} > cap {g.cap[a]}"
            )
        if g.flow[a] + g.flow[a ^ 1] != 0:
            bad.append(f"arc {a}: antisymmetry broken (f + f_twin != 0)")
    return bad


def is_valid_flow(g: FlowNetwork, s: int, t: int) -> bool:
    """True iff the current assignment is a feasible s-t flow."""
    try:
        assert_valid_flow(g, s, t)
    except FlowValidationError:
        return False
    return True


def assert_valid_flow(g: FlowNetwork, s: int, t: int) -> None:
    """Raise :class:`FlowValidationError` unless the assignment is a flow.

    Checks capacity constraints, antisymmetry of twins, and conservation
    (Equation 1 of the paper) at every vertex except ``s`` and ``t`` —
    all by exact integer comparison.
    """
    problems = _capacity_violations(g)
    for v in g.vertices():
        if v in (s, t):
            continue
        ex = excess_of(g, v)
        if ex != 0:
            problems.append(f"vertex {v}: excess {ex} != 0")
    if problems:
        raise FlowValidationError("; ".join(problems[:10]))


def assert_valid_preflow(g: FlowNetwork, s: int, t: int) -> None:
    """Raise unless the assignment is a preflow (non-negative excesses).

    Push-relabel works with preflows mid-run; this is the invariant its
    tests check between phases.
    """
    problems = _capacity_violations(g)
    for v in g.vertices():
        if v == s:
            continue
        ex = excess_of(g, v)
        if ex < 0:
            problems.append(f"vertex {v}: negative excess {ex}")
    if problems:
        raise FlowValidationError("; ".join(problems[:10]))


def min_cut_reachable(g: FlowNetwork, s: int) -> set[int]:
    """Vertices reachable from ``s`` in the residual graph.

    After a max flow, this is the source side of a minimum cut; it is how
    tests certify optimality without trusting a second solver.
    """
    seen = {s}
    queue = deque([s])
    cap, flow, adj, head = g.cap, g.flow, g.adj, g.head
    while queue:
        v = queue.popleft()
        for a in adj[v]:
            if cap[a] - flow[a] > 0:
                w = head[a]
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
    return seen
