"""Structural statistics and DOT export for flow networks.

Supports debugging ("why is this instance slow?") and the analysis
package's structure studies.  Nothing here is on a hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.flownetwork import FlowNetwork

__all__ = ["GraphStats", "graph_stats", "to_dot"]


@dataclass(frozen=True)
class GraphStats:
    """Shape summary of one network."""

    num_vertices: int
    num_arcs: int
    max_out_degree: int
    mean_out_degree: float
    total_capacity: int
    saturated_arcs: int
    flow_carrying_arcs: int

    @property
    def density(self) -> float:
        """arcs / (V * (V-1)) — 1.0 is a complete digraph."""
        n = self.num_vertices
        return self.num_arcs / (n * (n - 1)) if n > 1 else 0.0


def graph_stats(g: FlowNetwork) -> GraphStats:
    """Compute a :class:`GraphStats` snapshot (forward arcs only)."""
    out_deg = [0] * g.n
    total_cap = 0
    saturated = carrying = 0
    for arc in g.arcs():
        out_deg[arc.tail] += 1
        total_cap += arc.cap
        if arc.flow > 0:
            carrying += 1
            if arc.residual <= 0:
                saturated += 1
    return GraphStats(
        num_vertices=g.n,
        num_arcs=g.num_arcs,
        max_out_degree=max(out_deg, default=0),
        mean_out_degree=(sum(out_deg) / g.n) if g.n else 0.0,
        total_capacity=total_cap,
        saturated_arcs=saturated,
        flow_carrying_arcs=carrying,
    )


def to_dot(
    g: FlowNetwork,
    s: int | None = None,
    t: int | None = None,
    *,
    show_flow: bool = True,
) -> str:
    """Graphviz DOT text for the network (forward arcs only).

    Arc labels are ``flow/cap`` (or just ``cap`` with ``show_flow=False``);
    flow-carrying arcs are drawn bold, source/sink shaded.
    """
    lines = ["digraph flownetwork {", "  rankdir=LR;"]
    for v in g.vertices():
        attrs = []
        if v == s:
            attrs.append('label="s", style=filled, fillcolor=lightgrey')
        elif v == t:
            attrs.append('label="t", style=filled, fillcolor=lightgrey')
        if attrs:
            lines.append(f"  {v} [{', '.join(attrs)}];")
    for arc in g.arcs():
        if show_flow:
            label = f"{arc.flow:d}/{arc.cap:d}"
        else:
            label = f"{arc.cap:d}"
        style = ", penwidth=2" if (show_flow and arc.flow > 0) else ""
        lines.append(
            f'  {arc.tail} -> {arc.head} [label="{label}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
