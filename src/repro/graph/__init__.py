"""Flow-network substrate.

This package provides the graph data structure shared by every maximum-flow
engine in :mod:`repro.maxflow` and by the retrieval-network builders in
:mod:`repro.core`.  It plays the role LEDA's ``GRAPH`` type plays in the
paper's C++ implementation: a mutable directed graph with *paired arcs*
(arc ``a`` and ``a ^ 1`` are residual twins) so that pushing flow and
walking the residual graph are O(1) array operations.
"""

from repro.graph.flownetwork import Arc, FlowNetwork
from repro.graph.validation import (
    assert_valid_flow,
    assert_valid_preflow,
    excess_of,
    flow_value,
    is_valid_flow,
    min_cut_reachable,
)
from repro.graph.io import (
    from_dimacs,
    from_json,
    to_dimacs,
    to_json,
    to_networkx,
)
from repro.graph.stats import GraphStats, graph_stats, to_dot

__all__ = [
    "GraphStats",
    "graph_stats",
    "to_dot",
    "Arc",
    "FlowNetwork",
    "assert_valid_flow",
    "assert_valid_preflow",
    "excess_of",
    "flow_value",
    "is_valid_flow",
    "min_cut_reachable",
    "from_dimacs",
    "from_json",
    "to_dimacs",
    "to_json",
    "to_networkx",
]
