"""Single source of truth for the package version."""

__version__ = "1.5.0"
