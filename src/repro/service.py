"""A stateful retrieval-scheduler service.

Everything a storage frontend needs behind one object: hold the system
and placement, accept queries (thread-safely), keep per-disk busy
horizons up to date (Table I's ``X_j``), route around failed disks, and
expose running statistics.  This is the "adoptable" packaging of the
paper's algorithm — the piece a downstream array firmware or volume
manager would embed.

>>> svc = SchedulerService(system, placement)
>>> record = svc.submit([(0, 0), (0, 1)])       # coords on the grid
>>> svc.mark_failed([3])                         # disk 3 died
>>> record = svc.submit([(2, 2)])                # schedules around it
>>> svc.stats().mean_response_ms
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.api import solve
from repro.core.degraded import degrade_problem
from repro.core.problem import RetrievalProblem
from repro.decluster.multisite import MultiSitePlacement
from repro.errors import InfeasibleScheduleError, StorageConfigError
from repro.obs.registry import MetricsRegistry
from repro.storage.system import StorageSystem

__all__ = ["ServiceRecord", "ServiceStats", "SchedulerService"]


@dataclass(frozen=True)
class ServiceRecord:
    """Outcome of one submitted query."""

    arrival_ms: float
    num_buckets: int
    response_time_ms: float
    assignment: dict
    degraded: bool
    decision_time_ms: float


@dataclass
class ServiceStats:
    """Aggregates over the service's lifetime."""

    queries: int = 0
    buckets: int = 0
    total_response_ms: float = 0.0
    max_response_ms: float = 0.0
    total_decision_ms: float = 0.0
    degraded_queries: int = 0
    per_disk_buckets: list[int] = field(default_factory=list)

    @property
    def mean_response_ms(self) -> float:
        return self.total_response_ms / self.queries if self.queries else 0.0

    @property
    def mean_decision_ms(self) -> float:
        return self.total_decision_ms / self.queries if self.queries else 0.0


class SchedulerService:
    """Thread-safe optimal-response-time scheduler over one deployment.

    Parameters
    ----------
    system, placement:
        The hardware and the replicated allocation it hosts.
    solver:
        Registry solver for each query (default: integrated Algorithm 6).
    time_fn:
        Injectable clock returning milliseconds (tests pass a fake);
        defaults to ``time.perf_counter() * 1000``.
    registry:
        Metrics sink for the per-query latency histograms and per-disk
        queue-depth gauges; a private
        :class:`~repro.obs.MetricsRegistry` is created when omitted.
        Always on — the observe path is a few lock-guarded adds per
        query.  Exposed as :attr:`registry` for exporters.
    """

    def __init__(
        self,
        system: StorageSystem,
        placement: MultiSitePlacement,
        *,
        solver: str = "pr-binary",
        time_fn: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
        **solver_kwargs,
    ) -> None:
        if placement.total_disks != system.num_disks:
            raise StorageConfigError(
                f"placement has {placement.total_disks} disks, system "
                f"{system.num_disks}"
            )
        self.system = system
        self.placement = placement
        self.solver = solver
        self.solver_kwargs = solver_kwargs
        if time_fn is None:
            import time as _time

            time_fn = lambda: _time.perf_counter() * 1000.0  # noqa: E731
        self._now = time_fn
        self._lock = threading.Lock()
        self._busy_until = [0.0] * system.num_disks
        self._failed: set[int] = set()
        self._last_arrival = 0.0
        self._stats = ServiceStats(per_disk_buckets=[0] * system.num_disks)
        self.history: list[ServiceRecord] = []

        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_queries = self.registry.counter(
            "repro_service_queries_total", "Queries scheduled."
        )
        self._m_degraded = self.registry.counter(
            "repro_service_degraded_total", "Queries routed around failures."
        )
        self._m_buckets = self.registry.counter(
            "repro_service_buckets_total", "Buckets retrieved."
        )
        self._m_decision = self.registry.histogram(
            "repro_service_decision_ms", "Scheduling decision latency (ms)."
        )
        self._m_response = self.registry.histogram(
            "repro_service_response_ms", "Scheduled query response time (ms)."
        )
        self._m_depth = [
            self.registry.gauge(
                "repro_service_queue_depth_ms",
                "Per-disk busy horizon X_j after the last decision (ms).",
                labels={"disk": str(j)},
            )
            for j in range(system.num_disks)
        ]

    # ------------------------------------------------------------------
    # failure management
    # ------------------------------------------------------------------
    def mark_failed(self, disks: Sequence[int]) -> None:
        """Take disks out of scheduling (e.g. SMART pre-fail, dead path)."""
        with self._lock:
            for d in disks:
                self.system.disk(d)  # validates the id
                self._failed.add(d)

    def mark_repaired(self, disks: Sequence[int]) -> None:
        """Return repaired disks to service (their backlog restarts at 0)."""
        with self._lock:
            for d in disks:
                self._failed.discard(d)
                self._busy_until[d] = 0.0

    @property
    def failed_disks(self) -> frozenset[int]:
        return frozenset(self._failed)

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def submit(
        self,
        bucket_coords: Sequence[tuple[int, int]],
        arrival_ms: float | None = None,
    ) -> ServiceRecord:
        """Schedule one query; updates loads; returns the decision.

        ``arrival_ms`` defaults to the injected clock and must be
        non-decreasing across calls.
        """
        with self._lock:
            now = self._now() if arrival_ms is None else float(arrival_ms)
            if now < self._last_arrival:
                raise StorageConfigError(
                    f"arrivals must be non-decreasing "
                    f"({now} < {self._last_arrival})"
                )
            self._last_arrival = now

            # refresh X_j from the busy horizons
            loads = [max(0.0, u - now) for u in self._busy_until]
            self.system.set_loads(loads)

            problem = RetrievalProblem.from_query(
                self.system, self.placement, list(bucket_coords)
            )
            degraded = False
            if self._failed:
                try:
                    problem = degrade_problem(problem, self._failed)
                    degraded = True
                except InfeasibleScheduleError:
                    raise  # unanswerable: propagate with the bucket named

            schedule = solve(problem, solver=self.solver, **self.solver_kwargs)

            # advance busy horizons of the chosen disks
            counts = schedule.counts_per_disk()
            for j, k in enumerate(counts):
                if k:
                    disk = self.system.disk(j)
                    self._busy_until[j] = (
                        now + loads[j] + k * disk.block_time_ms
                    )
                    self._stats.per_disk_buckets[j] += k

            record = ServiceRecord(
                arrival_ms=now,
                num_buckets=problem.num_buckets,
                response_time_ms=schedule.response_time_ms,
                assignment=schedule.as_bucket_map(),
                degraded=degraded,
                decision_time_ms=schedule.stats.wall_time_s * 1000.0,
            )
            self.history.append(record)
            st = self._stats
            st.queries += 1
            st.buckets += record.num_buckets
            st.total_response_ms += record.response_time_ms
            st.max_response_ms = max(st.max_response_ms, record.response_time_ms)
            st.total_decision_ms += record.decision_time_ms
            if degraded:
                st.degraded_queries += 1
                self._m_degraded.inc()
            self._m_queries.inc()
            self._m_buckets.inc(record.num_buckets)
            self._m_decision.observe(record.decision_time_ms)
            self._m_response.observe(record.response_time_ms)
            for j, gauge in enumerate(self._m_depth):
                gauge.set(max(0.0, self._busy_until[j] - now))
            return record

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A snapshot of the running aggregates."""
        with self._lock:
            return ServiceStats(
                queries=self._stats.queries,
                buckets=self._stats.buckets,
                total_response_ms=self._stats.total_response_ms,
                max_response_ms=self._stats.max_response_ms,
                total_decision_ms=self._stats.total_decision_ms,
                degraded_queries=self._stats.degraded_queries,
                per_disk_buckets=list(self._stats.per_disk_buckets),
            )
