"""Protocol-generic asyncio frame server: handshake, dispatch, drain.

:class:`FrameServer` is the transport half of the RPC front end,
factored out of :class:`~repro.net.server.SchedulerServer` so the
cluster routing proxy (:class:`~repro.cluster.router.RoutingProxy`) can
speak the identical length-prefixed protocol with the identical
graceful-drain discipline.  It owns everything that is not
service-specific:

* accepting connections and the ``hello`` handshake (subclasses set
  :attr:`server_name` and :attr:`ops` for the hello payload);
* the per-connection read loop, tolerant frame decoding, and one task
  per request (many requests in flight per connection);
* the net-layer metrics (connections, requests, errors, latency);
* graceful drain: ``begin_drain()`` stops accepting and rejects new
  work, :meth:`drain` lets in-flight requests finish and respond,
  closes writers, and only then awaits ``wait_closed()`` — on
  Python >= 3.12 ``wait_closed()`` waits for every connection handler,
  and a handler parked in ``read()`` only wakes once its writer is
  closed, so awaiting it earlier hangs the drain forever with a single
  idle client.

Subclasses implement :meth:`_dispatch` (op handling) and may override
:meth:`_finalize_drain` (flushed once every in-flight request has
responded; its return value is what :meth:`drain` returns).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.net.errors import FrameTooLargeError, ProtocolError
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from repro.obs.registry import MetricsRegistry

__all__ = ["ServerConfig", "FrameServer"]

_READ_CHUNK = 1 << 16


@dataclass(frozen=True)
class ServerConfig:
    """Transport and admission policy for a :class:`FrameServer`.

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`FrameServer.port` once started).
    max_inflight:
        Admission-control capacity: scheduling requests running or
        executor-queued at once.  Arrivals beyond it are shed with
        ``OVERLOADED`` rather than queued.
    retry_after_ms:
        The hint attached to shed responses; clients use it as a floor
        for their backoff.
    max_frame_bytes:
        Per-frame size limit enforced on both directions.
    registry:
        Sink for the server's own connection/request metrics; ``None``
        creates a private one.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 32
    retry_after_ms: float = 50.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    registry: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.retry_after_ms < 0:
            raise ValueError(
                f"retry_after_ms must be >= 0, got {self.retry_after_ms}"
            )


class FrameServer:
    """Serve the length-prefixed JSON protocol; subclasses dispatch ops."""

    #: reported in the ``hello`` response
    server_name = "repro-frame-server"
    #: advertised op set (subclasses override)
    ops: frozenset[str] = frozenset({"hello"})

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.registry = (
            self.config.registry
            if self.config.registry is not None
            else MetricsRegistry()
        )

        self._server: asyncio.AbstractServer | None = None
        self._inflight = 0
        self._draining = False
        self._drain_requested = asyncio.Event()
        self._drained = asyncio.Event()
        self._request_tasks: set[asyncio.Task[None]] = set()
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        # control-plane ops (health/stats/metrics/mark_*) block on the
        # service's solve lock, so they must leave the event loop — and
        # they get their own small pool because the default executor can
        # be saturated by up to ``max_inflight`` submits
        self._control_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-net-control"
        )

        self._m_conns = self.registry.counter(
            "repro_net_connections_total", "Client connections accepted."
        )
        self._m_open = self.registry.gauge(
            "repro_net_connections_open", "Client connections currently open."
        )
        self._m_requests = self.registry.counter(
            "repro_net_requests_total", "Requests handled (all ops)."
        )
        self._m_errors = self.registry.counter(
            "repro_net_errors_total", "Error responses returned."
        )
        self._m_shed = self.registry.counter(
            "repro_net_shed_total", "Submits rejected by admission control."
        )
        self._m_inflight = self.registry.gauge(
            "repro_net_inflight", "Scheduling requests currently in flight."
        )
        self._m_request_ms = self.registry.histogram(
            "repro_net_request_ms", "Server-side request handling latency (ms)."
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    def begin_drain(self) -> None:
        """Stop accepting; reject new work; let in-flight finish.

        Callable from the event loop (signal handlers, the ``shutdown``
        RPC).  Idempotent.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        self._drain_requested.set()

    async def drain(self) -> Any:
        """Complete a graceful shutdown; returns ``_finalize_drain()``."""
        self.begin_drain()
        # in-flight requests finish and their responses are written
        while self._request_tasks:
            await asyncio.gather(
                *tuple(self._request_tasks), return_exceptions=True
            )
        # then the connections themselves are torn down (a live read loop
        # may still have spawned late requests — keep awaiting both sets)
        for writer in tuple(self._writers):
            writer.close()
        while self._conn_tasks or self._request_tasks:
            await asyncio.gather(
                *tuple(self._conn_tasks),
                *tuple(self._request_tasks),
                return_exceptions=True,
            )
        # wait_closed() must come LAST: on Python >= 3.12 it waits for
        # every connection-handler task, and a handler parked in read()
        # only wakes once its writer is closed above — awaiting it first
        # hangs the drain forever with a single idle connected client
        if self._server is not None:
            await self._server.wait_closed()
        self._control_executor.shutdown(wait=True)
        result = await self._finalize_drain()
        self._drained.set()
        return result

    async def _finalize_drain(self) -> Any:
        """Flush final state once all in-flight work has responded."""
        return None

    async def serve_until_drained(self) -> Any:
        """Run until someone calls :meth:`begin_drain`, then drain."""
        await self._drain_requested.wait()
        return await self.drain()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        self._m_conns.inc()
        self._m_open.inc()
        decoder = FrameDecoder(self.config.max_frame_bytes)
        write_lock = asyncio.Lock()
        try:
            pipelined = await self._handshake(reader, writer, decoder, write_lock)
            if pipelined is not None:
                for msg in pipelined:
                    self._spawn_request(msg, writer, write_lock)
                await self._read_loop(reader, writer, decoder, write_lock)
        finally:
            self._writers.discard(writer)
            self._m_open.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
        write_lock: asyncio.Lock,
    ) -> list[dict[str, Any]] | None:
        """Expect ``hello`` first; returns pipelined follow-ups or None."""
        msgs: list[dict[str, Any]] = []
        trailing_errors: list[ProtocolError] = []
        while not msgs:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return None
            try:
                items = decoder.feed(data)
            except FrameTooLargeError as exc:
                await self._send(
                    writer,
                    write_lock,
                    error_response(None, "FRAME_TOO_LARGE", str(exc)),
                )
                return None
            for item in items:
                if not isinstance(item, ProtocolError):
                    msgs.append(item)
                elif not msgs:
                    # malformed before any hello: reject and close
                    await self._send(
                        writer,
                        write_lock,
                        error_response(None, "BAD_REQUEST", str(item)),
                    )
                    return None
                else:
                    # malformed frame pipelined *behind* a valid hello:
                    # answer the handshake first, then the error — the
                    # connection survives, exactly as in _read_loop
                    trailing_errors.append(item)
        try:
            req_id, op, params = parse_request(msgs[0])
        except ProtocolError as exc:
            await self._send(
                writer, write_lock, error_response(None, "BAD_REQUEST", str(exc))
            )
            return None
        if op != "hello":
            await self._send(
                writer,
                write_lock,
                error_response(
                    req_id, "BAD_REQUEST", "first request must be 'hello'"
                ),
            )
            return None
        version = params.get("version")
        if version != PROTOCOL_VERSION:
            await self._send(
                writer,
                write_lock,
                error_response(
                    req_id,
                    "UNSUPPORTED_VERSION",
                    f"server speaks protocol {PROTOCOL_VERSION}, "
                    f"client sent {version!r}",
                ),
            )
            return None
        await self._send(
            writer,
            write_lock,
            ok_response(
                req_id,
                {
                    "version": PROTOCOL_VERSION,
                    "server": self.server_name,
                    "max_frame_bytes": self.config.max_frame_bytes,
                    "ops": sorted(self.ops),
                },
            ),
        )
        for err in trailing_errors:
            self._m_errors.inc()
            await self._send(
                writer, write_lock, error_response(None, "BAD_REQUEST", str(err))
            )
        return msgs[1:]

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
        write_lock: asyncio.Lock,
    ) -> None:
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return
            try:
                items = decoder.feed(data)
            except FrameTooLargeError as exc:
                # cannot resync a stream after an oversized header:
                # report, then close this connection
                self._m_errors.inc()
                await self._send(
                    writer,
                    write_lock,
                    error_response(None, "FRAME_TOO_LARGE", str(exc)),
                )
                return
            for item in items:
                if isinstance(item, ProtocolError):
                    # frame boundary was sound, payload was not: the
                    # connection survives
                    self._m_errors.inc()
                    await self._send(
                        writer,
                        write_lock,
                        error_response(None, "BAD_REQUEST", str(item)),
                    )
                else:
                    self._spawn_request(item, writer, write_lock)

    def _spawn_request(
        self,
        msg: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        task = asyncio.create_task(self._handle_request(msg, writer, write_lock))
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_request(
        self,
        msg: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        t0 = time.perf_counter()
        try:
            req_id, op, params = parse_request(msg)
        except ProtocolError as exc:
            self._m_errors.inc()
            await self._send(
                writer, write_lock, error_response(None, "BAD_REQUEST", str(exc))
            )
            return
        try:
            response = await self._dispatch(req_id, op, params)
        except Exception as exc:  # noqa: BLE001 - fault barrier per request
            response = error_response(
                req_id, "INTERNAL", f"{type(exc).__name__}: {exc}"
            )
        self._m_requests.inc()
        if response.get("ok") is not True:
            self._m_errors.inc()
        self._m_request_ms.observe((time.perf_counter() - t0) * 1000.0)
        await self._send(writer, write_lock, response)

    async def _dispatch(
        self, req_id: int, op: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        raise NotImplementedError  # pragma: no cover - subclass contract

    # ------------------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: dict[str, Any],
    ) -> None:
        frame = encode_frame(
            payload, max_frame_bytes=self.config.max_frame_bytes
        )
        try:
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer went away mid-response; the read loop will notice
