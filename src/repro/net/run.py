"""Server runners: signal-aware foreground serve and a thread-hosted server.

:func:`serve` is what ``repro serve`` runs: start a
:class:`~repro.net.server.SchedulerServer`, install SIGTERM/SIGINT
handlers that trigger a graceful drain, and block until the drain
completes — in-flight requests finish, stats are flushed, the process
exits 0.

:class:`BackgroundServer` hosts the same server on a daemon thread with
a private event loop, for tests and benchmarks that need a live
localhost endpoint next to synchronous code.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from typing import Callable

from repro.net.server import SchedulerServer, ServerConfig
from repro.service.scheduler import SchedulerService
from repro.service.sharded import ShardedSchedulerService
from repro.service.stats import ServiceStats

__all__ = ["serve", "BackgroundServer"]

Service = SchedulerService | ShardedSchedulerService


async def serve(
    service: Service,
    config: ServerConfig | None = None,
    *,
    install_signal_handlers: bool = True,
    ready: Callable[[SchedulerServer], None] | None = None,
) -> ServiceStats:
    """Serve until SIGTERM/SIGINT (or a ``shutdown`` RPC) drains us.

    ``ready`` is invoked once the socket is bound (e.g. to print the
    chosen port).  Returns the final stats snapshot flushed by the
    drain.
    """
    server = SchedulerServer(service, config)
    await server.start()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.begin_drain)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loops
    try:
        if ready is not None:
            ready(server)
        return await server.serve_until_drained()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)


class BackgroundServer:
    """A :class:`SchedulerServer` on a daemon thread (tests/benchmarks).

    >>> with BackgroundServer(service) as bg:
    ...     client = SchedulerClient(bg.host, bg.port)
    ...     ...
    ... # leaving the block drains gracefully and joins the thread

    The wrapped server object is exposed as :attr:`server`; interact
    with it from the host thread only via :meth:`call_in_loop` (the
    event loop is not thread-safe).
    """

    def __init__(
        self,
        service: Service,
        config: ServerConfig | None = None,
    ) -> None:
        self.server = SchedulerServer(service, config)
        self.final_stats: ServiceStats | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    def start(self, timeout_s: float = 10.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-net-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("background server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"background server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _thread_main(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self.final_stats = await self.server.serve_until_drained()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def call_in_loop(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the server's event loop thread."""
        if self._loop is None:
            raise RuntimeError("background server is not running")
        self._loop.call_soon_threadsafe(fn)

    def request_drain(self) -> None:
        """Trigger a graceful drain without blocking."""
        self.call_in_loop(self.server.begin_drain)

    def stop(self, timeout_s: float = 30.0) -> ServiceStats | None:
        """Drain gracefully and join the server thread."""
        if self._thread is None:
            return None
        if self._thread.is_alive():
            self.request_drain()
        self._thread.join(timeout_s)
        if self._thread.is_alive():  # pragma: no cover - watchdog
            raise RuntimeError("background server did not drain in time")
        return self.final_stats

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
