"""Network layer: the asyncio RPC front end over the scheduler service.

The serving edge for the reproduction — a TCP server speaking a
length-prefixed JSON protocol in front of
:class:`~repro.service.SchedulerService` /
:class:`~repro.service.ShardedSchedulerService`, with bounded in-flight
admission control (explicit ``OVERLOADED`` load shedding instead of
unbounded queueing), graceful drain on SIGTERM or the ``shutdown`` RPC,
and sync + async client libraries with pooling, deadlines and
jittered-backoff retry.  See ``docs/API.md`` ("Network service") for
the wire format and error-code contract.

>>> from repro.net import BackgroundServer, SchedulerClient
>>> with BackgroundServer(service) as bg:
...     with SchedulerClient(bg.host, bg.port) as client:
...         client.submit([(0, 0), (1, 1)]).response_time_ms
"""

from repro.net.client import AsyncSchedulerClient, RetryPolicy, SchedulerClient
from repro.net.errors import (
    BadRequestError,
    ConnectError,
    ConnectionClosedError,
    DeadlineExceededError,
    FrameTooLargeError,
    HandshakeError,
    InvalidQueryError,
    NetError,
    OverloadedError,
    ProtocolError,
    RemoteError,
    ShuttingDownError,
    UnknownOpError,
    UnsupportedVersionError,
)
from repro.net.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, FrameDecoder
from repro.net.run import BackgroundServer, serve
from repro.net.server import OPS, SchedulerServer, ServerConfig

__all__ = [
    "AsyncSchedulerClient",
    "BackgroundServer",
    "BadRequestError",
    "ConnectError",
    "ConnectionClosedError",
    "DeadlineExceededError",
    "FrameDecoder",
    "FrameTooLargeError",
    "HandshakeError",
    "InvalidQueryError",
    "MAX_FRAME_BYTES",
    "NetError",
    "OPS",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "RetryPolicy",
    "SchedulerClient",
    "SchedulerServer",
    "ServerConfig",
    "ShuttingDownError",
    "UnknownOpError",
    "UnsupportedVersionError",
    "serve",
]
