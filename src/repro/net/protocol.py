"""Wire protocol: length-prefixed JSON frames and typed envelopes.

Frame format
------------
Each message is one *frame*: a 4-byte big-endian unsigned length header
followed by that many bytes of UTF-8 JSON encoding a single object.  A
header declaring more than the configured maximum is rejected before the
body is buffered (:class:`~repro.net.errors.FrameTooLargeError`), which
bounds per-connection memory.

Envelopes
---------
Requests carry a connection-unique integer ``id`` so responses can be
matched out of order (several requests may be in flight on one
connection)::

    {"id": 7, "op": "submit", "params": {...}}

Responses echo the id and carry either a result or a typed error::

    {"id": 7, "ok": true,  "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "OVERLOADED",
                                     "message": "...",
                                     "retry_after_ms": 50.0}}

An error whose ``id`` is ``null`` reports a frame the server could not
attribute to a request (e.g. malformed JSON).

Handshake
---------
The first request on a connection must be ``hello`` with the client's
``version``; the server answers with its own version and limits, or an
``UNSUPPORTED_VERSION`` error and closes.  Everything after the
handshake is ordinary requests.

The module also carries the value codecs — queries and
:class:`~repro.service.ServiceRecord` outcomes to and from plain JSON
objects — so the server and both clients share one source of truth.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.net.errors import (
    FrameTooLargeError,
    NonIntegralFieldError,
    ProtocolError,
)
from repro.service.stats import ServiceRecord
from repro.workloads.queries import ArbitraryQuery, RangeQuery

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "HEADER_BYTES",
    "ERROR_CODES",
    "FrameDecoder",
    "encode_frame",
    "make_request",
    "ok_response",
    "error_response",
    "parse_request",
    "query_to_wire",
    "query_from_wire",
    "record_to_wire",
    "record_from_wire",
]

#: bump on incompatible envelope/codec changes; the handshake enforces it
PROTOCOL_VERSION = 1

#: default per-frame size limit (1 MiB) — a schedule for a full grid of
#: buckets is a few tens of KiB, so this leaves ample headroom
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")

#: length of the frame header in bytes
HEADER_BYTES = _HEADER.size

#: every error code a server may place in an error envelope
ERROR_CODES = frozenset(
    {
        "BAD_REQUEST",
        "UNSUPPORTED_VERSION",
        "UNKNOWN_OP",
        "INVALID_QUERY",
        "OVERLOADED",
        "SHUTTING_DOWN",
        "FRAME_TOO_LARGE",
        "INTERNAL",
    }
)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(
    payload: dict[str, Any], *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one envelope as a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser tolerant of arbitrary read boundaries.

    Feed it whatever the transport produced — half a header, three and a
    half frames — and it returns every message that became complete.  A
    syntactically complete frame whose payload is not a JSON object
    yields a :class:`~repro.net.errors.ProtocolError` *item* (the broken
    frame is consumed, so the connection can survive and answer with a
    typed error).  An oversized header raises
    :class:`~repro.net.errors.FrameTooLargeError` immediately: the
    stream cannot be resynchronized and must be closed.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[dict[str, Any] | ProtocolError]:
        """Absorb ``data``; return completed messages in arrival order."""
        self._buf += data
        out: list[dict[str, Any] | ProtocolError] = []
        while True:
            if len(self._buf) < HEADER_BYTES:
                return out
            (length,) = _HEADER.unpack_from(self._buf)
            if length > self.max_frame_bytes:
                raise FrameTooLargeError(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if len(self._buf) < HEADER_BYTES + length:
                return out
            body = bytes(self._buf[HEADER_BYTES : HEADER_BYTES + length])
            del self._buf[: HEADER_BYTES + length]
            out.append(self._parse_body(body))

    @staticmethod
    def _parse_body(body: bytes) -> dict[str, Any] | ProtocolError:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return ProtocolError(f"frame payload is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            return ProtocolError(
                f"frame payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return payload


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def make_request(
    req_id: int, op: str, params: dict[str, Any] | None = None
) -> dict[str, Any]:
    return {"id": req_id, "op": op, "params": params or {}}


def ok_response(req_id: int | None, result: Any) -> dict[str, Any]:
    return {"id": req_id, "ok": True, "result": result}


def error_response(
    req_id: int | None,
    code: str,
    message: str,
    *,
    retry_after_ms: float | None = None,
) -> dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = float(retry_after_ms)
    return {"id": req_id, "ok": False, "error": error}


def parse_request(msg: dict[str, Any]) -> tuple[int, str, dict[str, Any]]:
    """Validate a request envelope; returns ``(id, op, params)``."""
    req_id = msg.get("id")
    if not isinstance(req_id, int) or isinstance(req_id, bool) or req_id < 0:
        raise ProtocolError(f"request id must be a non-negative int: {req_id!r}")
    op = msg.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(f"request op must be a non-empty string: {op!r}")
    params = msg.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            f"request params must be an object, got {type(params).__name__}"
        )
    return req_id, op, params


# ----------------------------------------------------------------------
# value codecs
# ----------------------------------------------------------------------
def _exact_wire_int(v: Any, what: str) -> int:
    """Decode a wire number that must be an exact integer.

    Accepts ints and integral floats (some JSON encoders emit ``3.0``);
    fractional numerics raise :class:`NonIntegralFieldError` — counts and
    coordinates are never silently truncated — and non-numerics raise
    plain :class:`ProtocolError`.
    """
    if isinstance(v, int) and not isinstance(v, bool):
        return v
    if isinstance(v, float):
        as_int = int(v)
        if as_int == v:
            return as_int
        raise NonIntegralFieldError(
            f"{what} must be integral, got non-integral number {v!r}"
        )
    raise ProtocolError(f"{what} must be an int: {v!r}")


def _coord_pairs(raw: Any, what: str) -> list[tuple[int, int]]:
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(f"{what} must be a non-empty list of [i, j] pairs")
    coords: list[tuple[int, int]] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ProtocolError(f"{what} entries must be [i, j] int pairs")
        coords.append(
            (
                _exact_wire_int(item[0], f"{what} entry"),
                _exact_wire_int(item[1], f"{what} entry"),
            )
        )
    return coords


def query_to_wire(
    query: RangeQuery | ArbitraryQuery | Any,
) -> dict[str, Any]:
    """Encode any ``submit``-able query as a JSON object."""
    if isinstance(query, RangeQuery):
        return {
            "kind": "range",
            "i": query.i,
            "j": query.j,
            "r": query.r,
            "c": query.c,
            "grid_size": query.grid_size,
        }
    if isinstance(query, ArbitraryQuery):
        return {
            "kind": "arbitrary",
            "coords": [[i, j] for (i, j) in query.coords],
            "grid_size": query.grid_size,
        }
    return {
        "kind": "coords",
        "coords": [[int(i), int(j)] for (i, j) in query],
    }


def _wire_int(obj: dict[str, Any], key: str, what: str) -> int:
    return _exact_wire_int(obj.get(key), f"{what} field {key!r}")


def query_from_wire(
    obj: Any,
) -> list[tuple[int, int]] | RangeQuery | ArbitraryQuery:
    """Decode a wire query; raises ProtocolError on malformed input.

    Semantic validation (corner outside the grid, duplicate buckets)
    stays with the query constructors / the scheduler, which raise the
    library's own :class:`~repro.errors.WorkloadError` — the server maps
    those to ``INVALID_QUERY`` rather than ``BAD_REQUEST``.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"query must be an object, got {type(obj).__name__}")
    kind = obj.get("kind")
    if kind == "coords":
        return _coord_pairs(obj.get("coords"), "coords query")
    if kind == "range":
        return RangeQuery(
            _wire_int(obj, "i", "range query"),
            _wire_int(obj, "j", "range query"),
            _wire_int(obj, "r", "range query"),
            _wire_int(obj, "c", "range query"),
            _wire_int(obj, "grid_size", "range query"),
        )
    if kind == "arbitrary":
        return ArbitraryQuery(
            tuple(_coord_pairs(obj.get("coords"), "arbitrary query")),
            _wire_int(obj, "grid_size", "arbitrary query"),
        )
    raise ProtocolError(f"unknown query kind {kind!r}")


def _label_to_wire(label: Any) -> Any:
    if isinstance(label, tuple):
        return list(label)
    return label


def _label_from_wire(label: Any) -> Any:
    if isinstance(label, list):
        return tuple(label)
    return label


def record_to_wire(record: ServiceRecord) -> dict[str, Any]:
    """Encode a scheduling outcome for the response envelope."""
    return {
        "arrival_ms": record.arrival_ms,
        "num_buckets": record.num_buckets,
        "response_time_ms": record.response_time_ms,
        "assignment": [
            [_label_to_wire(label), disk]
            for label, disk in record.assignment.items()
        ],
        "degraded": record.degraded,
        "decision_time_ms": record.decision_time_ms,
        "query": query_to_wire(record.query),
        "cache_hit": record.cache_hit,
        "batch_size": record.batch_size,
    }


def record_from_wire(obj: Any) -> ServiceRecord:
    """Decode a ``submit`` result back into a ServiceRecord."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"record must be an object, got {type(obj).__name__}"
        )
    try:
        raw_assignment = obj["assignment"]
        if not isinstance(raw_assignment, list):
            raise ProtocolError("record assignment must be a list of pairs")
        assignment = {
            _label_from_wire(label): disk for label, disk in raw_assignment
        }
        return ServiceRecord(
            arrival_ms=float(obj["arrival_ms"]),
            num_buckets=_wire_int(obj, "num_buckets", "record"),
            response_time_ms=float(obj["response_time_ms"]),
            assignment=assignment,
            degraded=bool(obj["degraded"]),
            decision_time_ms=float(obj["decision_time_ms"]),
            query=query_from_wire(obj["query"]),
            cache_hit=bool(obj["cache_hit"]),
            batch_size=_wire_int(obj, "batch_size", "record"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed record envelope: {exc}") from exc
