"""Typed error hierarchy for the network layer.

Every failure a caller can see derives from :class:`NetError` (itself a
:class:`~repro.errors.ReproError`), split along two axes:

* *where* it happened — locally (:class:`ProtocolError`,
  :class:`ConnectError`, :class:`ConnectionClosedError`,
  :class:`DeadlineExceededError`) versus reported by the server as a
  typed error envelope (:class:`RemoteError` and subclasses, one per
  wire error code);
* *whether retrying can help* — the ``transient`` class attribute drives
  the client's jittered-exponential-backoff retry loop.  Load shedding
  (:class:`OverloadedError`) and connection loss are transient; a
  malformed request or an exceeded deadline is not.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "NetError",
    "ProtocolError",
    "NonIntegralFieldError",
    "FrameTooLargeError",
    "HandshakeError",
    "ConnectError",
    "ConnectionClosedError",
    "DeadlineExceededError",
    "RemoteError",
    "BadRequestError",
    "UnknownOpError",
    "InvalidQueryError",
    "OverloadedError",
    "ShuttingDownError",
    "UnsupportedVersionError",
    "FrameRejectedError",
    "remote_error_from_wire",
]


class NetError(ReproError):
    """Base class for every network-layer failure.

    ``transient`` marks errors where a retry (possibly against a fresh
    connection) has a reasonable chance of succeeding; the client's
    retry policy only ever retries transient errors.
    """

    transient: bool = False


class ProtocolError(NetError):
    """The byte stream or an envelope violates the wire protocol."""


class NonIntegralFieldError(ProtocolError):
    """A numeric wire field that must be integral carries a fraction.

    Counts and coordinates (bucket counts, grid indices, shard ids) are
    exact integers end to end under the integer kernel contract; a value
    like ``2.5`` is rejected at decode time instead of being silently
    truncated.  The server maps this to an ``INVALID_QUERY`` envelope —
    the frame and request were well-formed, the *value* was not — rather
    than ``BAD_REQUEST``.
    """


class FrameTooLargeError(ProtocolError):
    """A frame header declares a body beyond the configured maximum."""


class HandshakeError(ProtocolError):
    """The protocol-version handshake failed."""


class ConnectError(NetError):
    """A TCP connection to the server could not be established."""

    transient = True


class ConnectionClosedError(NetError):
    """The connection dropped while a request was outstanding."""

    transient = True


class DeadlineExceededError(NetError):
    """The per-request deadline elapsed before a response arrived."""


class RemoteError(NetError):
    """An error envelope returned by the server.

    Attributes
    ----------
    code:
        The wire error code (see :mod:`repro.net.protocol`).
    retry_after_ms:
        Optional server hint: wait at least this long before retrying.
        Only load-shed (``OVERLOADED``) responses carry it today.
    """

    code: str = "INTERNAL"

    def __init__(
        self, message: str, *, retry_after_ms: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class BadRequestError(RemoteError):
    """The server could not parse the request envelope."""

    code = "BAD_REQUEST"


class UnknownOpError(RemoteError):
    """The requested operation does not exist."""

    code = "UNKNOWN_OP"


class InvalidQueryError(RemoteError):
    """The query was well-formed on the wire but rejected by the scheduler."""

    code = "INVALID_QUERY"


class OverloadedError(RemoteError):
    """Admission control shed the request; retry after the hinted delay."""

    code = "OVERLOADED"
    transient = True


class ShuttingDownError(RemoteError):
    """The server is draining and no longer admits new work."""

    code = "SHUTTING_DOWN"


class UnsupportedVersionError(RemoteError):
    """Client and server disagree on the protocol version."""

    code = "UNSUPPORTED_VERSION"


class FrameRejectedError(RemoteError):
    """The server rejected a frame as oversized.

    The remote twin of the local :class:`FrameTooLargeError`: that one
    means *we* saw an oversized header on our own socket, this one means
    the *server* reported ours over the wire before closing.  Not
    transient — resending the same frame can only be rejected again.
    """

    code = "FRAME_TOO_LARGE"


#: wire error code -> exception class raised client-side
_REMOTE_BY_CODE: dict[str, type[RemoteError]] = {
    cls.code: cls
    for cls in (
        BadRequestError,
        UnknownOpError,
        InvalidQueryError,
        OverloadedError,
        ShuttingDownError,
        UnsupportedVersionError,
        FrameRejectedError,
    )
}


def remote_error_from_wire(error: object) -> RemoteError:
    """Rehydrate a typed exception from a response's ``error`` object.

    Unknown or missing codes fall back to the :class:`RemoteError` base
    (code ``INTERNAL``), so a newer server cannot crash an older client.
    """
    if not isinstance(error, dict):
        return RemoteError("malformed error envelope")
    code = str(error.get("code", "INTERNAL"))
    message = str(error.get("message", ""))
    retry_raw = error.get("retry_after_ms")
    retry_after = (
        float(retry_raw) if isinstance(retry_raw, (int, float)) else None
    )
    cls = _REMOTE_BY_CODE.get(code, RemoteError)
    exc = cls(message, retry_after_ms=retry_after)
    if cls is RemoteError:
        exc.code = code
    return exc
