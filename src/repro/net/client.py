"""Sync and async clients for the scheduler RPC service.

:class:`AsyncSchedulerClient` is the native asyncio implementation: a
small connection pool, one background reader task per connection
dispatching responses to per-request futures (so many requests can be in
flight on one connection), an overall per-request deadline, and retry
with jittered exponential backoff on *transient* failures — load-shed
(``OVERLOADED``, honouring the server's ``retry_after_ms`` hint as a
backoff floor), refused connects, and — for idempotent ops only —
dropped connections.  ``submit`` is at-most-once: a connection lost with
the request outstanding raises instead of re-sending, since the server
may have already executed the solve and a blind retry would schedule
the query twice.  Non-transient errors (bad requests, invalid queries,
exceeded deadlines) surface immediately as the typed exceptions of
:mod:`repro.net.errors`.

:class:`SchedulerClient` wraps the async client for synchronous callers:
it runs a private event loop on a daemon thread and proxies every call
through it, so the two clients cannot drift apart.

>>> with SchedulerClient("127.0.0.1", port) as client:
...     record = client.submit([(0, 0), (1, 1)], deadline_ms=250.0)
...     record.response_time_ms
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Coroutine, Sequence, TypeVar

from repro.net.errors import (
    ConnectError,
    ConnectionClosedError,
    DeadlineExceededError,
    HandshakeError,
    NetError,
    ProtocolError,
    RemoteError,
    remote_error_from_wire,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    make_request,
    query_to_wire,
    record_from_wire,
)
from repro.service.stats import ServiceRecord
from repro.workloads.queries import ArbitraryQuery, RangeQuery

__all__ = ["RetryPolicy", "AsyncSchedulerClient", "SchedulerClient"]

_T = TypeVar("_T")

_READ_CHUNK = 1 << 16

#: ops safe to re-send after a *dropped connection*, where the client
#: cannot know whether the server executed the request before the link
#: died.  ``submit`` is deliberately absent: it advances disk
#: busy-horizons and appends to stats/history, so re-sending it could
#: schedule the same query twice and silently skew the response-time
#: measurements.  (Shed ``OVERLOADED`` responses are different — the
#: server proved it did nothing — so submit still retries those.)
_IDEMPOTENT_OPS = frozenset(
    {
        "hello",
        "health",
        "stats",
        "metrics",
        "mark_failed",
        "mark_repaired",
        "shutdown",
    }
)

QueryLike = Sequence[tuple[int, int]] | RangeQuery | ArbitraryQuery

_UNSET: Any = object()


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient errors.

    Attempt ``k`` (0-based) failing transiently sleeps
    ``base_backoff_ms * multiplier**k`` capped at ``max_backoff_ms``,
    with the top ``jitter`` fraction of that value uniformly randomized
    (decorrelating clients that were shed together), floored at the
    server's ``retry_after_ms`` hint when one was given.
    """

    attempts: int = 4
    base_backoff_ms: float = 10.0
    multiplier: float = 2.0
    max_backoff_ms: float = 1000.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_ms(
        self,
        attempt: int,
        rng: random.Random,
        *,
        floor_ms: float | None = None,
    ) -> float:
        raw = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.multiplier**attempt,
        )
        jittered = raw * (1.0 - self.jitter) + rng.random() * raw * self.jitter
        if floor_ms is not None:
            jittered = max(jittered, floor_ms)
        return jittered


class _AsyncConnection:
    """One handshaken connection multiplexing requests by id."""

    def __init__(self, host: str, port: int, max_frame_bytes: int) -> None:
        self._host = host
        self._port = port
        self._max_frame_bytes = max_frame_bytes
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task[None] | None = None
        self._pending: dict[int, asyncio.Future[Any]] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._closed = False
        self.server_info: dict[str, Any] = {}

    @property
    def closed(self) -> bool:
        return self._closed

    async def open(self, handshake_timeout_s: float = 10.0) -> None:
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        except OSError as exc:
            raise ConnectError(
                f"cannot connect to {self._host}:{self._port}: {exc}"
            ) from exc
        self._read_task = asyncio.create_task(self._read_loop())
        try:
            info = await self.call(
                "hello", {"version": PROTOCOL_VERSION}, handshake_timeout_s
            )
        except RemoteError as exc:
            await self.close()
            raise HandshakeError(f"handshake rejected: {exc}") from exc
        except NetError:
            await self.close()
            raise
        if not isinstance(info, dict) or info.get("version") != PROTOCOL_VERSION:
            await self.close()
            raise HandshakeError(f"unexpected hello response: {info!r}")
        self.server_info = info

    async def call(
        self, op: str, params: dict[str, Any], timeout_s: float | None
    ) -> Any:
        if self._closed or self._writer is None:
            raise ConnectionClosedError("connection is closed")
        req_id = self._next_id
        self._next_id += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Any] = loop.create_future()
        self._pending[req_id] = future
        frame = encode_frame(
            make_request(req_id, op, params),
            max_frame_bytes=self._max_frame_bytes,
        )
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(req_id, None)
            await self.close()
            raise ConnectionClosedError(
                f"connection lost while sending {op!r}: {exc}"
            ) from exc
        try:
            if timeout_s is None:
                return await future
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"{op!r} deadline exceeded after {timeout_s * 1000:.0f} ms"
                if timeout_s is not None
                else f"{op!r} deadline exceeded"
            ) from None
        finally:
            self._pending.pop(req_id, None)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = FrameDecoder(self._max_frame_bytes)
        error: NetError | None = None
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    break
                for item in decoder.feed(data):
                    if isinstance(item, ProtocolError):
                        raise item
                    self._dispatch(item)
        except NetError as exc:
            error = exc
        except (ConnectionError, OSError) as exc:
            error = ConnectionClosedError(f"connection lost: {exc}")
        finally:
            self._closed = True
            failure = error or ConnectionClosedError(
                "connection closed by server"
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()

    def _dispatch(self, msg: dict[str, Any]) -> None:
        req_id = msg.get("id")
        if req_id is None:
            # a server-side framing complaint not tied to any request
            # (we never send malformed frames, so just surface loudly)
            raise ProtocolError(
                f"server reported a connection-level error: "
                f"{msg.get('error')!r}"
            )
        future = self._pending.get(req_id) if isinstance(req_id, int) else None
        if future is None or future.done():
            return  # response to an abandoned (deadline-exceeded) request
        if msg.get("ok") is True:
            future.set_result(msg.get("result"))
        else:
            future.set_exception(remote_error_from_wire(msg.get("error")))

    async def close(self) -> None:
        self._closed = True
        if self._read_task is not None and not self._read_task.done():
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, NetError):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class AsyncSchedulerClient:
    """Asyncio client with pooling, deadlines and transient-error retry.

    Parameters
    ----------
    host, port:
        Server address.
    pool_size:
        Connections kept open; requests rotate round-robin across them
        (each connection already multiplexes, so this mainly spreads
        framing/drain work).
    deadline_ms:
        Default overall per-request deadline (connect + all retries +
        backoff sleeps); ``None`` waits indefinitely.
    retry:
        The :class:`RetryPolicy`; only transient errors are retried.
    seed:
        Seeds the backoff jitter for reproducible tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 1,
        deadline_ms: float | None = None,
        retry: RetryPolicy | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        seed: int | None = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self._host = host
        self._port = port
        self._pool: list[_AsyncConnection | None] = [None] * pool_size
        self._rr = 0
        self._deadline_ms = deadline_ms
        self._retry = retry if retry is not None else RetryPolicy()
        self._max_frame_bytes = max_frame_bytes
        self._rng = random.Random(seed)
        self._connect_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    async def _connection(self, slot: int) -> _AsyncConnection:
        conn = self._pool[slot]
        if conn is not None and not conn.closed:
            return conn
        async with self._connect_lock:
            conn = self._pool[slot]
            if conn is not None and not conn.closed:
                return conn
            fresh = _AsyncConnection(
                self._host, self._port, self._max_frame_bytes
            )
            await fresh.open()
            self._pool[slot] = fresh
            return fresh

    async def request(
        self,
        op: str,
        params: dict[str, Any] | None = None,
        *,
        deadline_ms: float | None = _UNSET,
    ) -> Any:
        """One RPC with deadline + retry; returns the ``result`` payload.

        Only *transient* errors retry, and a lost connection is only
        transient for idempotent ops: a ``submit`` whose connection died
        mid-request surfaces :class:`ConnectionClosedError` instead of
        re-sending (at-most-once), because the server may have already
        executed the solve.  Refused connects (the request never left)
        and ``OVERLOADED`` sheds (the server did nothing) retry for
        every op.
        """
        budget_ms = (
            self._deadline_ms if deadline_ms is _UNSET else deadline_ms
        )
        deadline_at = (
            None if budget_ms is None else time.monotonic() + budget_ms / 1000.0
        )
        attempt = 0
        while True:
            remaining_s: float | None = None
            if deadline_at is not None:
                remaining_s = deadline_at - time.monotonic()
                if remaining_s <= 0:
                    raise DeadlineExceededError(
                        f"{op!r} deadline of {budget_ms:.0f} ms exhausted "
                        f"after {attempt} attempt(s)"
                    )
            try:
                slot = self._rr % len(self._pool)
                self._rr += 1
                conn = await self._connection(slot)
                return await conn.call(op, params or {}, remaining_s)
            except NetError as exc:
                # a dropped connection is ambiguous — the server may have
                # executed the request before the link died — so only
                # idempotent ops may re-send after one
                ambiguous = (
                    isinstance(exc, ConnectionClosedError)
                    and op not in _IDEMPOTENT_OPS
                )
                if (
                    not exc.transient
                    or ambiguous
                    or attempt + 1 >= self._retry.attempts
                ):
                    raise
                floor = (
                    exc.retry_after_ms
                    if isinstance(exc, RemoteError)
                    else None
                )
                delay_s = (
                    self._retry.backoff_ms(
                        attempt, self._rng, floor_ms=floor
                    )
                    / 1000.0
                )
                if remaining_s is not None and delay_s >= remaining_s:
                    raise  # no budget left to wait out the backoff
                await asyncio.sleep(delay_s)
                attempt += 1

    # ------------------------------------------------------------------
    # typed operations
    # ------------------------------------------------------------------
    async def submit(
        self,
        query: QueryLike,
        *,
        shard: int | None = None,
        arrival_ms: float | None = None,
        deadline_ms: float | None = _UNSET,
        admission_deadline_ms: float | None = None,
    ) -> ServiceRecord:
        """Submit one query.

        ``deadline_ms`` bounds the *RPC* (client-side budget across
        retries); ``admission_deadline_ms`` rides the wire to the
        scheduler as a *response-time* admission target — a query whose
        predicted response time exceeds it is shed with
        :class:`~repro.net.errors.OverloadedError`.
        """
        params: dict[str, Any] = {"query": query_to_wire(query)}
        if shard is not None:
            params["shard"] = shard
        if arrival_ms is not None:
            params["arrival_ms"] = arrival_ms
        if admission_deadline_ms is not None:
            params["admission_deadline_ms"] = admission_deadline_ms
        result = await self.request("submit", params, deadline_ms=deadline_ms)
        return record_from_wire(result)

    async def health(self) -> dict[str, Any]:
        result = await self.request("health")
        if not isinstance(result, dict):
            raise ProtocolError(f"malformed health payload: {result!r}")
        return result

    async def stats(self) -> dict[str, Any]:
        result = await self.request("stats")
        if not isinstance(result, dict):
            raise ProtocolError(f"malformed stats payload: {result!r}")
        return result

    async def metrics_text(self) -> str:
        result = await self.request("metrics")
        if not isinstance(result, dict) or not isinstance(
            result.get("text"), str
        ):
            raise ProtocolError(f"malformed metrics payload: {result!r}")
        return str(result["text"])

    async def mark_failed(
        self, disks: Sequence[int], *, shard: int | None = None
    ) -> None:
        params: dict[str, Any] = {"disks": list(disks)}
        if shard is not None:
            params["shard"] = shard
        await self.request("mark_failed", params)

    async def mark_repaired(
        self, disks: Sequence[int], *, shard: int | None = None
    ) -> None:
        params: dict[str, Any] = {"disks": list(disks)}
        if shard is not None:
            params["shard"] = shard
        await self.request("mark_repaired", params)

    async def shutdown(self) -> None:
        await self.request("shutdown")

    async def close(self) -> None:
        for i, conn in enumerate(self._pool):
            if conn is not None:
                await conn.close()
                self._pool[i] = None

    async def __aenter__(self) -> "AsyncSchedulerClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


class SchedulerClient:
    """Blocking facade over :class:`AsyncSchedulerClient`.

    Runs a private event loop on a daemon thread; every method proxies
    the corresponding coroutine and blocks for its result, so retry,
    deadline and pooling semantics are identical to the async client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 1,
        deadline_ms: float | None = None,
        retry: RetryPolicy | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        seed: int | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-net-client",
            daemon=True,
        )
        self._thread.start()
        self._closed = False
        self._async = AsyncSchedulerClient(
            host,
            port,
            pool_size=pool_size,
            deadline_ms=deadline_ms,
            retry=retry,
            max_frame_bytes=max_frame_bytes,
            seed=seed,
        )

    def _run(self, coro: Coroutine[Any, Any, _T]) -> _T:
        if self._closed:
            coro.close()
            raise ConnectionClosedError("client is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ------------------------------------------------------------------
    def request(
        self,
        op: str,
        params: dict[str, Any] | None = None,
        *,
        deadline_ms: float | None = _UNSET,
    ) -> Any:
        return self._run(
            self._async.request(op, params, deadline_ms=deadline_ms)
        )

    def submit(
        self,
        query: QueryLike,
        *,
        shard: int | None = None,
        arrival_ms: float | None = None,
        deadline_ms: float | None = _UNSET,
        admission_deadline_ms: float | None = None,
    ) -> ServiceRecord:
        return self._run(
            self._async.submit(
                query,
                shard=shard,
                arrival_ms=arrival_ms,
                deadline_ms=deadline_ms,
                admission_deadline_ms=admission_deadline_ms,
            )
        )

    def health(self) -> dict[str, Any]:
        return self._run(self._async.health())

    def stats(self) -> dict[str, Any]:
        return self._run(self._async.stats())

    def metrics_text(self) -> str:
        return self._run(self._async.metrics_text())

    def mark_failed(
        self, disks: Sequence[int], *, shard: int | None = None
    ) -> None:
        self._run(self._async.mark_failed(disks, shard=shard))

    def mark_repaired(
        self, disks: Sequence[int], *, shard: int | None = None
    ) -> None:
        self._run(self._async.mark_repaired(disks, shard=shard))

    def shutdown(self) -> None:
        self._run(self._async.shutdown())

    async def _shutdown_loop(self) -> None:
        """Cancel every task still on the loop so no proxied caller hangs."""
        tasks = [
            t
            for t in asyncio.all_tasks()
            if t is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._run(self._async.close())
        finally:
            self._closed = True
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown_loop(), self._loop
                ).result(timeout=10.0)
            except (
                NetError,
                TimeoutError,
                concurrent.futures.TimeoutError,  # distinct class on 3.10
                RuntimeError,
            ):
                pass  # loop already dead or tasks uncancellable: give up
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()

    def __enter__(self) -> "SchedulerClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
