"""The asyncio RPC front end over the scheduler service.

:class:`SchedulerServer` exposes a :class:`~repro.service.SchedulerService`
or :class:`~repro.service.ShardedSchedulerService` over TCP using the
length-prefixed JSON protocol in :mod:`repro.net.protocol`.  The
transport half — handshake, per-connection read loop, one task per
request, graceful drain — lives in the reusable
:class:`~repro.net.frameserver.FrameServer` base (shared with the
cluster routing proxy); this module adds what is scheduler-specific:

* **Admission control.**  At most ``max_inflight`` scheduling requests
  run at once; an arrival beyond that is *shed* with a typed
  ``OVERLOADED`` error carrying a ``retry_after_ms`` hint instead of
  queueing unboundedly.  The paper's response-time model assumes the
  scheduler decides promptly — an unbounded server-side queue would add
  exactly the waiting time (Table I's ``X_j``) the algorithm exists to
  minimize, invisibly.
* **Concurrency without blocking the loop.**  Scheduling runs in the
  default thread-pool executor (the service layer is thread-safe and
  serializes on its own solve lock); control-plane ops (``health``,
  ``stats``, ``metrics``, ``mark_*``) also touch that lock, so they run
  on a small dedicated executor of their own.  The event loop only ever
  parses frames and writes responses: it stays responsive under heavy
  ``submit`` load, and many requests may be in flight on one connection.
* **Graceful drain.**  ``begin_drain()`` (SIGTERM in ``repro serve``, or
  the ``shutdown`` RPC) stops accepting connections, rejects *new*
  requests with ``SHUTTING_DOWN``, lets every in-flight request finish
  and respond, flushes a final stats snapshot, then closes.

Per-connection/request counters and latency histograms are deposited in
a :class:`~repro.obs.MetricsRegistry`; the ``metrics`` RPC serves them —
together with the underlying service's registries — through the existing
Prometheus text exporter.
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Any

from repro.errors import PredictedOverloadError, ReproError
from repro.fleet.pool import WorkerCrashedError
from repro.net.errors import NonIntegralFieldError, ProtocolError
from repro.net.frameserver import FrameServer, ServerConfig
from repro.net.protocol import (
    error_response,
    ok_response,
    query_from_wire,
    record_to_wire,
)
from repro.obs.export import to_prometheus
from repro.service.scheduler import SchedulerService
from repro.service.sharded import ShardedSchedulerService
from repro.service.stats import (
    ServiceRecord,
    ServiceStats,
    histogram_to_wire,
)

__all__ = ["ServerConfig", "SchedulerServer", "OPS"]

#: operations the server understands (``hello`` is the handshake)
OPS = frozenset(
    {
        "hello",
        "submit",
        "health",
        "stats",
        "metrics",
        "mark_failed",
        "mark_repaired",
        "shutdown",
    }
)


class SchedulerServer(FrameServer):
    """Serve a scheduler service over TCP with admission control."""

    server_name = "repro-scheduler"
    ops = OPS

    def __init__(
        self,
        service: SchedulerService | ShardedSchedulerService,
        config: ServerConfig | None = None,
    ) -> None:
        super().__init__(config)
        self.service = service
        self.final_stats: ServiceStats | None = None

    # ------------------------------------------------------------------
    async def _finalize_drain(self) -> ServiceStats:
        # stats() takes the service lock; a straggling solve could hold
        # it for milliseconds, so keep the snapshot off the event loop
        # (the default executor — the control executor is gone by now)
        self.final_stats = await asyncio.get_running_loop().run_in_executor(
            None, self.service.stats
        )
        return self.final_stats

    async def drain(self) -> ServiceStats:
        """Complete a graceful shutdown; returns the final stats snapshot."""
        stats: ServiceStats = await super().drain()
        return stats

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _dispatch(
        self, req_id: int, op: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        if op == "submit":
            return await self._op_submit(req_id, params)
        # health/stats/metrics/mark_* acquire the service's solve lock,
        # which an executor-offloaded submit may hold for a whole solve;
        # run them on the control executor so the event loop never blocks
        loop = asyncio.get_running_loop()
        if op == "health":
            payload = await loop.run_in_executor(
                self._control_executor, self._health_payload
            )
            return ok_response(req_id, payload)
        if op == "stats":
            payload = await loop.run_in_executor(
                self._control_executor, self._stats_payload
            )
            return ok_response(req_id, payload)
        if op == "metrics":
            text = await loop.run_in_executor(
                self._control_executor, self.metrics_text
            )
            return ok_response(
                req_id,
                {
                    "content_type": "text/plain; version=0.0.4",
                    "text": text,
                },
            )
        if op in ("mark_failed", "mark_repaired"):
            return await loop.run_in_executor(
                self._control_executor,
                partial(self._op_mark, req_id, op, params),
            )
        if op == "shutdown":
            # respond first, then start the drain on the next loop tick
            asyncio.get_running_loop().call_soon(self.begin_drain)
            return ok_response(req_id, {"draining": True})
        if op == "hello":
            return error_response(
                req_id, "BAD_REQUEST", "hello is only valid as the handshake"
            )
        return error_response(req_id, "UNKNOWN_OP", f"unknown op {op!r}")

    async def _op_submit(
        self, req_id: int, params: dict[str, Any]
    ) -> dict[str, Any]:
        if self._draining:
            return error_response(
                req_id, "SHUTTING_DOWN", "server is draining; no new work"
            )
        if self._inflight >= self.config.max_inflight:
            self._m_shed.inc()
            return error_response(
                req_id,
                "OVERLOADED",
                f"{self._inflight} requests in flight "
                f"(capacity {self.config.max_inflight})",
                retry_after_ms=self.config.retry_after_ms,
            )
        try:
            query = query_from_wire(params.get("query"))
            shard = params.get("shard")
            if shard is not None and (
                not isinstance(shard, int) or isinstance(shard, bool)
            ):
                raise ProtocolError(f"shard must be an int: {shard!r}")
            arrival_raw = params.get("arrival_ms")
            if arrival_raw is not None and not isinstance(
                arrival_raw, (int, float)
            ):
                raise ProtocolError(
                    f"arrival_ms must be a number: {arrival_raw!r}"
                )
            arrival_ms = None if arrival_raw is None else float(arrival_raw)
            admission_raw = params.get("admission_deadline_ms")
            if admission_raw is not None and not isinstance(
                admission_raw, (int, float)
            ):
                raise ProtocolError(
                    f"admission_deadline_ms must be a number: "
                    f"{admission_raw!r}"
                )
            admission_deadline_ms = (
                None if admission_raw is None else float(admission_raw)
            )
        except NonIntegralFieldError as exc:
            # envelope and types were fine; the *value* was fractional
            # where the integer kernel demands exactness
            return error_response(req_id, "INVALID_QUERY", str(exc))
        except ProtocolError as exc:
            return error_response(req_id, "BAD_REQUEST", str(exc))

        self._inflight += 1
        self._m_inflight.set(float(self._inflight))
        try:
            record = await asyncio.get_running_loop().run_in_executor(
                None,
                partial(
                    self._submit_sync,
                    query,
                    shard,
                    arrival_ms,
                    admission_deadline_ms,
                ),
            )
        except ValueError as exc:  # e.g. out-of-range shard id
            return error_response(req_id, "BAD_REQUEST", str(exc))
        except WorkerCrashedError as exc:
            # a fleet worker died mid-solve: the query was valid, the
            # infrastructure failed.  INTERNAL is non-transient on the
            # wire, so a client RetryPolicy will NOT re-submit — submit
            # keeps its at-most-once semantics.  The fleet has already
            # rebuilt the lane, so later submits succeed.
            return error_response(
                req_id, "INTERNAL", f"solve worker crashed: {exc}"
            )
        except PredictedOverloadError as exc:
            # the online scheduler shed on *predicted* response time:
            # same transient OVERLOADED wire path as counter-based
            # shedding, but the retry hint is the scheduler's own
            # estimate of when the backlog admits the query
            self._m_shed.inc()
            return error_response(
                req_id,
                "OVERLOADED",
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        except ReproError as exc:
            return error_response(req_id, "INVALID_QUERY", str(exc))
        finally:
            self._inflight -= 1
            self._m_inflight.set(float(self._inflight))
        return ok_response(req_id, record_to_wire(record))

    def _submit_sync(
        self,
        query: Any,
        shard: int | None,
        arrival_ms: float | None,
        admission_deadline_ms: float | None = None,
    ) -> ServiceRecord:
        # pass deadline_ms only when the client sent one: stub services
        # (and pre-facade subclasses) override submit(query, arrival_ms)
        # and must keep working for deadline-free submits
        extra: dict[str, float] = {}
        if admission_deadline_ms is not None:
            extra["deadline_ms"] = admission_deadline_ms
        if isinstance(self.service, ShardedSchedulerService):
            return self.service.submit(
                query, shard=shard, arrival_ms=arrival_ms, **extra
            )
        if shard is not None:
            raise ValueError("shard= requires a sharded service")
        return self.service.submit(query, arrival_ms=arrival_ms, **extra)

    def _op_mark(
        self, req_id: int, op: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        raw = params.get("disks")
        if (
            not isinstance(raw, list)
            or not raw
            or not all(
                isinstance(d, int) and not isinstance(d, bool) for d in raw
            )
        ):
            return error_response(
                req_id, "BAD_REQUEST", "disks must be a non-empty int list"
            )
        shard = params.get("shard")
        if shard is not None and (
            not isinstance(shard, int) or isinstance(shard, bool)
        ):
            return error_response(
                req_id, "BAD_REQUEST", f"shard must be an int: {shard!r}"
            )
        try:
            if isinstance(self.service, ShardedSchedulerService):
                if op == "mark_failed":
                    if shard is None:
                        self.service.mark_failed_all(raw)
                    else:
                        self.service.mark_failed(shard, raw)
                else:
                    if shard is None:
                        self.service.mark_repaired_all(raw)
                    else:
                        self.service.mark_repaired(shard, raw)
            else:
                if shard is not None:
                    return error_response(
                        req_id, "BAD_REQUEST", "shard= requires a sharded service"
                    )
                if op == "mark_failed":
                    self.service.mark_failed(raw)
                else:
                    self.service.mark_repaired(raw)
        except ValueError as exc:
            return error_response(req_id, "BAD_REQUEST", str(exc))
        except ReproError as exc:
            return error_response(req_id, "INVALID_QUERY", str(exc))
        return ok_response(req_id, {"disks": raw, "shard": shard})

    # ------------------------------------------------------------------
    # payload builders
    # ------------------------------------------------------------------
    def _health_payload(self) -> dict[str, Any]:
        stats = self.service.stats()
        return {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
            "max_inflight": self.config.max_inflight,
            "queries": stats.queries,
            "shards": (
                self.service.num_shards
                if isinstance(self.service, ShardedSchedulerService)
                else 1
            ),
        }

    def _response_histograms(self) -> list[Any]:
        if isinstance(self.service, ShardedSchedulerService):
            return [
                registry.get("repro_service_response_ms")
                for registry in self.service.registries
            ]
        return [self.service.registry.get("repro_service_response_ms")]

    def _stats_payload(self) -> dict[str, Any]:
        stats = self.service.stats()
        return {
            "queries": stats.queries,
            "buckets": stats.buckets,
            "degraded_queries": stats.degraded_queries,
            "mean_response_ms": stats.mean_response_ms,
            "max_response_ms": stats.max_response_ms,
            "p50_response_ms": stats.p50_response_ms,
            "p95_response_ms": stats.p95_response_ms,
            "mean_decision_ms": stats.mean_decision_ms,
            "cache_hits": stats.cache_hits,
            "batches": stats.batches,
            "per_disk_buckets": list(stats.per_disk_buckets),
            # pooled response-time buckets: lets a cluster router merge
            # exact fleet-wide percentiles via merged_quantile instead
            # of averaging per-backend quantiles (which do not add)
            "response_histogram": histogram_to_wire(
                self._response_histograms()
            ),
        }

    def metrics_text(self) -> str:
        """Prometheus text for the net layer plus the service registries."""
        parts = [to_prometheus(self.registry)]
        if isinstance(self.service, ShardedSchedulerService):
            for k, registry in enumerate(self.service.registries):
                parts.append(f"# repro.net: scheduler shard {k}\n")
                parts.append(to_prometheus(registry))
        else:
            parts.append("# repro.net: scheduler\n")
            parts.append(to_prometheus(self.service.registry))
        return "".join(parts)
