"""The asyncio RPC front end over the scheduler service.

:class:`SchedulerServer` exposes a :class:`~repro.service.SchedulerService`
or :class:`~repro.service.ShardedSchedulerService` over TCP using the
length-prefixed JSON protocol in :mod:`repro.net.protocol`.  Three
properties distinguish it from a naive socket loop:

* **Admission control.**  At most ``max_inflight`` scheduling requests
  run at once; an arrival beyond that is *shed* with a typed
  ``OVERLOADED`` error carrying a ``retry_after_ms`` hint instead of
  queueing unboundedly.  The paper's response-time model assumes the
  scheduler decides promptly — an unbounded server-side queue would add
  exactly the waiting time (Table I's ``X_j``) the algorithm exists to
  minimize, invisibly.
* **Concurrency without blocking the loop.**  Scheduling runs in the
  default thread-pool executor (the service layer is thread-safe and
  serializes on its own solve lock); control-plane ops (``health``,
  ``stats``, ``metrics``, ``mark_*``) also touch that lock, so they run
  on a small dedicated executor of their own.  The event loop only ever
  parses frames and writes responses: it stays responsive under heavy
  ``submit`` load, and many requests may be in flight on one connection.
* **Graceful drain.**  ``begin_drain()`` (SIGTERM in ``repro serve``, or
  the ``shutdown`` RPC) stops accepting connections, rejects *new*
  requests with ``SHUTTING_DOWN``, lets every in-flight request finish
  and respond, flushes a final stats snapshot, then closes.

Per-connection/request counters and latency histograms are deposited in
a :class:`~repro.obs.MetricsRegistry`; the ``metrics`` RPC serves them —
together with the underlying service's registries — through the existing
Prometheus text exporter.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any

from repro.errors import PredictedOverloadError, ReproError
from repro.fleet.pool import WorkerCrashedError
from repro.net.errors import (
    FrameTooLargeError,
    NonIntegralFieldError,
    ProtocolError,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    query_from_wire,
    record_to_wire,
)
from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.service.scheduler import SchedulerService
from repro.service.sharded import ShardedSchedulerService
from repro.service.stats import ServiceRecord, ServiceStats

__all__ = ["ServerConfig", "SchedulerServer", "OPS"]

#: operations the server understands (``hello`` is the handshake)
OPS = frozenset(
    {
        "hello",
        "submit",
        "health",
        "stats",
        "metrics",
        "mark_failed",
        "mark_repaired",
        "shutdown",
    }
)

_READ_CHUNK = 1 << 16


@dataclass(frozen=True)
class ServerConfig:
    """Transport and admission policy for a :class:`SchedulerServer`.

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`SchedulerServer.port` once started).
    max_inflight:
        Admission-control capacity: scheduling requests running or
        executor-queued at once.  Arrivals beyond it are shed with
        ``OVERLOADED`` rather than queued.
    retry_after_ms:
        The hint attached to shed responses; clients use it as a floor
        for their backoff.
    max_frame_bytes:
        Per-frame size limit enforced on both directions.
    registry:
        Sink for the server's own connection/request metrics; ``None``
        creates a private one.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 32
    retry_after_ms: float = 50.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    registry: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.retry_after_ms < 0:
            raise ValueError(
                f"retry_after_ms must be >= 0, got {self.retry_after_ms}"
            )


class SchedulerServer:
    """Serve a scheduler service over TCP with admission control."""

    def __init__(
        self,
        service: SchedulerService | ShardedSchedulerService,
        config: ServerConfig | None = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else ServerConfig()
        self.registry = (
            self.config.registry
            if self.config.registry is not None
            else MetricsRegistry()
        )
        self.final_stats: ServiceStats | None = None

        self._server: asyncio.AbstractServer | None = None
        self._inflight = 0
        self._draining = False
        self._drain_requested = asyncio.Event()
        self._drained = asyncio.Event()
        self._request_tasks: set[asyncio.Task[None]] = set()
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        # control-plane ops (health/stats/metrics/mark_*) block on the
        # service's solve lock, so they must leave the event loop — and
        # they get their own small pool because the default executor can
        # be saturated by up to ``max_inflight`` submits
        self._control_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-net-control"
        )

        self._m_conns = self.registry.counter(
            "repro_net_connections_total", "Client connections accepted."
        )
        self._m_open = self.registry.gauge(
            "repro_net_connections_open", "Client connections currently open."
        )
        self._m_requests = self.registry.counter(
            "repro_net_requests_total", "Requests handled (all ops)."
        )
        self._m_errors = self.registry.counter(
            "repro_net_errors_total", "Error responses returned."
        )
        self._m_shed = self.registry.counter(
            "repro_net_shed_total", "Submits rejected by admission control."
        )
        self._m_inflight = self.registry.gauge(
            "repro_net_inflight", "Scheduling requests currently in flight."
        )
        self._m_request_ms = self.registry.histogram(
            "repro_net_request_ms", "Server-side request handling latency (ms)."
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    def begin_drain(self) -> None:
        """Stop accepting; reject new work; let in-flight finish.

        Callable from the event loop (signal handlers, the ``shutdown``
        RPC).  Idempotent.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        self._drain_requested.set()

    async def drain(self) -> ServiceStats:
        """Complete a graceful shutdown; returns the final stats snapshot."""
        self.begin_drain()
        # in-flight requests finish and their responses are written
        while self._request_tasks:
            await asyncio.gather(
                *tuple(self._request_tasks), return_exceptions=True
            )
        # then the connections themselves are torn down (a live read loop
        # may still have spawned late requests — keep awaiting both sets)
        for writer in tuple(self._writers):
            writer.close()
        while self._conn_tasks or self._request_tasks:
            await asyncio.gather(
                *tuple(self._conn_tasks),
                *tuple(self._request_tasks),
                return_exceptions=True,
            )
        # wait_closed() must come LAST: on Python >= 3.12 it waits for
        # every connection-handler task, and a handler parked in read()
        # only wakes once its writer is closed above — awaiting it first
        # hangs the drain forever with a single idle connected client
        if self._server is not None:
            await self._server.wait_closed()
        self._control_executor.shutdown(wait=True)
        # stats() takes the service lock; a straggling solve could hold
        # it for milliseconds, so keep the snapshot off the event loop
        # (the default executor — the control executor is gone by now)
        self.final_stats = await asyncio.get_running_loop().run_in_executor(
            None, self.service.stats
        )
        self._drained.set()
        return self.final_stats

    async def serve_until_drained(self) -> ServiceStats:
        """Run until someone calls :meth:`begin_drain`, then drain."""
        await self._drain_requested.wait()
        return await self.drain()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        self._m_conns.inc()
        self._m_open.inc()
        decoder = FrameDecoder(self.config.max_frame_bytes)
        write_lock = asyncio.Lock()
        try:
            pipelined = await self._handshake(reader, writer, decoder, write_lock)
            if pipelined is not None:
                for msg in pipelined:
                    self._spawn_request(msg, writer, write_lock)
                await self._read_loop(reader, writer, decoder, write_lock)
        finally:
            self._writers.discard(writer)
            self._m_open.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
        write_lock: asyncio.Lock,
    ) -> list[dict[str, Any]] | None:
        """Expect ``hello`` first; returns pipelined follow-ups or None."""
        msgs: list[dict[str, Any]] = []
        trailing_errors: list[ProtocolError] = []
        while not msgs:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return None
            try:
                items = decoder.feed(data)
            except FrameTooLargeError as exc:
                await self._send(
                    writer,
                    write_lock,
                    error_response(None, "FRAME_TOO_LARGE", str(exc)),
                )
                return None
            for item in items:
                if not isinstance(item, ProtocolError):
                    msgs.append(item)
                elif not msgs:
                    # malformed before any hello: reject and close
                    await self._send(
                        writer,
                        write_lock,
                        error_response(None, "BAD_REQUEST", str(item)),
                    )
                    return None
                else:
                    # malformed frame pipelined *behind* a valid hello:
                    # answer the handshake first, then the error — the
                    # connection survives, exactly as in _read_loop
                    trailing_errors.append(item)
        try:
            req_id, op, params = parse_request(msgs[0])
        except ProtocolError as exc:
            await self._send(
                writer, write_lock, error_response(None, "BAD_REQUEST", str(exc))
            )
            return None
        if op != "hello":
            await self._send(
                writer,
                write_lock,
                error_response(
                    req_id, "BAD_REQUEST", "first request must be 'hello'"
                ),
            )
            return None
        version = params.get("version")
        if version != PROTOCOL_VERSION:
            await self._send(
                writer,
                write_lock,
                error_response(
                    req_id,
                    "UNSUPPORTED_VERSION",
                    f"server speaks protocol {PROTOCOL_VERSION}, "
                    f"client sent {version!r}",
                ),
            )
            return None
        await self._send(
            writer,
            write_lock,
            ok_response(
                req_id,
                {
                    "version": PROTOCOL_VERSION,
                    "server": "repro-scheduler",
                    "max_frame_bytes": self.config.max_frame_bytes,
                    "ops": sorted(OPS),
                },
            ),
        )
        for err in trailing_errors:
            self._m_errors.inc()
            await self._send(
                writer, write_lock, error_response(None, "BAD_REQUEST", str(err))
            )
        return msgs[1:]

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
        write_lock: asyncio.Lock,
    ) -> None:
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return
            try:
                items = decoder.feed(data)
            except FrameTooLargeError as exc:
                # cannot resync a stream after an oversized header:
                # report, then close this connection
                self._m_errors.inc()
                await self._send(
                    writer,
                    write_lock,
                    error_response(None, "FRAME_TOO_LARGE", str(exc)),
                )
                return
            for item in items:
                if isinstance(item, ProtocolError):
                    # frame boundary was sound, payload was not: the
                    # connection survives
                    self._m_errors.inc()
                    await self._send(
                        writer,
                        write_lock,
                        error_response(None, "BAD_REQUEST", str(item)),
                    )
                else:
                    self._spawn_request(item, writer, write_lock)

    def _spawn_request(
        self,
        msg: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        task = asyncio.create_task(self._handle_request(msg, writer, write_lock))
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_request(
        self,
        msg: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        t0 = time.perf_counter()
        try:
            req_id, op, params = parse_request(msg)
        except ProtocolError as exc:
            self._m_errors.inc()
            await self._send(
                writer, write_lock, error_response(None, "BAD_REQUEST", str(exc))
            )
            return
        try:
            response = await self._dispatch(req_id, op, params)
        except Exception as exc:  # noqa: BLE001 - fault barrier per request
            response = error_response(
                req_id, "INTERNAL", f"{type(exc).__name__}: {exc}"
            )
        self._m_requests.inc()
        if response.get("ok") is not True:
            self._m_errors.inc()
        self._m_request_ms.observe((time.perf_counter() - t0) * 1000.0)
        await self._send(writer, write_lock, response)

    async def _dispatch(
        self, req_id: int, op: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        if op == "submit":
            return await self._op_submit(req_id, params)
        # health/stats/metrics/mark_* acquire the service's solve lock,
        # which an executor-offloaded submit may hold for a whole solve;
        # run them on the control executor so the event loop never blocks
        loop = asyncio.get_running_loop()
        if op == "health":
            payload = await loop.run_in_executor(
                self._control_executor, self._health_payload
            )
            return ok_response(req_id, payload)
        if op == "stats":
            payload = await loop.run_in_executor(
                self._control_executor, self._stats_payload
            )
            return ok_response(req_id, payload)
        if op == "metrics":
            text = await loop.run_in_executor(
                self._control_executor, self.metrics_text
            )
            return ok_response(
                req_id,
                {
                    "content_type": "text/plain; version=0.0.4",
                    "text": text,
                },
            )
        if op in ("mark_failed", "mark_repaired"):
            return await loop.run_in_executor(
                self._control_executor,
                partial(self._op_mark, req_id, op, params),
            )
        if op == "shutdown":
            # respond first, then start the drain on the next loop tick
            asyncio.get_running_loop().call_soon(self.begin_drain)
            return ok_response(req_id, {"draining": True})
        if op == "hello":
            return error_response(
                req_id, "BAD_REQUEST", "hello is only valid as the handshake"
            )
        return error_response(req_id, "UNKNOWN_OP", f"unknown op {op!r}")

    async def _op_submit(
        self, req_id: int, params: dict[str, Any]
    ) -> dict[str, Any]:
        if self._draining:
            return error_response(
                req_id, "SHUTTING_DOWN", "server is draining; no new work"
            )
        if self._inflight >= self.config.max_inflight:
            self._m_shed.inc()
            return error_response(
                req_id,
                "OVERLOADED",
                f"{self._inflight} requests in flight "
                f"(capacity {self.config.max_inflight})",
                retry_after_ms=self.config.retry_after_ms,
            )
        try:
            query = query_from_wire(params.get("query"))
            shard = params.get("shard")
            if shard is not None and (
                not isinstance(shard, int) or isinstance(shard, bool)
            ):
                raise ProtocolError(f"shard must be an int: {shard!r}")
            arrival_raw = params.get("arrival_ms")
            if arrival_raw is not None and not isinstance(
                arrival_raw, (int, float)
            ):
                raise ProtocolError(
                    f"arrival_ms must be a number: {arrival_raw!r}"
                )
            arrival_ms = None if arrival_raw is None else float(arrival_raw)
            admission_raw = params.get("admission_deadline_ms")
            if admission_raw is not None and not isinstance(
                admission_raw, (int, float)
            ):
                raise ProtocolError(
                    f"admission_deadline_ms must be a number: "
                    f"{admission_raw!r}"
                )
            admission_deadline_ms = (
                None if admission_raw is None else float(admission_raw)
            )
        except NonIntegralFieldError as exc:
            # envelope and types were fine; the *value* was fractional
            # where the integer kernel demands exactness
            return error_response(req_id, "INVALID_QUERY", str(exc))
        except ProtocolError as exc:
            return error_response(req_id, "BAD_REQUEST", str(exc))

        self._inflight += 1
        self._m_inflight.set(float(self._inflight))
        try:
            record = await asyncio.get_running_loop().run_in_executor(
                None,
                partial(
                    self._submit_sync,
                    query,
                    shard,
                    arrival_ms,
                    admission_deadline_ms,
                ),
            )
        except ValueError as exc:  # e.g. out-of-range shard id
            return error_response(req_id, "BAD_REQUEST", str(exc))
        except WorkerCrashedError as exc:
            # a fleet worker died mid-solve: the query was valid, the
            # infrastructure failed.  INTERNAL is non-transient on the
            # wire, so a client RetryPolicy will NOT re-submit — submit
            # keeps its at-most-once semantics.  The fleet has already
            # rebuilt the lane, so later submits succeed.
            return error_response(
                req_id, "INTERNAL", f"solve worker crashed: {exc}"
            )
        except PredictedOverloadError as exc:
            # the online scheduler shed on *predicted* response time:
            # same transient OVERLOADED wire path as counter-based
            # shedding, but the retry hint is the scheduler's own
            # estimate of when the backlog admits the query
            self._m_shed.inc()
            return error_response(
                req_id,
                "OVERLOADED",
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        except ReproError as exc:
            return error_response(req_id, "INVALID_QUERY", str(exc))
        finally:
            self._inflight -= 1
            self._m_inflight.set(float(self._inflight))
        return ok_response(req_id, record_to_wire(record))

    def _submit_sync(
        self,
        query: Any,
        shard: int | None,
        arrival_ms: float | None,
        admission_deadline_ms: float | None = None,
    ) -> ServiceRecord:
        # pass deadline_ms only when the client sent one: stub services
        # (and pre-facade subclasses) override submit(query, arrival_ms)
        # and must keep working for deadline-free submits
        extra: dict[str, float] = {}
        if admission_deadline_ms is not None:
            extra["deadline_ms"] = admission_deadline_ms
        if isinstance(self.service, ShardedSchedulerService):
            return self.service.submit(
                query, shard=shard, arrival_ms=arrival_ms, **extra
            )
        if shard is not None:
            raise ValueError("shard= requires a sharded service")
        return self.service.submit(query, arrival_ms=arrival_ms, **extra)

    def _op_mark(
        self, req_id: int, op: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        raw = params.get("disks")
        if (
            not isinstance(raw, list)
            or not raw
            or not all(
                isinstance(d, int) and not isinstance(d, bool) for d in raw
            )
        ):
            return error_response(
                req_id, "BAD_REQUEST", "disks must be a non-empty int list"
            )
        shard = params.get("shard")
        if shard is not None and (
            not isinstance(shard, int) or isinstance(shard, bool)
        ):
            return error_response(
                req_id, "BAD_REQUEST", f"shard must be an int: {shard!r}"
            )
        try:
            if isinstance(self.service, ShardedSchedulerService):
                if op == "mark_failed":
                    if shard is None:
                        self.service.mark_failed_all(raw)
                    else:
                        self.service.mark_failed(shard, raw)
                else:
                    if shard is None:
                        self.service.mark_repaired_all(raw)
                    else:
                        self.service.mark_repaired(shard, raw)
            else:
                if shard is not None:
                    return error_response(
                        req_id, "BAD_REQUEST", "shard= requires a sharded service"
                    )
                if op == "mark_failed":
                    self.service.mark_failed(raw)
                else:
                    self.service.mark_repaired(raw)
        except ValueError as exc:
            return error_response(req_id, "BAD_REQUEST", str(exc))
        except ReproError as exc:
            return error_response(req_id, "INVALID_QUERY", str(exc))
        return ok_response(req_id, {"disks": raw, "shard": shard})

    # ------------------------------------------------------------------
    # payload builders
    # ------------------------------------------------------------------
    def _health_payload(self) -> dict[str, Any]:
        stats = self.service.stats()
        return {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
            "max_inflight": self.config.max_inflight,
            "queries": stats.queries,
            "shards": (
                self.service.num_shards
                if isinstance(self.service, ShardedSchedulerService)
                else 1
            ),
        }

    def _stats_payload(self) -> dict[str, Any]:
        stats = self.service.stats()
        return {
            "queries": stats.queries,
            "buckets": stats.buckets,
            "degraded_queries": stats.degraded_queries,
            "mean_response_ms": stats.mean_response_ms,
            "max_response_ms": stats.max_response_ms,
            "p50_response_ms": stats.p50_response_ms,
            "p95_response_ms": stats.p95_response_ms,
            "mean_decision_ms": stats.mean_decision_ms,
            "cache_hits": stats.cache_hits,
            "batches": stats.batches,
            "per_disk_buckets": list(stats.per_disk_buckets),
        }

    def metrics_text(self) -> str:
        """Prometheus text for the net layer plus the service registries."""
        parts = [to_prometheus(self.registry)]
        if isinstance(self.service, ShardedSchedulerService):
            for k, registry in enumerate(self.service.registries):
                parts.append(f"# repro.net: scheduler shard {k}\n")
                parts.append(to_prometheus(registry))
        else:
            parts.append("# repro.net: scheduler\n")
            parts.append(to_prometheus(self.service.registry))
        return "".join(parts)

    # ------------------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: dict[str, Any],
    ) -> None:
        frame = encode_frame(
            payload, max_frame_bytes=self.config.max_frame_bytes
        )
        try:
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer went away mid-response; the read loop will notice
