"""Table IV — the paper's five experiment configurations.

====  =====  ======  =========  ==========  =======  =========  ==========  =======
Exp   Sites  Props   S1 disks   S1 delays   S1 lds   S2 disks   S2 delays   S2 lds
====  =====  ======  =========  ==========  =======  =========  ==========  =======
1     2      hom.    cheetah    0           0        cheetah    0           0
2     2      het.    ssd        0           0        hdd        0           0
3     2      het.    hdd        0           0        ssd        0           0
4     2      het.    ssd+hdd    0           0        ssd+hdd    0           0
5     2      het.    ssd+hdd    R(2,10,2)   R(...)   ssd+hdd    R(2,10,2)   R(...)
====  =====  ======  =========  ==========  =======  =========  ==========  =======

Heterogeneous groups draw each disk uniformly from the group; delays are
drawn once per site, initial loads once per disk (§VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import RetrievalProblem
from repro.decluster.multisite import MultiSitePlacement, make_placement
from repro.errors import WorkloadError
from repro.storage.loadgen import RandomStepDistribution, parse_r_notation
from repro.storage.system import StorageSystem
from repro.workloads.loads import sample_query

__all__ = ["ExperimentConfig", "EXPERIMENTS", "build_system", "build_problem"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One row of Table IV."""

    number: int
    homogeneous: bool
    site_groups: tuple[str, str]
    delay_dist: RandomStepDistribution
    load_dist: RandomStepDistribution

    @property
    def num_sites(self) -> int:
        return len(self.site_groups)

    def describe(self) -> str:
        kind = "hom." if self.homogeneous else "het."
        return (
            f"Experiment {self.number}: {self.num_sites} sites, {kind}, "
            f"disks {'/'.join(self.site_groups)}, delays {self.delay_dist}, "
            f"loads {self.load_dist}"
        )


_ZERO = parse_r_notation("0")
_R2_10_2 = parse_r_notation("R(2,10,2)")

#: Table IV, keyed by experiment number.
EXPERIMENTS: dict[int, ExperimentConfig] = {
    1: ExperimentConfig(1, True, ("cheetah", "cheetah"), _ZERO, _ZERO),
    2: ExperimentConfig(2, False, ("ssd", "hdd"), _ZERO, _ZERO),
    3: ExperimentConfig(3, False, ("hdd", "ssd"), _ZERO, _ZERO),
    4: ExperimentConfig(4, False, ("ssd+hdd", "ssd+hdd"), _ZERO, _ZERO),
    5: ExperimentConfig(5, False, ("ssd+hdd", "ssd+hdd"), _R2_10_2, _R2_10_2),
}


def build_system(
    experiment: int | ExperimentConfig, N: int, rng: np.random.Generator
) -> StorageSystem:
    """Instantiate the experiment's 2-site system with ``N`` disks/site."""
    cfg = _config(experiment)
    delays = [float(cfg.delay_dist.sample(rng)) for _ in cfg.site_groups]
    system = StorageSystem.from_groups(
        list(cfg.site_groups), N, delays_ms=delays, rng=rng
    )
    system.set_loads(cfg.load_dist.sample(rng, size=system.num_disks))
    return system


def build_problem(
    experiment: int | ExperimentConfig,
    scheme: str,
    N: int,
    qtype: str,
    load: int,
    rng: np.random.Generator,
    *,
    placement: MultiSitePlacement | None = None,
    system: StorageSystem | None = None,
) -> RetrievalProblem:
    """One random retrieval instance of the experiment.

    ``placement`` and ``system`` may be passed in to amortize their
    construction over many queries (the bench harness does); when omitted
    they are built from ``rng``.
    """
    cfg = _config(experiment)
    if placement is None:
        placement = make_placement(scheme, N, num_sites=cfg.num_sites, rng=rng)
    if system is None:
        system = build_system(cfg, N, rng)
    if system.num_disks != placement.total_disks:
        raise WorkloadError(
            f"system has {system.num_disks} disks, placement "
            f"{placement.total_disks}"
        )
    query = sample_query(load, qtype, N, rng)
    return RetrievalProblem.from_query(system, placement, query.buckets())


def _config(experiment: int | ExperimentConfig) -> ExperimentConfig:
    if isinstance(experiment, ExperimentConfig):
        return experiment
    try:
        return EXPERIMENTS[experiment]
    except KeyError:
        raise WorkloadError(
            f"unknown experiment {experiment}; Table IV defines 1-5"
        ) from None
