"""Query loads — the three query-size distributions of §VI-C.

``p^i_k`` denotes the probability that a load-``i`` query can be
retrieved in ``k`` disk accesses optimally; given ``k``, the bucket count
is uniform in ``[(k-1)N + 1, kN]``.

* **Load 1** — "the distribution of queries is similar to the
  distribution of queries for the particular query type": range queries
  are drawn uniformly over (corner, shape), arbitrary queries uniformly
  over subsets.  Expected sizes ``N²/4 + O(1/N)`` and ``N²/2 + O(1/N)``.
* **Load 2** — uniform: ``p²_k = 1/N``.  Expected size ``N²/2``.
* **Load 3** — much smaller queries: ``p³_k = 2N / ((2N-1) · 2^k)``, i.e.
  ``p³_k = p³_{k-1}/2`` (renormalized over ``k = 1..N``).  Expected size
  ``≈ 3N/2``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.queries import (
    sample_arbitrary_query,
    sample_arbitrary_query_of_size,
    sample_range_query,
    sample_range_query_of_size,
)

__all__ = ["QueryLoad", "QUERY_LOADS", "sample_bucket_count", "sample_query"]

QUERY_TYPES = ("range", "arbitrary")


class QueryLoad(abc.ABC):
    """One of the paper's query-size distributions."""

    #: load index as used in the figures (1, 2, 3)
    number: int

    @abc.abstractmethod
    def k_probabilities(self, N: int) -> np.ndarray:
        """``p_k`` for ``k = 1..N`` (index 0 ↔ k=1); sums to 1.

        Load 1 has no explicit ``k`` distribution (it samples query shapes
        directly) and raises.
        """

    def sample_size(self, N: int, rng: np.random.Generator) -> int:
        """Draw a bucket count: pick ``k`` by ``p_k``, then uniform in
        ``[(k-1)N + 1, kN]``."""
        probs = self.k_probabilities(N)
        k = 1 + int(rng.choice(N, p=probs))
        return int(rng.integers((k - 1) * N + 1, k * N + 1))

    def sample_query(self, qtype: str, N: int, rng: np.random.Generator):
        """Draw a query of the given type under this load."""
        if qtype not in QUERY_TYPES:
            raise WorkloadError(
                f"unknown query type {qtype!r}; choose from {QUERY_TYPES}"
            )
        size = self.sample_size(N, rng)
        lo, hi = _band_of(size, N)
        if qtype == "range":
            return sample_range_query_of_size(N, lo, hi, rng)
        return sample_arbitrary_query_of_size(N, size, rng)


def _band_of(size: int, N: int) -> tuple[int, int]:
    """The ``[(k-1)N+1, kN]`` band containing ``size``."""
    k = -(-size // N)
    return (k - 1) * N + 1, k * N


class Load1(QueryLoad):
    """Type-native distribution (no k mixture)."""

    number = 1

    def k_probabilities(self, N: int) -> np.ndarray:
        raise WorkloadError("load 1 samples query shapes directly")

    def sample_size(self, N: int, rng: np.random.Generator) -> int:
        raise WorkloadError("load 1 samples query shapes directly")

    def sample_query(self, qtype: str, N: int, rng: np.random.Generator):
        if qtype == "range":
            return sample_range_query(N, rng)
        if qtype == "arbitrary":
            return sample_arbitrary_query(N, rng)
        raise WorkloadError(
            f"unknown query type {qtype!r}; choose from {QUERY_TYPES}"
        )


class Load2(QueryLoad):
    """Uniform ``p_k = 1/N``."""

    number = 2

    def k_probabilities(self, N: int) -> np.ndarray:
        if N < 1:
            raise WorkloadError(f"N must be >= 1, got {N}")
        return np.full(N, 1.0 / N)


class Load3(QueryLoad):
    """Halving tail ``p_k ∝ 2^{-k}`` — much smaller queries."""

    number = 3

    def k_probabilities(self, N: int) -> np.ndarray:
        if N < 1:
            raise WorkloadError(f"N must be >= 1, got {N}")
        raw = 0.5 ** np.arange(1, N + 1)
        return raw / raw.sum()


#: load index → singleton instance
QUERY_LOADS: dict[int, QueryLoad] = {1: Load1(), 2: Load2(), 3: Load3()}


def sample_bucket_count(load: int, N: int, rng: np.random.Generator) -> int:
    """Bucket count under load 2 or 3 (load 1 is shape-native)."""
    try:
        dist = QUERY_LOADS[load]
    except KeyError:
        raise WorkloadError(f"unknown load {load}; choose 1, 2 or 3") from None
    return dist.sample_size(N, rng)


def sample_query(load: int, qtype: str, N: int, rng: np.random.Generator):
    """Draw one query under ``(load, qtype)`` on an ``N × N`` grid."""
    try:
        dist = QUERY_LOADS[load]
    except KeyError:
        raise WorkloadError(f"unknown load {load}; choose 1, 2 or 3") from None
    return dist.sample_query(qtype, N, rng)
