"""Closed-form workload statistics (paper §VI-B/C), checked empirically.

The paper states expected bucket counts for each (load, query type):

* load 1, range:      ``N²/4 + O(1/N)``   (uniform corner & shape)
* load 1, arbitrary:  ``N²/2 + O(1/N)``   (uniform non-empty subset)
* load 2 (both):      ``N²/2``            (uniform k, uniform in band)
* load 3 (both):      ``≈ 3N/2``          (halving tail over k)

and the count of distinct range queries, ``(N(N+1)/2)²``.  This module
derives those values exactly from the distributions as implemented, so
tests can compare generator output against closed forms instead of magic
constants — and so workload-sizing decisions (how many queries per point
cost how much) can be made analytically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.loads import QUERY_LOADS

__all__ = [
    "expected_bucket_count",
    "expected_band_midpoint",
    "empirical_mean_size",
]


def expected_band_midpoint(load: int, N: int) -> float:
    """E[|Q|] for a band-sampling load: Σ_k p_k · ((k-1)N+1 + kN)/2."""
    if load not in (2, 3):
        raise WorkloadError("band midpoints exist for loads 2 and 3 only")
    probs = QUERY_LOADS[load].k_probabilities(N)
    ks = np.arange(1, N + 1)
    mids = ((ks - 1) * N + 1 + ks * N) / 2.0
    return float((probs * mids).sum())


def expected_bucket_count(load: int, qtype: str, N: int) -> float:
    """Exact E[|Q|] under the implemented distributions.

    * load 1 / range: E[r]·E[c] with r, c uniform on 1..N → ((N+1)/2)².
    * load 1 / arbitrary: N²/2 conditioned on non-empty →
      (N²/2) / (1 − 2^(−N²)) (the correction is negligible beyond N=2).
    * loads 2 and 3: the exact band-midpoint sum (matches the paper's
      N²/2 for load 2; ≈3N/2 for load 3 up to the tail renormalization).
    """
    if qtype not in ("range", "arbitrary"):
        raise WorkloadError(f"unknown query type {qtype!r}")
    if load == 1:
        if qtype == "range":
            return ((N + 1) / 2.0) ** 2
        full = N * N / 2.0
        return full / (1.0 - 0.5 ** (N * N))
    return expected_band_midpoint(load, N)


def empirical_mean_size(
    load: int, qtype: str, N: int, n_samples: int, rng: np.random.Generator
) -> float:
    """Monte-Carlo mean of |Q| from the actual generators."""
    from repro.workloads.loads import sample_query

    total = 0
    for _ in range(n_samples):
        total += sample_query(load, qtype, N, rng).num_buckets
    return total / n_samples
