"""Query types on the wraparound grid (paper §VI-B).

* A **range query** ``(i, j, r, c)`` selects the ``r × c`` block of
  buckets whose top-left corner is ``(i, j)``, wrapping around the grid
  (consistent with the periodic allocations).  There are
  ``(N(N+1)/2)²`` distinct range queries on an ``N × N`` grid.
* An **arbitrary query** is any non-empty subset of the ``N²`` buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "RangeQuery",
    "ArbitraryQuery",
    "count_range_queries",
    "sample_range_query",
    "sample_range_query_of_size",
    "sample_arbitrary_query",
    "sample_arbitrary_query_of_size",
]


@dataclass(frozen=True)
class RangeQuery:
    """A wraparound rectangular query ``(i, j, r, c)``."""

    i: int
    j: int
    r: int
    c: int
    grid_size: int

    def __post_init__(self) -> None:
        N = self.grid_size
        if N < 1:
            raise WorkloadError(f"grid size must be >= 1, got {N}")
        if not (0 <= self.i < N and 0 <= self.j < N):
            raise WorkloadError(f"corner ({self.i},{self.j}) outside grid {N}")
        if not (1 <= self.r <= N and 1 <= self.c <= N):
            raise WorkloadError(f"shape {self.r}x{self.c} outside [1, {N}]")

    @property
    def num_buckets(self) -> int:
        return self.r * self.c

    def buckets(self) -> list[tuple[int, int]]:
        """The covered bucket coordinates, row-major, wrapped."""
        N = self.grid_size
        return [
            ((self.i + di) % N, (self.j + dj) % N)
            for di in range(self.r)
            for dj in range(self.c)
        ]


@dataclass(frozen=True)
class ArbitraryQuery:
    """An explicit set of bucket coordinates."""

    coords: tuple[tuple[int, int], ...]
    grid_size: int

    def __post_init__(self) -> None:
        N = self.grid_size
        if not self.coords:
            raise WorkloadError("arbitrary query must be non-empty")
        seen = set()
        for (i, j) in self.coords:
            if not (0 <= i < N and 0 <= j < N):
                raise WorkloadError(f"bucket ({i},{j}) outside grid {N}")
            if (i, j) in seen:
                raise WorkloadError(f"duplicate bucket ({i},{j})")
            seen.add((i, j))

    @property
    def num_buckets(self) -> int:
        return len(self.coords)

    def buckets(self) -> list[tuple[int, int]]:
        return list(self.coords)


def count_range_queries(N: int) -> int:
    """``(N(N+1)/2)²`` — the paper's count of distinct range queries."""
    if N < 1:
        raise WorkloadError(f"grid size must be >= 1, got {N}")
    return (N * (N + 1) // 2) ** 2


def sample_range_query(N: int, rng: np.random.Generator) -> RangeQuery:
    """Uniform over all (corner, shape) combinations — the paper's load-1
    distribution for range queries (smaller queries more likely by area)."""
    i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
    r, c = int(rng.integers(1, N + 1)), int(rng.integers(1, N + 1))
    return RangeQuery(i, j, r, c, N)


def sample_range_query_of_size(
    N: int, lo: int, hi: int, rng: np.random.Generator, *, max_tries: int = 64
) -> RangeQuery:
    """A random range query with bucket count in ``[lo, hi]``.

    Used by loads 2 and 3: the load picks the size band, this picks a
    rectangle realizing it.  Rejection-samples shapes; if the band is
    narrow it falls back to the deterministic ``r = min(N, hi)``
    construction, which always lands inside ``[lo, hi]`` when the band is
    one of the loads' ``[(k-1)N+1, kN]`` bands.
    """
    if not (1 <= lo <= hi <= N * N):
        raise WorkloadError(f"size band [{lo}, {hi}] invalid for grid {N}")
    i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
    for _ in range(max_tries):
        r = int(rng.integers(1, N + 1))
        c = int(rng.integers(1, N + 1))
        if lo <= r * c <= hi:
            return RangeQuery(i, j, r, c, N)
    # deterministic fallback: full-height columns
    r = min(N, hi)
    c = -(-lo // r)  # ceil(lo / r): first c with r*c >= lo
    if r * c > hi or c > N:
        raise WorkloadError(
            f"no r x c rectangle with area in [{lo}, {hi}] on grid {N}"
        )
    return RangeQuery(i, j, r, c, N)


def sample_arbitrary_query(N: int, rng: np.random.Generator) -> ArbitraryQuery:
    """Uniform over non-empty subsets — load 1 for arbitrary queries.

    Each bucket joins independently with probability 1/2 (expected size
    ``N²/2``), resampling the all-empty outcome.
    """
    while True:
        mask = rng.random((N, N)) < 0.5
        ii, jj = np.nonzero(mask)
        if len(ii):
            coords = tuple(zip(ii.tolist(), jj.tolist()))
            return ArbitraryQuery(coords, N)


def sample_arbitrary_query_of_size(
    N: int, size: int, rng: np.random.Generator
) -> ArbitraryQuery:
    """Uniform random subset of exactly ``size`` buckets."""
    if not 1 <= size <= N * N:
        raise WorkloadError(f"size {size} invalid for grid {N}")
    flat = rng.choice(N * N, size=size, replace=False)
    coords = tuple((int(k) // N, int(k) % N) for k in flat)
    return ArbitraryQuery(coords, N)
