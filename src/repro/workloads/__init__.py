"""Workloads: query types, query loads, and the paper's experiments.

* :mod:`repro.workloads.queries` — range and arbitrary queries on the
  wraparound ``N × N`` grid (§VI-B).
* :mod:`repro.workloads.loads` — the three query-size distributions
  (§VI-C).
* :mod:`repro.workloads.experiments` — Table IV's five experiment
  configurations and instance builders.
"""

from repro.workloads.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    build_problem,
    build_system,
)
from repro.workloads.loads import (
    QUERY_LOADS,
    QueryLoad,
    sample_bucket_count,
)
from repro.workloads.queries import (
    ArbitraryQuery,
    RangeQuery,
    count_range_queries,
    sample_arbitrary_query,
    sample_arbitrary_query_of_size,
    sample_range_query,
    sample_range_query_of_size,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "build_problem",
    "build_system",
    "QUERY_LOADS",
    "QueryLoad",
    "sample_bucket_count",
    "ArbitraryQuery",
    "RangeQuery",
    "count_range_queries",
    "sample_arbitrary_query",
    "sample_arbitrary_query_of_size",
    "sample_range_query",
    "sample_range_query_of_size",
]
