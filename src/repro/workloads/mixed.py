"""Mixed workloads: weighted blends of query types and loads.

Real frontends are never one pure distribution — a mapping UI mixes
viewport range queries (load 3) with occasional analytical sweeps
(arbitrary, load 2).  :class:`WorkloadMix` samples from a weighted blend
of the paper's (load, qtype) components and emits replay-ready streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.loads import QUERY_TYPES, sample_query

__all__ = ["MixComponent", "WorkloadMix"]


@dataclass(frozen=True)
class MixComponent:
    """One ingredient of a mix."""

    weight: float
    load: int
    qtype: str

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"weight must be positive, got {self.weight}")
        if self.load not in (1, 2, 3):
            raise WorkloadError(f"unknown load {self.load}")
        if self.qtype not in QUERY_TYPES:
            raise WorkloadError(f"unknown query type {self.qtype!r}")


class WorkloadMix:
    """A weighted mixture of (load, query-type) components.

    >>> mix = WorkloadMix([
    ...     MixComponent(0.8, 3, "range"),      # interactive viewports
    ...     MixComponent(0.2, 2, "arbitrary"),  # analytical sweeps
    ... ])
    >>> q = mix.sample(8, rng)
    """

    def __init__(self, components: list[MixComponent]) -> None:
        if not components:
            raise WorkloadError("a mix needs at least one component")
        self.components = list(components)
        total = sum(c.weight for c in components)
        self._probs = np.array([c.weight / total for c in components])

    def sample(self, N: int, rng: np.random.Generator):
        """Draw one query from the blend."""
        k = int(rng.choice(len(self.components), p=self._probs))
        c = self.components[k]
        return sample_query(c.load, c.qtype, N, rng)

    def sample_component(self, rng: np.random.Generator) -> MixComponent:
        """Draw which component fires (for labeling/accounting)."""
        k = int(rng.choice(len(self.components), p=self._probs))
        return self.components[k]

    def stream(
        self,
        N: int,
        n_queries: int,
        mean_interarrival_ms: float,
        rng: np.random.Generator,
        *,
        start_ms: float = 0.0,
    ):
        """A Poisson-arrival trace of blended queries (TraceEvents).

        ``start_ms`` offsets the first arrival, so phased scenarios
        (e.g. a second burst after a failure event) concatenate into one
        monotone trace the online scheduler's event clock accepts.
        """
        from repro.storage.trace import TraceEvent

        if mean_interarrival_ms <= 0:
            raise WorkloadError("mean interarrival must be positive")
        if start_ms < 0:
            raise WorkloadError("start_ms must be non-negative")
        clock = float(start_ms)
        events = []
        for _ in range(n_queries):
            clock += float(rng.exponential(mean_interarrival_ms))
            q = self.sample(N, rng)
            events.append(TraceEvent(clock, tuple(q.buckets())))
        return events

    def expected_size(self, N: int) -> float:
        """Blend of the components' closed-form E[|Q|]."""
        from repro.workloads.stats import expected_bucket_count

        return float(
            sum(
                p * expected_bucket_count(c.load, c.qtype, N)
                for p, c in zip(self._probs, self.components)
            )
        )
