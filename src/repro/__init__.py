"""repro — Integrated maximum flow algorithms for optimal response time
retrieval of replicated data.

A production-quality reproduction of Altiparmak & Tosun, *"Integrated
Maximum Flow Algorithm for Optimal Response Time Retrieval of Replicated
Data"*, ICPP 2012.

Quickstart
----------
>>> from repro import solve, StorageSystem, Site, DISK_CATALOG
>>> from repro.decluster import orthogonal_two_site
>>> from repro.workloads import RangeQueryGenerator
>>> # see examples/quickstart.py for a full walk-through

Top-level surface
-----------------
* :func:`repro.core.solve` — schedule one query on a storage system.
* :mod:`repro.maxflow` — standalone max-flow engines.
* :mod:`repro.decluster` — replicated declustering schemes.
* :mod:`repro.storage` — disks, sites, simulator.
* :mod:`repro.workloads` — queries, loads, the paper's experiments.
* :mod:`repro.bench` — figure-regeneration harness.
* :mod:`repro.obs` — metrics registry, probe tracing, exporters.
"""

from repro._version import __version__

__all__ = ["__version__"]

#: warn-once latch for the legacy top-level service aliases
_legacy_surface_warned = False

#: pre-facade entry points, kept importable from the top level as a
#: deprecation shim — ``repro.api.Scheduler`` is the one front door now
_LEGACY_SERVICE = {
    "SchedulerService": "repro.service",
    "ShardedSchedulerService": "repro.service",
    "ServiceConfig": "repro.service",
    "SchedulerClient": "repro.net",
}


def _warn_legacy_surface(name: str) -> None:
    global _legacy_surface_warned
    if not _legacy_surface_warned:
        _legacy_surface_warned = True
        import warnings

        warnings.warn(
            f"importing {name} from the top-level 'repro' package is "
            "deprecated; use the repro.api facade "
            "(api.Scheduler(config).local()/.sharded()/.serve()/"
            ".connect()) or import from its implementation layer",
            DeprecationWarning,
            stacklevel=3,
        )


def __getattr__(name):  # lazy re-exports keep import light for CLI startup
    _CORE = {
        "solve",
        "RetrievalProblem",
        "RetrievalSchedule",
        "SOLVERS",
    }
    _STORAGE = {"StorageSystem", "Site", "Disk", "DISK_CATALOG"}
    if name in _CORE:
        import repro.core as core

        return getattr(core, name)
    if name in _STORAGE:
        import repro.storage as storage

        return getattr(storage, name)
    if name == "api":
        import repro.api as api

        return api
    if name in _LEGACY_SERVICE:
        _warn_legacy_surface(name)
        import importlib

        module = importlib.import_module(_LEGACY_SERVICE[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
