"""repro — Integrated maximum flow algorithms for optimal response time
retrieval of replicated data.

A production-quality reproduction of Altiparmak & Tosun, *"Integrated
Maximum Flow Algorithm for Optimal Response Time Retrieval of Replicated
Data"*, ICPP 2012.

Quickstart
----------
>>> from repro import solve, StorageSystem, Site, DISK_CATALOG
>>> from repro.decluster import orthogonal_two_site
>>> from repro.workloads import RangeQueryGenerator
>>> # see examples/quickstart.py for a full walk-through

Top-level surface
-----------------
* :func:`repro.core.solve` — schedule one query on a storage system.
* :mod:`repro.maxflow` — standalone max-flow engines.
* :mod:`repro.decluster` — replicated declustering schemes.
* :mod:`repro.storage` — disks, sites, simulator.
* :mod:`repro.workloads` — queries, loads, the paper's experiments.
* :mod:`repro.bench` — figure-regeneration harness.
* :mod:`repro.obs` — metrics registry, probe tracing, exporters.
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name):  # lazy re-exports keep import light for CLI startup
    _CORE = {
        "solve",
        "RetrievalProblem",
        "RetrievalSchedule",
        "SOLVERS",
    }
    _STORAGE = {"StorageSystem", "Site", "Disk", "DISK_CATALOG"}
    if name in _CORE:
        import repro.core as core

        return getattr(core, name)
    if name in _STORAGE:
        import repro.storage as storage

        return getattr(storage, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
